//! Umbrella crate for the REPUTE reproduction.
//!
//! Re-exports every workspace crate under one roof and offers a
//! [`prelude`] with the handful of types most programs need. Depend on
//! the individual crates (`repute-core`, `repute-genome`, …) when you
//! want a narrow dependency; depend on this crate when you want the whole
//! system (as the examples and integration tests in this repository do).
//!
//! # Example
//!
//! ```
//! use repute_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reference = ReferenceBuilder::new(100_000).seed(1).build();
//! let read = reference.subseq(500..600);
//! let indexed = std::sync::Arc::new(IndexedReference::build(reference));
//! let mapper = ReputeMapper::new(indexed, ReputeConfig::new(4, 13)?);
//! assert!(mapper.map_read(&read).mappings.iter().any(|m| m.position == 500));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use repute_align as align;
pub use repute_core as core;
pub use repute_eval as eval;
pub use repute_filter as filter;
pub use repute_genome as genome;
pub use repute_hetsim as hetsim;
pub use repute_index as index;
pub use repute_mappers as mappers;

/// The types most mapping programs start with.
pub mod prelude {
    pub use repute_core::{PairOutcome, PairedMapper, ReputeConfig, ReputeMapper};
    pub use repute_genome::fasta::{read_fasta, AmbiguityPolicy};
    pub use repute_genome::fastq::read_fastq;
    pub use repute_genome::reads::{ErrorProfile, ReadSimulator};
    pub use repute_genome::synth::ReferenceBuilder;
    pub use repute_genome::{Base, DnaSeq, Strand};
    pub use repute_hetsim::{profiles, Platform, Share};
    pub use repute_mappers::multiref::ReferenceSet;
    pub use repute_mappers::{IndexedReference, Mapper, Mapping};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_covers_the_quickstart_flow() {
        use crate::prelude::*;
        let reference = ReferenceBuilder::new(60_000).seed(2).build();
        let read = reference.subseq(1_000..1_100);
        let indexed = std::sync::Arc::new(IndexedReference::build(reference));
        let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).expect("valid"));
        let out = mapper.map_read(&read);
        assert!(out.mappings.iter().any(|m| m.position == 1_000));
    }

    #[test]
    fn crate_aliases_resolve() {
        // One symbol per re-exported crate, so a rename breaks loudly.
        let _ = crate::genome::Base::A;
        let _ = crate::index::FmIndex::builder();
        let _: u32 = crate::align::dp::edit_distance(&[0], &[1]);
        let _ = crate::filter::pigeonhole::uniform_partition(10, 2);
        let _ = crate::hetsim::profiles::system1();
        let _ = crate::eval::stats::MappingStats::default();
        let _ = crate::mappers::IndexedReference::DEFAULT_Q;
        let _ = crate::core::ReputeConfig::new(3, 12).expect("valid");
    }
}
