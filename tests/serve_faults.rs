//! Fault-tolerant serving: device loss mid-serve keeps the response
//! union bit-identical to a fault-free run (mapping output is
//! device-independent; only timing moves), faulted runs are
//! deterministic across `--host-threads`, crash-resume during a fault
//! episode replays bit-identically, an all-devices-lost daemon drains
//! with typed `SERVICE_UNAVAILABLE` responses and exits, overdue queued
//! jobs are shed with `DEADLINE_EXCEEDED` when `--shed-overdue` is on,
//! and the device-health ladder / shrinking admission bounds hold under
//! seeded random event storms.

#![cfg(unix)]

use std::collections::HashMap;
use std::path::PathBuf;

use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, DeviceHealth, FaultPlan, HealthState};
use repute_mappers::multiref::ReferenceSet;
use repute_prefilter::PrefilterMode;
use repute_serve::transport::{serve_socket, shutdown_over_socket, submit_over_socket};
use repute_serve::{
    AdmissionQueue, ConfigKey, JobEnvelope, JobResponse, JobSpec, JobStatus, MapperKind, ServeCore,
    ServeHarness, ServeOptions,
};

fn reference_set() -> ReferenceSet {
    let reference = ReferenceBuilder::new(120_000).seed(8801).build();
    ReferenceSet::build(vec![("chrF".to_string(), reference)])
}

/// Six jobs from three tenants across two mapping configurations, so
/// concurrent rounds form several same-key groups.
fn jobs() -> Vec<JobEnvelope> {
    let reference = ReferenceBuilder::new(120_000).seed(8801).build();
    let read = |name: &str, start: usize| -> Vec<(String, DnaSeq)> {
        vec![(name.to_string(), reference.subseq(start..start + 100))]
    };
    vec![
        JobEnvelope::new("acme-1", read("ra1", 10_000)).with_tenant("acme"),
        JobEnvelope::new("acme-2", read("ra2", 20_000))
            .with_tenant("acme")
            .with_delta(3),
        JobEnvelope::new("lab-1", read("rl1", 30_000)).with_tenant("lab"),
        JobEnvelope::new("lab-2", read("rl2", 40_000))
            .with_tenant("lab")
            .with_delta(3),
        JobEnvelope::new("edge-1", read("re1", 50_000)).with_tenant("edge"),
        JobEnvelope::new("edge-2", read("re2", 60_000))
            .with_tenant("edge")
            .with_delta(3),
    ]
}

/// A fault plan that loses two of system1's three devices mid-serve
/// (device 0 survives, so the daemon must keep answering).
fn two_losses() -> FaultPlan {
    FaultPlan::new().loss(1, 1.0e-4).loss(2, 1.2e-4)
}

/// Per-job SAM bytes of the fault-free single-submitter run.
fn fault_free_sam() -> HashMap<String, String> {
    let mut harness = ServeHarness::new(
        reference_set(),
        profiles::system1(),
        ServeOptions::default(),
    )
    .unwrap();
    for job in jobs() {
        assert!(harness.submit(job).expect("journal I/O").is_none());
    }
    harness
        .drain()
        .expect("fault-free drain")
        .into_iter()
        .map(|r| (r.id.clone(), r.sam.expect("completed jobs carry SAM")))
        .collect()
}

#[test]
fn device_loss_mid_serve_keeps_sam_bit_identical_over_a_socket() {
    let dir = std::env::temp_dir().join("repute-serve-faults-socket-test");
    std::fs::create_dir_all(&dir).ok();
    let socket: PathBuf = dir.join("serve.sock");
    std::fs::remove_file(&socket).ok();

    let server = {
        let socket = socket.clone();
        std::thread::spawn(
            move || -> (ServeCore, Result<(), repute_core::ReputeError>) {
                let mut core = ServeCore::new(
                    reference_set(),
                    profiles::system1(),
                    ServeOptions {
                        fault_plan: two_losses(),
                        ..ServeOptions::default()
                    },
                )
                .unwrap();
                let result = serve_socket(&mut core, &socket);
                (core, result)
            },
        )
    };
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Three concurrent clients, two jobs each.
    let clients: Vec<_> = jobs()
        .chunks(2)
        .map(|pair| {
            let socket = socket.clone();
            let pair = pair.to_vec();
            std::thread::spawn(move || {
                let lines: Vec<String> = pair.iter().map(JobEnvelope::to_json_line).collect();
                let responses = submit_over_socket(&socket, &lines).expect("client run");
                (pair, responses)
            })
        })
        .collect();
    let expected = fault_free_sam();
    for client in clients {
        let (pair, responses) = client.join().expect("client thread");
        assert_eq!(responses.len(), pair.len());
        for (response, job) in responses.iter().zip(&pair) {
            assert_eq!(response.id, job.id);
            assert_eq!(
                response.status,
                JobStatus::Ok,
                "job {} must complete while a device survives: {:?}",
                job.id,
                response.reason
            );
            assert_eq!(
                response.sam.as_deref(),
                Some(expected[&job.id].as_str()),
                "job {} SAM diverged under device loss",
                job.id
            );
        }
    }

    shutdown_over_socket(&socket).expect("shutdown");
    let (core, result) = server.join().expect("server thread");
    result.expect("serve loop exits cleanly");
    assert_eq!(core.counters().completed, 6);
    assert_eq!(
        core.health().lost_count(),
        2,
        "both planned losses must have been observed"
    );
    assert!(!core.is_unavailable(), "one device still lives");
    std::fs::remove_dir_all(&dir).ok();
}

fn faulted_lines(host_threads: usize) -> Vec<(String, String)> {
    let mut harness = ServeHarness::new(
        reference_set(),
        profiles::system1(),
        ServeOptions {
            fault_plan: two_losses(),
            host_threads,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    for job in jobs() {
        assert!(harness.submit(job).expect("journal I/O").is_none());
    }
    let mut lines: Vec<(String, String)> = harness
        .drain()
        .expect("faulted drain")
        .iter()
        .map(|r| (r.id.clone(), r.to_json_line()))
        .collect();
    lines.sort();
    lines
}

#[test]
fn faulted_runs_are_deterministic_across_host_threads() {
    // Full response lines — SAM, batch index, simulated latency — must
    // agree between the sequential host and a 4-thread host, losses and
    // migrations included.
    assert_eq!(
        faulted_lines(1),
        faulted_lines(4),
        "fault handling must not depend on --host-threads"
    );
}

#[test]
fn crash_resume_during_a_fault_episode_is_bit_identical() {
    let dir = std::env::temp_dir().join("repute-serve-faults-resume-test");
    std::fs::create_dir_all(&dir).ok();
    let options = || ServeOptions {
        fault_plan: FaultPlan::new().transient(0, 1.0e-5).loss(2, 1.0e-4),
        ..ServeOptions::default()
    };
    let all = jobs();
    let (wave1, wave2) = all.split_at(3);

    // Uninterrupted reference: wave 1 commits, wave 2 arrives, drain.
    let mut clean = ServeHarness::new(reference_set(), profiles::system1(), options()).unwrap();
    for job in wave1.iter().cloned() {
        assert!(clean.submit(job).expect("journal I/O").is_none());
    }
    let mut clean_union = clean.run_batch().expect("wave 1 round");
    for job in wave2.iter().cloned() {
        assert!(clean.submit(job).expect("journal I/O").is_none());
    }
    clean_union.extend(clean.drain().expect("wave 2 drain"));
    assert_eq!(clean_union.len(), 6);

    // Crashed run: same schedule, but power dies inside wave 2's round.
    let journal = dir.join("serve.journal");
    std::fs::remove_file(&journal).ok();
    let (mut doomed, replayed) = ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        options(),
        &journal,
        false,
    )
    .unwrap();
    assert!(replayed.is_empty());
    for job in wave1.iter().cloned() {
        assert!(doomed.submit(job).expect("journal I/O").is_none());
    }
    let committed = doomed.run_batch().expect("wave 1 round");
    assert!(!committed.is_empty());
    for job in wave2.iter().cloned() {
        assert!(doomed.submit(job).expect("journal I/O").is_none());
    }
    let lost_ids = doomed.crash_mid_batch().expect("doomed round executes");
    assert!(!lost_ids.is_empty(), "the crash must catch live work");

    // Resume: wave 1 replays from the journal (fault provenance and
    // device health restored), wave 2 re-executes; the union is
    // bit-identical to the uninterrupted faulted run.
    let (mut resumed, replayed) = ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        options(),
        &journal,
        true,
    )
    .unwrap();
    let by_id = |rs: &[JobResponse]| -> Vec<(String, String)> {
        let mut lines: Vec<(String, String)> = rs
            .iter()
            .map(|r| (r.id.clone(), r.to_json_line()))
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(by_id(&replayed), by_id(&committed));
    let mut union = replayed;
    union.extend(resumed.drain().expect("resumed drain"));
    assert_eq!(union.len(), 6, "no job lost, none answered twice");
    assert_eq!(
        by_id(&union),
        by_id(&clean_union),
        "crash-resume during a fault episode must be bit-identical"
    );
    assert_eq!(
        resumed.core().health().lost_count(),
        1,
        "the planned loss survives the restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_devices_lost_drains_service_unavailable_and_exits() {
    let dir = std::env::temp_dir().join("repute-serve-faults-unavailable-test");
    std::fs::create_dir_all(&dir).ok();
    let socket: PathBuf = dir.join("serve.sock");
    std::fs::remove_file(&socket).ok();

    let server = {
        let socket = socket.clone();
        std::thread::spawn(
            move || -> (ServeCore, Result<(), repute_core::ReputeError>) {
                let mut core = ServeCore::new(
                    reference_set(),
                    profiles::system1(),
                    ServeOptions {
                        // Early enough to strike inside even a one-read
                        // batch (but after t = 0, so construction sees a
                        // live fleet).
                        fault_plan: FaultPlan::new().correlated(&[0, 1, 2], 1.0e-9),
                        ..ServeOptions::default()
                    },
                )
                .unwrap();
                let result = serve_socket(&mut core, &socket);
                (core, result)
            },
        )
    };
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Four jobs with four distinct configurations: the first round
    // launches one group per live device (three), and in-flight work is
    // not thrown away even as the whole fleet dies under it. The fourth
    // job is still queued when the last device goes — it gets a typed
    // SERVICE_UNAVAILABLE, not a hang and not a dead socket.
    let reference = ReferenceBuilder::new(120_000).seed(8801).build();
    let read = |name: &str, start: usize| -> Vec<(String, DnaSeq)> {
        vec![(name.to_string(), reference.subseq(start..start + 100))]
    };
    let lines: Vec<String> = [(5u32, 10_000), (3, 20_000), (4, 30_000), (6, 40_000)]
        .iter()
        .enumerate()
        .map(|(i, &(delta, start))| {
            JobEnvelope::new(format!("job-{i}"), read(&format!("r{i}"), start))
                .with_tenant("acme")
                .with_delta(delta)
                .to_json_line()
        })
        .collect();
    let responses = submit_over_socket(&socket, &lines).expect("client run");
    assert_eq!(responses.len(), 4);
    for response in &responses[..3] {
        assert_eq!(
            response.status,
            JobStatus::Ok,
            "work launched before the loss completes: {:?}",
            response.reason
        );
    }
    assert_eq!(responses[3].id, "job-3");
    assert_eq!(responses[3].status, JobStatus::ServiceUnavailable);
    assert!(
        responses[3]
            .reason
            .as_deref()
            .unwrap_or("")
            .contains("every simulated device has been lost"),
        "refusal must name the cause, got {:?}",
        responses[3].reason
    );

    // No shutdown request: the daemon drains and exits on its own.
    let (core, result) = server.join().expect("server thread");
    result.expect("drain-and-exit is a clean exit");
    assert!(core.is_unavailable());
    assert_eq!(core.health().lost_count(), 3);
    assert!(core.counters().unavailable >= 1);
    assert_eq!(core.counters().completed, 3);
    assert!(!socket.exists(), "socket file removed on exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overdue_queued_jobs_are_shed_with_deadline_exceeded() {
    let run = |shed_overdue: bool| -> (Vec<JobResponse>, ServeHarness) {
        let mut harness = ServeHarness::new(
            reference_set(),
            profiles::system1(),
            ServeOptions {
                shed_overdue,
                // Serial rounds: the second job must sit queued while
                // the first one's batch advances the clock past its
                // deadline.
                concurrent_batches: false,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let reference = ReferenceBuilder::new(120_000).seed(8801).build();
        let read = |name: &str, start: usize| -> Vec<(String, DnaSeq)> {
            vec![(name.to_string(), reference.subseq(start..start + 100))]
        };
        // Earliest-deadline-first runs `urgent` first; `late` holds a
        // deadline far tighter than `urgent`'s batch makespan, so by the
        // time the scheduler reaches it the deadline has passed.
        let urgent = JobEnvelope::new("urgent", read("ru", 10_000))
            .with_tenant("acme")
            .with_deadline(1.0e-12);
        let late = JobEnvelope::new("late", read("rv", 20_000))
            .with_tenant("lab")
            .with_delta(3)
            .with_deadline(1.0e-9);
        assert!(harness.submit(urgent).expect("journal I/O").is_none());
        assert!(harness.submit(late).expect("journal I/O").is_none());
        let responses = harness.drain().expect("drain");
        (responses, harness)
    };

    // Shedding on: `late` is refused with a typed DEADLINE_EXCEEDED.
    let (responses, harness) = run(true);
    assert_eq!(responses.len(), 2);
    let late = responses.iter().find(|r| r.id == "late").expect("late");
    assert_eq!(late.status, JobStatus::DeadlineExceeded);
    assert!(
        late.reason
            .as_deref()
            .unwrap_or("")
            .contains("while the job was queued"),
        "shed reason must say when and why, got {:?}",
        late.reason
    );
    assert!(late.sam.is_none(), "shed jobs carry no SAM");
    let urgent = responses.iter().find(|r| r.id == "urgent").expect("urgent");
    assert_eq!(urgent.status, JobStatus::Ok);
    assert_eq!(harness.counters().shed, 1);
    let slo = harness.core().slo_reports();
    let lab = slo.iter().find(|r| r.tenant == "lab").expect("lab SLO row");
    assert_eq!((lab.met, lab.missed), (0, 1));
    assert_eq!(lab.hit_rate(), 0.0);

    // Shedding off (the default): the same job runs late but completes.
    let (responses, harness) = run(false);
    assert!(responses.iter().all(|r| r.status == JobStatus::Ok));
    assert_eq!(harness.counters().shed, 0);
    let slo = harness.core().slo_reports();
    let lab = slo.iter().find(|r| r.tenant == "lab").expect("lab SLO row");
    assert_eq!(
        (lab.met, lab.missed),
        (0, 1),
        "a late completion still misses its SLO"
    );
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn device_health_ladder_is_monotone_under_random_event_storms() {
    let mut state = 0x0DE5_EED5_1234_u64;
    for round in 0..200 {
        let devices = 1 + (splitmix64(&mut state) % 6) as usize;
        let mut health = DeviceHealth::new(devices).with_quarantine_after(3);
        let mut prev: Vec<u8> = vec![HealthState::Healthy.code(); devices];
        let mut prev_faults: Vec<u64> = vec![0; devices];
        for _ in 0..40 {
            let d = (splitmix64(&mut state) as usize) % devices;
            match splitmix64(&mut state) % 3 {
                0 => health.observe_faults(d, 1 + splitmix64(&mut state) % 3),
                1 => health.observe_degrade(d),
                _ => health.observe_loss(d),
            }
            for i in 0..devices {
                let code = health.state(i).code();
                assert!(
                    code >= prev[i],
                    "round {round}: device {i} walked the ladder backwards \
                     ({} -> {})",
                    prev[i],
                    code
                );
                assert!(health.faults(i) >= prev_faults[i]);
                prev[i] = code;
                prev_faults[i] = health.faults(i);
            }
            // live() is exactly the ascending set of live-state devices.
            let live = health.live();
            let expected: Vec<usize> = (0..devices)
                .filter(|&i| health.state(i).is_live())
                .collect();
            assert_eq!(live, expected);
            assert_eq!(health.live_count(), live.len());
            assert_eq!(health.none_live(), live.is_empty());
            // Snapshot/restore round-trips the whole ladder.
            let snapshot = health.snapshot();
            let mut restored = DeviceHealth::new(devices).with_quarantine_after(3);
            for (i, &(state, faults)) in snapshot.iter().enumerate() {
                restored.restore(i, state, faults);
            }
            assert_eq!(restored.snapshot(), snapshot);
        }
    }
}

#[test]
fn admission_capacity_shrinks_with_survivors_without_dropping_jobs() {
    let key = ConfigKey {
        delta: 5,
        prefilter: PrefilterMode::None,
        mapper: MapperKind::Repute,
    };
    let spec = |seq: u64, deadline: Option<f64>| JobSpec {
        seq,
        id: format!("j{seq}"),
        tenant: format!("t{}", seq % 3),
        key,
        arrival_s: 0.0,
        deadline_s: deadline,
        priority: 0,
        read_ids: vec![format!("r{seq}")],
        reads: Vec::new(),
    };
    let mut state = 0xFA57_F00D_u64;
    for round in 0..100 {
        let total_devices = 1 + (splitmix64(&mut state) % 4) as usize;
        let base_capacity = 4 + (splitmix64(&mut state) % 12) as usize;
        let mut queue = AdmissionQueue::new(base_capacity, &[]);
        let mut seq = 0u64;
        let mut admitted: Vec<u64> = Vec::new();
        while !queue.is_full() {
            let deadline = splitmix64(&mut state)
                .is_multiple_of(2)
                .then(|| 1.0e-6 * (1 + splitmix64(&mut state) % 100) as f64);
            queue.push(spec(seq, deadline), false).expect("not full");
            admitted.push(seq);
            seq += 1;
        }
        assert_eq!(queue.len(), base_capacity);

        // Device loss shrinks live capacity: the admission bound shrinks
        // proportionally, never below 1, and never drops a queued job.
        let mut live = total_devices;
        let mut drained: Vec<u64> = Vec::new();
        while live > 0 {
            live -= 1;
            let bound = (base_capacity * live.max(1)).div_ceil(total_devices);
            queue.set_capacity(bound);
            assert_eq!(queue.capacity(), bound.max(1));
            assert_eq!(
                queue.len() + drained.len(),
                base_capacity,
                "round {round}: shrinking the bound must not drop queued jobs"
            );
            // Shedding at an advancing clock takes exactly the overdue
            // deadline jobs, in seq order.
            let now = 1.0e-6 * (splitmix64(&mut state) % 120) as f64;
            let shed = queue.take_overdue(now);
            assert!(shed.windows(2).all(|w| w[0].seq < w[1].seq));
            for job in &shed {
                assert!(job.deadline_s.is_some_and(|d| d < now));
            }
            drained.extend(shed.iter().map(|j| j.seq));
            // The queue keeps serving what remains.
            if let Some(job) = queue.pop_fair(now) {
                drained.push(job.seq);
            }
        }
        // Everything admitted comes out exactly once, shed or served.
        while let Some(job) = queue.pop_fair(f64::MAX) {
            drained.push(job.seq);
        }
        drained.sort_unstable();
        assert_eq!(drained, admitted, "round {round}: jobs lost or duplicated");
    }
}
