//! Differential testing: every mapper against a brute-force DP scan.
//!
//! The brute-force oracle runs the full semi-global DP of `repute-align`
//! across the *entire* reference, collecting every end position within
//! the error budget — no index, no filtration, no heuristics. Each mapper
//! is then checked in both directions:
//!
//! * **sensitivity** — every oracle hit cluster is reported by the
//!   full-sensitivity mappers (pigeonhole guarantee);
//! * **soundness** — every reported mapping corresponds to an oracle hit
//!   (no mapper invents locations).

use std::sync::Arc;

use repute_core::{ReputeConfig, ReputeMapper};
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::{ReferenceBuilder, RepeatFamily};
use repute_genome::{DnaSeq, Strand};
use repute_mappers::{
    coral::CoralLike, hobbes3::Hobbes3Like, razers3::Razers3Like, IndexedReference, Mapper,
};

/// All end positions (exclusive) where `read` aligns semi-globally within
/// `delta`, collapsed to clusters of nearby ends. Each cluster keeps its
/// full `(first_end, last_end)` range: a repeat with a short period chains
/// many qualifying ends together, and a mapper may legitimately report any
/// occurrence inside the chain, not just its final end.
fn oracle_ends(read: &[u8], reference: &[u8], delta: u32) -> Vec<(usize, usize, u32)> {
    let m = read.len();
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur = vec![0u32; m + 1];
    let mut hits: Vec<(usize, u32)> = Vec::new();
    for j in 1..=reference.len() {
        cur[0] = 0;
        for i in 1..=m {
            let sub = prev[i - 1] + u32::from(read[i - 1] != reference[j - 1]);
            cur[i] = sub.min(prev[i] + 1).min(cur[i - 1] + 1);
        }
        if cur[m] <= delta {
            hits.push((j, cur[m]));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    // Collapse runs of nearby ends (one alignment produces a plateau of
    // qualifying ends) into `(first, last, best distance)` ranges.
    let mut clusters: Vec<(usize, usize, u32)> = Vec::new();
    for (end, dist) in hits {
        match clusters.last_mut() {
            Some((_, last_end, best)) if end - *last_end <= 2 * delta as usize + 2 => {
                if dist < *best {
                    *best = dist;
                }
                *last_end = end;
            }
            _ => clusters.push((end, end, dist)),
        }
    }
    clusters
}

struct Oracle {
    /// `(strand, first end, last end, best distance)` per hit cluster.
    hits: Vec<(Strand, usize, usize, u32)>,
}

fn oracle(read: &DnaSeq, reference: &[u8], delta: u32) -> Oracle {
    let mut hits = Vec::new();
    for (strand, codes) in [
        (Strand::Forward, read.to_codes()),
        (Strand::Reverse, read.reverse_complement().to_codes()),
    ] {
        for (first, last, dist) in oracle_ends(&codes, reference, delta) {
            hits.push((strand, first, last, dist));
        }
    }
    Oracle { hits }
}

fn workload() -> (Arc<IndexedReference>, Vec<repute_genome::reads::SimRead>) {
    // Small but repeat-rich, so multi-mapping reads exercise the mappers.
    let reference = ReferenceBuilder::new(60_000)
        .seed(7001)
        .repeat_families(vec![
            RepeatFamily {
                unit_len: 200,
                copies: 30,
                divergence: 0.02,
            },
            RepeatFamily {
                unit_len: 60,
                copies: 40,
                divergence: 0.01,
            },
        ])
        .build();
    let reads = ReadSimulator::new(90, 25)
        .profile(ErrorProfile::err012100())
        .unmappable_fraction(0.08)
        .seed(7002)
        .simulate(&reference);
    (Arc::new(IndexedReference::build(reference)), reads)
}

/// Matching slack between a mapper's reported start and an oracle end:
/// start ≈ end − read_len, both sides accurate to ±δ.
fn matches_oracle(
    oracle: &Oracle,
    read_len: usize,
    strand: Strand,
    position: u32,
    delta: u32,
) -> bool {
    let slack = 2 * delta as usize + 2;
    let end = position as usize + read_len;
    oracle
        .hits
        .iter()
        .any(|&(s, first, last, _)| s == strand && end + slack >= first && end <= last + slack)
}

#[test]
fn no_mapper_invents_locations() {
    let (indexed, reads) = workload();
    let delta = 4u32;
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Razers3Like::new(Arc::clone(&indexed), delta)),
        Box::new(Hobbes3Like::new(Arc::clone(&indexed), delta)),
        Box::new(CoralLike::new(Arc::clone(&indexed), delta)),
        Box::new(ReputeMapper::new(
            Arc::clone(&indexed),
            ReputeConfig::new(delta, 12).expect("valid"),
        )),
    ];
    for read in &reads {
        let oracle = oracle(&read.seq, indexed.codes(), delta);
        for mapper in &mappers {
            for m in mapper.map_read(&read.seq).mappings {
                assert!(
                    m.distance <= delta,
                    "{} reported distance {} > δ",
                    mapper.name(),
                    m.distance
                );
                assert!(
                    matches_oracle(&oracle, read.seq.len(), m.strand, m.position, delta),
                    "{} invented {:?} for read {} (oracle has {} hits)",
                    mapper.name(),
                    m,
                    read.id,
                    oracle.hits.len()
                );
            }
        }
    }
}

#[test]
fn full_sensitivity_mappers_find_every_oracle_cluster() {
    let (indexed, reads) = workload();
    let delta = 3u32;
    // Unlimited output slots so the caps cannot hide a cluster.
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Razers3Like::new(Arc::clone(&indexed), delta).with_max_locations(100_000)),
        Box::new(Hobbes3Like::new(Arc::clone(&indexed), delta).with_max_locations(100_000)),
        Box::new(CoralLike::new(Arc::clone(&indexed), delta).with_max_locations(100_000)),
        Box::new(ReputeMapper::new(
            Arc::clone(&indexed),
            ReputeConfig::new(delta, 12)
                .expect("valid")
                .with_max_locations(100_000),
        )),
    ];
    let slack = 2 * delta as usize + 2;
    for read in &reads {
        let oracle = oracle(&read.seq, indexed.codes(), delta);
        for mapper in &mappers {
            let mappings = mapper.map_read(&read.seq).mappings;
            for &(strand, first, last, dist) in &oracle.hits {
                let found = mappings.iter().any(|m| {
                    let end = m.position as usize + read.seq.len();
                    m.strand == strand && end + slack >= first && end <= last + slack
                });
                assert!(
                    found,
                    "{} missed oracle hit (strand {strand}, ends {first}..={last}, \
                     distance {dist}) for read {}; reported {} mappings",
                    mapper.name(),
                    read.id,
                    mappings.len()
                );
            }
        }
    }
}

#[test]
fn oracle_sanity_on_planted_matches() {
    // The oracle itself must find a planted exact and a planted 2-error
    // occurrence, and nothing in random noise.
    let reference = ReferenceBuilder::new(5_000).seed(7003).build();
    let codes = reference.to_codes();
    let read = reference.subseq(1_000..1_080);
    let oracle = oracle(&read, &codes, 2);
    assert!(
        oracle.hits.iter().any(|&(s, first, last, d)| {
            s == Strand::Forward && 1_080 + 6 >= first && 1_080 <= last + 6 && d == 0
        }),
        "planted exact match missed: {:?}",
        oracle.hits
    );

    // Mutate two bases: still found, distance ≤ 2.
    let mut mutated = read.to_codes();
    mutated[10] ^= 1;
    mutated[60] ^= 2;
    let mutated = DnaSeq::from_codes(&mutated).unwrap();
    let oracle = self::oracle(&mutated, &codes, 2);
    assert!(oracle.hits.iter().any(|&(s, first, last, d)| {
        s == Strand::Forward && 1_080 + 6 >= first && 1_080 <= last + 6 && d <= 2
    }));
}
