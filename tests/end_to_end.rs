//! End-to-end integration: reference → index → map → evaluate → SAM.

use std::sync::Arc;

use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_eval::accuracy::{all_locations_accuracy, any_best_accuracy};
use repute_eval::sam;
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::profiles;
use repute_mappers::razers3::Razers3Like;
use repute_mappers::{IndexedReference, Mapper};

fn workload() -> (Arc<IndexedReference>, Vec<repute_genome::reads::SimRead>) {
    let reference = ReferenceBuilder::new(200_000).seed(1001).build();
    let reads = ReadSimulator::new(100, 60)
        .profile(ErrorProfile::err012100())
        .unmappable_fraction(0.05)
        .seed(1002)
        .simulate(&reference);
    (Arc::new(IndexedReference::build(reference)), reads)
}

#[test]
fn repute_recovers_ground_truth_and_matches_gold_standard() {
    let (indexed, sim_reads) = workload();
    let delta = 5u32;
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(delta, 12).expect("valid config"),
    );

    // Ground-truth sensitivity: every genomic read with ≤ δ injected
    // errors must be found at its origin.
    for read in &sim_reads {
        let Some(origin) = read.origin else { continue };
        if origin.edits > delta {
            continue;
        }
        let out = mapper.map_read(&read.seq);
        assert!(
            out.mappings.iter().any(|m| {
                m.strand == origin.strand
                    && (m.position as i64 - origin.position as i64).abs() <= delta as i64
            }),
            "read {} lost (origin {:?})",
            read.id,
            origin
        );
    }

    // Gold-standard accuracy: ≈100% under both methodologies.
    let gold_mapper = Razers3Like::new(Arc::clone(&indexed), delta);
    let gold = repute_eval::GoldStandard::new(
        sim_reads
            .iter()
            .map(|r| gold_mapper.map_read(&r.seq).mappings)
            .collect(),
    );
    let outputs: Vec<_> = sim_reads
        .iter()
        .map(|r| mapper.map_read(&r.seq).mappings)
        .collect();
    let all = all_locations_accuracy(&gold, &outputs, delta);
    let any = any_best_accuracy(&gold, &outputs, delta);
    assert!(all > 99.0, "all-locations accuracy {all}");
    assert!(any > 99.0, "any-best accuracy {any}");
}

#[test]
fn noise_reads_map_nowhere() {
    let (indexed, _) = workload();
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(3, 15).expect("valid config"),
    );
    // Pure-noise reads of length 100 almost surely have no alignment
    // within 3 edits of a 200 kbp reference.
    let noise = ReadSimulator::new(100, 20)
        .unmappable_fraction(1.0)
        .seed(555)
        .simulate(indexed.seq());
    let mapped = noise
        .iter()
        .filter(|r| !mapper.map_read(&r.seq).mappings.is_empty())
        .count();
    assert!(mapped <= 1, "{mapped}/20 noise reads mapped");
}

#[test]
fn platform_run_equals_serial_run_and_produces_sam() {
    let (indexed, sim_reads) = workload();
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(3, 15).expect("valid config"),
    );
    let reads: Vec<_> = sim_reads.iter().map(|r| r.seq.clone()).collect();
    let platform = profiles::system1();
    let run = map_on_platform(
        &mapper,
        &platform,
        &platform.even_shares(reads.len()),
        &reads,
    )
    .expect("valid shares");
    // Distribution must not change results.
    for (read, out) in reads.iter().zip(&run.outputs) {
        assert_eq!(mapper.map_read(read).mappings, out.mappings);
    }
    // And the whole run serialises to SAM.
    let mut sam_text = Vec::new();
    sam::write_header(&mut sam_text, "ref", indexed.len()).expect("header");
    for (sim, out) in sim_reads.iter().zip(&run.outputs) {
        let name = format!("r{}", sim.id);
        sam::write_record(
            &mut sam_text,
            "ref",
            &sam::SamRecord {
                name: &name,
                seq: &sim.seq,
                mappings: &out.mappings,
                cigar: None,
            },
        )
        .expect("record");
    }
    let text = String::from_utf8(sam_text).expect("utf8");
    assert!(text.starts_with("@HD"));
    // Every read appears exactly once or more (unmapped reads emit a
    // FLAG 4 line).
    for sim in &sim_reads {
        assert!(
            text.contains(&format!("r{}\t", sim.id)),
            "read {} missing",
            sim.id
        );
    }
}
