#![cfg(feature = "proptest")]
//! NOTE: gated behind the non-default `proptest` feature because the
//! external `proptest` crate cannot be resolved in the offline build
//! environment. Enabling the feature additionally requires restoring a
//! `proptest` dev-dependency where registry access exists.

//! Property-based tests over the core substrates and invariants.

use proptest::prelude::*;

use repute_align::{banded, block, dp, myers, verify};
use repute_filter::freq::FreqTable;
use repute_filter::oss::{OssParams, OssSolver};
use repute_genome::DnaSeq;
use repute_index::{BiFmIndex, FmIndex, SuffixArray};
use repute_obs::Samples;

fn codes(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dnaseq_round_trips_through_string(v in codes(0..300)) {
        let seq = DnaSeq::from_codes(&v).expect("valid codes");
        let text = seq.to_string();
        let back: DnaSeq = text.parse().expect("parseable");
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn reverse_complement_is_involution(v in codes(0..200)) {
        let seq = DnaSeq::from_codes(&v).expect("valid codes");
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn complement_preserves_gc(v in codes(1..200)) {
        let seq = DnaSeq::from_codes(&v).expect("valid codes");
        let gc = seq.gc_content();
        prop_assert!((seq.reverse_complement().gc_content() - gc).abs() < 1e-12);
    }

    #[test]
    fn suffix_array_is_sorted_permutation(v in codes(1..400)) {
        let sa = SuffixArray::from_codes(&v);
        let mut seen = vec![false; v.len()];
        for &p in sa.positions() {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        for w in sa.positions().windows(2) {
            prop_assert!(v[w[0] as usize..] < v[w[1] as usize..]);
        }
    }

    #[test]
    fn fm_count_matches_naive(text in codes(1..400), start in 0usize..350, len in 1usize..12) {
        prop_assume!(start + len <= text.len());
        let pattern = text[start..start + len].to_vec();
        let seq = DnaSeq::from_codes(&text).expect("valid codes");
        let fm = FmIndex::build(&seq);
        let naive = text.windows(len).filter(|w| **w == pattern[..]).count() as u32;
        prop_assert_eq!(fm.count(&pattern), naive);
    }

    #[test]
    fn fm_locate_positions_really_match(text in codes(30..300), start in 0usize..280, len in 6usize..14) {
        prop_assume!(start + len <= text.len());
        let pattern = text[start..start + len].to_vec();
        let seq = DnaSeq::from_codes(&text).expect("valid codes");
        let fm = FmIndex::build(&seq);
        if let Some(interval) = fm.interval(&pattern) {
            for p in fm.locate(interval, usize::MAX) {
                prop_assert_eq!(&text[p as usize..p as usize + len], &pattern[..]);
            }
        }
    }

    #[test]
    fn myers_agrees_with_dp(pattern in codes(1..64), text in codes(0..100)) {
        let expected = dp::semi_global(&pattern, &text).expect("non-empty pattern");
        let masks = myers::PatternMasks::new(&pattern);
        let got = myers::search(&masks, &text, pattern.len() as u32).expect("within m");
        prop_assert_eq!(got.distance, expected.distance);
        prop_assert_eq!(got.end, expected.end);
    }

    #[test]
    fn blocked_myers_agrees_with_dp(pattern in codes(64..200), text in codes(0..250)) {
        let expected = dp::semi_global(&pattern, &text).expect("non-empty pattern");
        let masks = block::BlockMasks::new(&pattern);
        let got = block::search(&masks, &text, pattern.len() as u32).expect("within m");
        prop_assert_eq!(got.distance, expected.distance);
        prop_assert_eq!(got.end, expected.end);
    }

    #[test]
    fn bidirectional_extension_matches_plain_backward_search(
        text in codes(20..250),
        start in 0usize..230,
        len in 1usize..14,
        grow_right in proptest::collection::vec(any::<bool>(), 14),
    ) {
        prop_assume!(start + len <= text.len());
        let pattern = text[start..start + len].to_vec();
        let seq = DnaSeq::from_codes(&text).expect("valid codes");
        let bi = BiFmIndex::build(&seq);
        // Grow the pattern in an arbitrary left/right order.
        let mut lo = len / 2;
        let mut hi = lo;
        let mut iv = bi.init();
        let mut flips = grow_right.iter().copied().cycle();
        while hi - lo < len {
            if (lo > 0 && flips.next().unwrap_or(false)) || hi == len {
                lo -= 1;
                iv = bi.extend_left(iv, pattern[lo]);
            } else {
                iv = bi.extend_right(iv, pattern[hi]);
                hi += 1;
            }
        }
        prop_assert_eq!(Some(iv.fwd), bi.forward().interval(&pattern));
        prop_assert_eq!(iv.fwd.width(), iv.rev.width());
    }

    #[test]
    fn banded_distance_agrees_with_full_dp(a in codes(0..80), b in codes(0..80), k in 0u32..12) {
        let exact = dp::edit_distance(&a, &b);
        let got = banded::banded_distance(&a, &b, k);
        if exact <= k {
            prop_assert_eq!(got, Some(exact));
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn verify_is_monotone_in_budget(read in codes(20..120), window in codes(0..200), k in 0u32..8) {
        let tight = verify(&read, &window, k);
        let loose = verify(&read, &window, k + 3);
        if let Some(t) = tight {
            let l = loose.expect("loosening cannot lose a hit");
            prop_assert!(l.distance <= t.distance);
        }
    }

    #[test]
    fn edit_distance_triangle_inequality(a in codes(0..60), b in codes(0..60), c in codes(0..60)) {
        let ab = dp::edit_distance(&a, &b);
        let bc = dp::edit_distance(&b, &c);
        let ac = dp::edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn percentiles_are_monotone_and_observed(values in proptest::collection::vec(0.0f64..1e9, 0..500)) {
        let samples = Samples::from_values(values.iter().copied());
        let (p50, p90, p99) = samples.p50_p90_p99();
        // Nearest-rank percentiles never invert…
        prop_assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        if values.is_empty() {
            // …and the empty population reports zeros, not NaN.
            prop_assert_eq!((p50, p90, p99), (0.0, 0.0, 0.0));
        } else {
            // …and every percentile is an actually observed value within
            // the population's range.
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for p in [p50, p90, p99] {
                prop_assert!((lo..=hi).contains(&p), "{p} outside [{lo}, {hi}]");
                prop_assert!(values.contains(&p), "{p} not an observed value");
            }
            prop_assert_eq!(samples.percentile(1.0), hi);
        }
    }

    #[test]
    fn cigar_traceback_is_consistent(pattern in codes(1..60), text in codes(1..90)) {
        let aln = dp::semi_global_with_cigar(&pattern, &text).expect("non-empty");
        prop_assert_eq!(aln.cigar.edit_distance(), aln.distance);
        prop_assert_eq!(aln.cigar.pattern_len(), pattern.len());
        prop_assert_eq!(aln.cigar.text_len(), aln.end - aln.start);
        // Traceback distance equals the scan distance.
        let scan = dp::semi_global(&pattern, &text).expect("non-empty");
        prop_assert_eq!(aln.distance, scan.distance);
    }
}

proptest! {
    // The DP optimality property is more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn oss_partition_is_valid_and_no_worse_than_random_partitions(
        text in codes(2000..6000),
        off in 0usize..1500,
        cut_seed in any::<u64>(),
    ) {
        let delta = 3u32;
        let s_min = 10usize;
        let n = 80usize;
        prop_assume!(off + n <= text.len());
        let seq = DnaSeq::from_codes(&text).expect("valid codes");
        let fm = FmIndex::build(&seq);
        let read = &text[off..off + n];
        let params = OssParams::new(delta, s_min).expect("valid");
        let table = FreqTable::build(&fm, read, &params);
        let outcome = OssSolver::new(params).select(read, &table);
        prop_assert!(outcome.selection.is_valid_partition(n, s_min));

        // Compare against a pseudo-random valid partition derived from
        // cut_seed: the DP result must be at least as good.
        let mut cuts = vec![0usize];
        let mut rng = cut_seed;
        let mut cursor = 0usize;
        for remaining in (1..=delta as usize).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let max_cut = n - s_min * remaining;
            let min_cut = cursor + s_min;
            let span = max_cut - min_cut + 1;
            let cut = min_cut + (rng >> 33) as usize % span;
            cuts.push(cut);
            cursor = cut;
        }
        cuts.push(n);
        let random_total: u64 = cuts
            .windows(2)
            .map(|w| u64::from(table.count(w[0], w[1])))
            .sum();
        prop_assert!(
            outcome.selection.total_candidates() <= random_total,
            "DP {} worse than random partition {}",
            outcome.selection.total_candidates(),
            random_total
        );
    }
}
