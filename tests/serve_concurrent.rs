//! Multi-client hardening: the daemon's behavior is a pure function of
//! the connection-event order (fixed-seed interleaving test over
//! [`MuxServer`]), per-job SAM output does not depend on how clients
//! interleave, and a misbehaving client — mid-line disconnect, garbage
//! bytes — is dropped and counted instead of terminating the daemon.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use repute_genome::rng::StdRng;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::profiles;
use repute_mappers::multiref::ReferenceSet;
use repute_serve::transport::{serve_socket, shutdown_over_socket, submit_over_socket, MuxServer};
use repute_serve::{JobEnvelope, JobResponse, ServeCore, ServeHarness, ServeOptions};

fn reference_set() -> ReferenceSet {
    let reference = ReferenceBuilder::new(120_000).seed(9301).build();
    ReferenceSet::build(vec![("chrC".to_string(), reference)])
}

/// Two jobs per simulated client, three clients, mixed tenants and
/// per-job δ overrides so several scheduler batches form.
fn client_jobs() -> Vec<Vec<JobEnvelope>> {
    let reference = ReferenceBuilder::new(120_000).seed(9301).build();
    let read = |name: &str, start: usize| -> Vec<(String, DnaSeq)> {
        vec![(name.to_string(), reference.subseq(start..start + 100))]
    };
    vec![
        vec![
            JobEnvelope::new("c0-a", read("r0a", 5_000)).with_tenant("acme"),
            JobEnvelope::new("c0-b", read("r0b", 15_000))
                .with_tenant("acme")
                .with_delta(5),
        ],
        vec![
            JobEnvelope::new("c1-a", read("r1a", 25_000)).with_tenant("lab"),
            JobEnvelope::new("c1-b", read("r1b", 35_000))
                .with_tenant("lab")
                .with_priority(3),
        ],
        vec![
            JobEnvelope::new("c2-a", read("r2a", 45_000)).with_tenant("edge"),
            JobEnvelope::new("c2-b", read("r2b", 55_000))
                .with_tenant("edge")
                .with_deadline(0.5),
        ],
    ]
}

/// Per-job SAM bytes from the uninterrupted single-submitter run: the
/// determinism reference every interleaving must reproduce.
fn reference_sam() -> HashMap<String, String> {
    let mut harness = ServeHarness::new(
        reference_set(),
        profiles::system1(),
        ServeOptions::default(),
    )
    .unwrap();
    for job in client_jobs().into_iter().flatten() {
        assert!(harness.submit(job).expect("journal I/O").is_none());
    }
    harness
        .drain()
        .expect("clean drain")
        .into_iter()
        .map(|r| (r.id.clone(), r.sam.expect("completed jobs carry SAM")))
        .collect()
}

/// Replays one seeded interleaving of the three clients' events through
/// [`MuxServer`] and returns each connection's response lines.
fn run_interleaving(seed: u64) -> Vec<Vec<String>> {
    let mut core = ServeCore::new(
        reference_set(),
        profiles::system1(),
        ServeOptions::default(),
    )
    .unwrap();
    let mut mux = MuxServer::new();
    // Per-connection event queues: the lines in order, then the EOF.
    // Ordering holds within a connection; the seed decides how the
    // connections interleave.
    let mut queues: Vec<Vec<Option<String>>> = client_jobs()
        .into_iter()
        .map(|jobs| {
            let mut q: Vec<Option<String>> = jobs.iter().map(|j| Some(j.to_json_line())).collect();
            q.push(None); // EOF marker
            q.reverse();
            q
        })
        .collect();
    for conn in 0..queues.len() as u64 {
        mux.open(conn);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<String>> = vec![Vec::new(); queues.len()];
    while queues.iter().any(|q| !q.is_empty()) {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        let conn = live[rng.gen_range(0..live.len())];
        match queues[conn].pop().expect("picked from a non-empty queue") {
            Some(line) => {
                let shutdown = mux
                    .on_line(&mut core, conn as u64, &line)
                    .expect("job lines never error");
                assert!(!shutdown);
            }
            None => {
                out[conn] = mux.on_eof(&mut core, conn as u64).expect("drain");
            }
        }
    }
    assert_eq!(mux.open_connections(), 0);
    assert_eq!(core.counters().completed, 6);
    out
}

#[test]
fn interleaved_clients_are_deterministic_and_match_the_single_submitter_run() {
    let expected = reference_sam();
    assert_eq!(expected.len(), 6);

    for seed in [1u64, 7, 42, 1234] {
        let lines = run_interleaving(seed);
        // Responses come back on the submitting connection, in request
        // order, with per-job SAM byte-identical to the reference run
        // no matter how the clients interleaved.
        let jobs = client_jobs();
        for (conn, conn_lines) in lines.iter().enumerate() {
            assert_eq!(conn_lines.len(), jobs[conn].len());
            for (line, job) in conn_lines.iter().zip(&jobs[conn]) {
                let response = JobResponse::parse(line).expect("response line");
                assert_eq!(response.id, job.id, "routed to the wrong request slot");
                assert_eq!(
                    response.sam.as_deref(),
                    Some(expected[&job.id].as_str()),
                    "job {} SAM diverged under interleaving seed {seed}",
                    job.id
                );
            }
        }
        // Same seed, same event order, byte-identical transcript: the
        // core + mux pipeline is a pure function of the event sequence.
        assert_eq!(
            lines,
            run_interleaving(seed),
            "seed {seed} not reproducible"
        );
    }
}

#[test]
fn bad_clients_are_dropped_and_the_daemon_keeps_serving() {
    let dir = std::env::temp_dir().join("repute-serve-badclient-test");
    std::fs::create_dir_all(&dir).ok();
    let socket: PathBuf = dir.join("serve.sock");
    std::fs::remove_file(&socket).ok();

    let server = {
        let socket = socket.clone();
        std::thread::spawn(
            move || -> (ServeCore, Result<(), repute_core::ReputeError>) {
                let mut core = ServeCore::new(
                    reference_set(),
                    profiles::system1(),
                    ServeOptions::default(),
                )
                .unwrap();
                let result = serve_socket(&mut core, &socket);
                (core, result)
            },
        )
    };
    // Wait for the bind.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Client 1: disconnects abruptly in the middle of a request line.
    {
        let mut stream = UnixStream::connect(&socket).expect("connect");
        stream.write_all(b"{\"id\":\"trunc").expect("partial write");
        // Dropped here: no newline, no half-close handshake.
    }
    // Client 2: pure garbage, but reads its answer like a good citizen.
    {
        let stream = UnixStream::connect(&socket).expect("connect");
        (&stream)
            .write_all(b"\x01\x02 not json at all\n")
            .expect("garbage write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut text = String::new();
        std::io::Read::read_to_string(&mut &stream, &mut text).expect("read response");
        assert!(
            text.contains("\"REJECTED\""),
            "garbage must earn a typed refusal, got: {text}"
        );
    }
    // Give client 1's EOF (and the failed write-back) time to land.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // A well-formed client still gets served after both failures — the
    // regression this test pins: one bad client used to kill the loop.
    let job = client_jobs().remove(0).remove(0);
    let responses = submit_over_socket(&socket, &[job.to_json_line()]).expect("daemon still alive");
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].id, job.id);
    assert_eq!(
        responses[0].sam.as_deref(),
        Some(reference_sam()[&job.id].as_str())
    );

    shutdown_over_socket(&socket).expect("shutdown");
    let (core, result) = server.join().expect("server thread");
    result.expect("serve loop exits cleanly");
    let counters = core.counters();
    assert_eq!(counters.completed, 1);
    assert!(
        counters.rejected >= 1,
        "garbage line must be counted rejected"
    );
    assert!(
        counters.connection_errors >= 1,
        "the abrupt disconnect must be counted, got {}",
        counters.connection_errors
    );
    assert!(!socket.exists(), "socket file removed on exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn three_concurrent_socket_clients_get_byte_identical_sam() {
    let dir = std::env::temp_dir().join("repute-serve-concurrent-test");
    std::fs::create_dir_all(&dir).ok();
    let socket: PathBuf = dir.join("serve.sock");
    std::fs::remove_file(&socket).ok();

    let server = {
        let socket = socket.clone();
        std::thread::spawn(
            move || -> (ServeCore, Result<(), repute_core::ReputeError>) {
                let mut core = ServeCore::new(
                    reference_set(),
                    profiles::system1(),
                    ServeOptions::default(),
                )
                .unwrap();
                let result = serve_socket(&mut core, &socket);
                (core, result)
            },
        )
    };
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let clients: Vec<_> = client_jobs()
        .into_iter()
        .map(|jobs| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let lines: Vec<String> = jobs.iter().map(JobEnvelope::to_json_line).collect();
                let responses = submit_over_socket(&socket, &lines).expect("client run");
                (jobs, responses)
            })
        })
        .collect();
    let expected = reference_sam();
    for client in clients {
        let (jobs, responses) = client.join().expect("client thread");
        assert_eq!(responses.len(), jobs.len());
        for (response, job) in responses.iter().zip(&jobs) {
            assert_eq!(
                response.id, job.id,
                "responses must arrive in request order"
            );
            assert_eq!(
                response.sam.as_deref(),
                Some(expected[&job.id].as_str()),
                "job {} SAM diverged under concurrency",
                job.id
            );
        }
    }

    shutdown_over_socket(&socket).expect("shutdown");
    let (core, result) = server.join().expect("server thread");
    result.expect("serve loop exits cleanly");
    assert_eq!(core.counters().completed, 6);
    std::fs::remove_dir_all(&dir).ok();
}
