//! Read-length flexibility: "REPUTE is tailored to map short reads of
//! length 100-150, even though the algorithm does not impose any such
//! restrictions per se" (§IV). These tests hold the library to the
//! stronger claim: lengths well outside the paper's range must work.

use std::sync::Arc;

use repute_core::{ReputeConfig, ReputeMapper};
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_mappers::{IndexedReference, Mapper};

fn indexed() -> Arc<IndexedReference> {
    Arc::new(IndexedReference::build(
        ReferenceBuilder::new(200_000).seed(8001).build(),
    ))
}

#[test]
fn maps_short_36bp_reads() {
    // Old-generation Illumina length; δ+1 seeds of S_min must still fit.
    let indexed = indexed();
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(2, 12).expect("valid"),
    );
    let reads = ReadSimulator::new(36, 30)
        .seed(8002)
        .simulate(indexed.seq());
    for read in &reads {
        let origin = read.origin.expect("genomic");
        let out = mapper.map_read(&read.seq);
        assert!(
            out.mappings.iter().any(|m| {
                m.strand == origin.strand && (m.position as i64 - origin.position as i64).abs() <= 2
            }),
            "36 bp read {} lost",
            read.id
        );
    }
}

#[test]
fn maps_long_250bp_reads_with_errors() {
    // Beyond the paper's range: four 64-bit verification blocks.
    let indexed = indexed();
    let delta = 8u32;
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(delta, 20).expect("valid"),
    );
    let reads = ReadSimulator::new(250, 25)
        .profile(ErrorProfile::srr826460())
        .seed(8003)
        .simulate(indexed.seq());
    for read in &reads {
        let origin = read.origin.expect("genomic");
        if origin.edits > delta {
            continue;
        }
        let out = mapper.map_read(&read.seq);
        assert!(
            out.mappings.iter().any(|m| {
                m.strand == origin.strand
                    && (m.position as i64 - origin.position as i64).abs() <= delta as i64
            }),
            "250 bp read {} ({} edits) lost",
            read.id,
            origin.edits
        );
    }
}

#[test]
fn maps_1kb_reads() {
    // Stress: a small-genome long-read setting (16 blocks per column).
    let indexed = indexed();
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(10, 30).expect("valid"),
    );
    let reads = ReadSimulator::new(1_000, 5)
        .profile(ErrorProfile::perfect())
        .seed(8004)
        .simulate(indexed.seq());
    for read in &reads {
        let origin = read.origin.expect("genomic");
        let out = mapper.map_read(&read.seq);
        assert!(
            out.mappings
                .iter()
                .any(|m| m.strand == origin.strand
                    && m.position.abs_diff(origin.position as u32) <= 10),
            "1 kb read {} lost",
            read.id
        );
    }
}

#[test]
fn infeasible_configurations_yield_empty_not_panic() {
    let indexed = indexed();
    // 36 bp cannot host 8 seeds of 12: every read maps nowhere, cleanly.
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(7, 12).expect("valid"),
    );
    let read = indexed.seq().subseq(100..136);
    let out = mapper.map_read(&read);
    assert!(out.mappings.is_empty());
    assert_eq!(out.work, 0);
}
