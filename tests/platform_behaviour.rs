//! Platform-level integration: the properties behind Tables II–IV and
//! Fig. 3.

use std::sync::Arc;

use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, Share};
use repute_mappers::{IndexedReference, Mapper};

fn workload() -> (ReputeMapper, Vec<DnaSeq>) {
    let reference = ReferenceBuilder::new(150_000).seed(3001).build();
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 48)
        .seed(3002)
        .simulate(&reference)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let indexed = Arc::new(IndexedReference::build(reference));
    (
        ReputeMapper::new(indexed, ReputeConfig::new(3, 15).expect("valid")),
        reads,
    )
}

#[test]
fn results_are_invariant_under_distribution() {
    let (mapper, reads) = workload();
    let platform = profiles::system1();
    let distributions = vec![
        platform.single_device_share(0, reads.len()),
        platform.even_shares(reads.len()),
        vec![
            Share {
                device: 1,
                items: reads.len() / 2,
            },
            Share {
                device: 2,
                items: reads.len() - reads.len() / 2,
            },
        ],
    ];
    let baseline: Vec<_> = reads.iter().map(|r| mapper.map_read(r).mappings).collect();
    for shares in distributions {
        let run = map_on_platform(&mapper, &platform, &shares, &reads).expect("valid shares");
        let got: Vec<_> = run.outputs.iter().map(|o| o.mappings.clone()).collect();
        assert_eq!(got, baseline, "distribution changed the mapping results");
    }
}

#[test]
fn fig3_shape_cpu_only_and_gpu_only_are_both_slower_than_a_split() {
    let (mapper, reads) = workload();
    let platform = profiles::system1();
    let total = reads.len();
    let time_for = |per_gpu: usize| {
        let shares = vec![
            Share {
                device: 0,
                items: total - 2 * per_gpu,
            },
            Share {
                device: 1,
                items: per_gpu,
            },
            Share {
                device: 2,
                items: per_gpu,
            },
        ];
        map_on_platform(&mapper, &platform, &shares, &reads)
            .expect("valid shares")
            .simulated_seconds
    };
    let cpu_only = time_for(0);
    let all_gpu = time_for(total / 2);
    let split = time_for(total / 4);
    assert!(split < cpu_only, "split {split} !< cpu-only {cpu_only}");
    assert!(split < all_gpu, "split {split} !< all-gpu {all_gpu}");
}

#[test]
fn table4_shape_heterogeneous_draws_more_power_hikey_uses_less_energy() {
    let (mapper, reads) = workload();
    let sys1_cpu = profiles::system1_cpu_only();
    let sys1_all = profiles::system1();
    let sys2 = profiles::system2_hikey970();

    let cpu = map_on_platform(
        &mapper,
        &sys1_cpu,
        &sys1_cpu.single_device_share(0, reads.len()),
        &reads,
    )
    .expect("valid");
    let all = map_on_platform(
        &mapper,
        &sys1_all,
        &sys1_all.even_shares(reads.len()),
        &reads,
    )
    .expect("valid");
    let hikey =
        map_on_platform(&mapper, &sys2, &sys2.even_shares(reads.len()), &reads).expect("valid");

    // §IV: REPUTE-all uses more power but less time than REPUTE-cpu.
    assert!(all.energy.average_power_w > cpu.energy.average_power_w);
    assert!(all.simulated_seconds < cpu.simulated_seconds);
    // Headline: the embedded SoC is slower but saves an order of
    // magnitude or more of energy.
    assert!(hikey.simulated_seconds > cpu.simulated_seconds);
    let saving = cpu.energy.energy_j / hikey.energy.energy_j;
    assert!(saving > 10.0, "energy saving only {saving:.1}×");
}

#[test]
fn work_conservation_across_devices() {
    let (mapper, reads) = workload();
    let platform = profiles::system1();
    let serial: u64 = reads.iter().map(|r| mapper.map_read(r).work).sum();
    let run = map_on_platform(
        &mapper,
        &platform,
        &platform.even_shares(reads.len()),
        &reads,
    )
    .expect("valid");
    assert_eq!(run.total_work(), serial, "work must be conserved");
    // Per-device work sums to the total.
    let per_device: u64 = run.device_runs.iter().map(|d| d.work).sum();
    assert_eq!(per_device, run.total_work());
}
