//! Index persistence: a saved index must answer exactly like the one it
//! was built from, across real files.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

use repute_core::{ReputeConfig, ReputeMapper};
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_index::FmIndex;
use repute_mappers::multiref::ReferenceSet;
use repute_mappers::{IndexedReference, Mapper};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repute-serial-{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn fm_index_file_round_trip() {
    let dir = temp_dir("fm");
    let reference = ReferenceBuilder::new(80_000).seed(9001).build();
    let codes = reference.to_codes();
    let fm = FmIndex::builder().sa_sample(8).build(&reference);
    let path = dir.join("ref.fm");
    fm.write_to(BufWriter::new(File::create(&path).expect("create")))
        .expect("write");
    let back = FmIndex::read_from(BufReader::new(File::open(&path).expect("open"))).expect("read");
    for start in (0..79_000).step_by(1_111) {
        let pattern = &codes[start..start + 17];
        assert_eq!(back.count(pattern), fm.count(pattern));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mapping_through_a_saved_reference_set_is_identical() {
    let dir = temp_dir("set");
    let set = ReferenceSet::build(vec![
        (
            "chrA".into(),
            ReferenceBuilder::new(60_000).seed(9002).build(),
        ),
        (
            "chrB".into(),
            ReferenceBuilder::new(30_000).seed(9003).build(),
        ),
    ]);
    let path = dir.join("set.rpx");
    set.write_to(BufWriter::new(File::create(&path).expect("create")))
        .expect("write");
    let restored =
        ReferenceSet::read_from(BufReader::new(File::open(&path).expect("open"))).expect("read");

    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 20)
        .seed(9004)
        .simulate(set.indexed().seq())
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let config = ReputeConfig::new(3, 15).expect("valid");
    let original = ReputeMapper::new(Arc::clone(set.indexed()), config);
    let reloaded = ReputeMapper::new(Arc::clone(restored.indexed()), config);
    for read in &reads {
        assert_eq!(
            original.map_read(read).mappings,
            reloaded.map_read(read).mappings,
            "saved index diverged"
        );
    }
    // Record metadata survives too.
    assert_eq!(restored.records(), set.records());
    assert_eq!(restored.resolve(60_010), Some((1, 10)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_reference_rejects_foreign_files() {
    let dir = temp_dir("bad");
    let path = dir.join("junk.rpx");
    std::fs::write(&path, b"definitely not an index").expect("write junk");
    let err = IndexedReference::read_from(BufReader::new(File::open(&path).expect("open")));
    assert!(err.is_err());
    std::fs::remove_dir_all(&dir).ok();
}
