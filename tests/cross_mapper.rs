//! Cross-mapper integration: the relationships the paper's tables rest on.

use std::sync::Arc;

use repute_core::{ReputeConfig, ReputeMapper};
use repute_genome::reads::{ErrorProfile, ReadSimulator, SimRead};
use repute_genome::synth::ReferenceBuilder;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like,
    yara::YaraLike, IndexedReference, Mapper,
};

fn workload() -> (Arc<IndexedReference>, Vec<SimRead>) {
    let reference = ReferenceBuilder::new(300_000).seed(2001).build();
    let reads = ReadSimulator::new(100, 50)
        .profile(ErrorProfile::err012100())
        .seed(2002)
        .simulate(&reference);
    (Arc::new(IndexedReference::build(reference)), reads)
}

fn origin_found(mapper: &dyn Mapper, read: &SimRead, tolerance: i64) -> bool {
    let origin = read.origin.expect("genomic read");
    mapper.map_read(&read.seq).mappings.iter().any(|m| {
        m.strand == origin.strand && (m.position as i64 - origin.position as i64).abs() <= tolerance
    })
}

#[test]
fn all_mappers_find_low_error_reads() {
    let (indexed, reads) = workload();
    let delta = 5u32;
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Razers3Like::new(Arc::clone(&indexed), delta)),
        Box::new(Hobbes3Like::new(Arc::clone(&indexed), delta)),
        Box::new(YaraLike::new(Arc::clone(&indexed), delta)),
        Box::new(BwaMemLike::new(Arc::clone(&indexed))),
        Box::new(GemLike::new(Arc::clone(&indexed), delta)),
        Box::new(CoralLike::new(Arc::clone(&indexed), delta)),
        Box::new(ReputeMapper::new(
            Arc::clone(&indexed),
            ReputeConfig::new(delta, 12).expect("valid"),
        )),
    ];
    for mapper in &mappers {
        let mut found = 0usize;
        let mut eligible = 0usize;
        for read in &reads {
            let origin = read.origin.expect("genomic");
            if origin.edits > 1 {
                continue; // every strategy must find near-perfect reads
            }
            eligible += 1;
            if origin_found(mapper.as_ref(), read, 5) {
                found += 1;
            }
        }
        assert!(
            found * 100 >= eligible * 90,
            "{}: {found}/{eligible} near-perfect reads found",
            mapper.name()
        );
    }
}

#[test]
fn full_sensitivity_mappers_lose_nothing_within_delta() {
    let (indexed, reads) = workload();
    let delta = 5u32;
    let all_mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Razers3Like::new(Arc::clone(&indexed), delta)),
        Box::new(Hobbes3Like::new(Arc::clone(&indexed), delta)),
        Box::new(CoralLike::new(Arc::clone(&indexed), delta)),
        Box::new(ReputeMapper::new(
            Arc::clone(&indexed),
            ReputeConfig::new(delta, 12).expect("valid"),
        )),
    ];
    for mapper in &all_mappers {
        for read in &reads {
            let origin = read.origin.expect("genomic");
            if origin.edits > delta {
                continue;
            }
            assert!(
                origin_found(mapper.as_ref(), read, delta as i64),
                "{} lost read {} ({} edits)",
                mapper.name(),
                read.id,
                origin.edits
            );
        }
    }
}

#[test]
fn best_mappers_report_subset_of_gold_locations() {
    let (indexed, reads) = workload();
    let delta = 4u32;
    let gold = Razers3Like::new(Arc::clone(&indexed), delta).with_max_locations(10_000);
    let best_mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(YaraLike::new(Arc::clone(&indexed), delta)),
        Box::new(GemLike::new(Arc::clone(&indexed), delta)),
    ];
    for mapper in &best_mappers {
        for read in reads.iter().take(20) {
            let gold_maps = gold.map_read(&read.seq).mappings;
            let got = mapper.map_read(&read.seq).mappings;
            for m in &got {
                assert!(
                    gold_maps.iter().any(|g| {
                        g.strand == m.strand && g.position.abs_diff(m.position) <= delta
                    }),
                    "{} reported {:?} unknown to the gold standard",
                    mapper.name(),
                    m
                );
            }
        }
    }
}

#[test]
fn repute_produces_at_most_as_many_candidates_as_coral() {
    // RazerS3's SWIFT bands are not comparable candidate units, so the
    // mapper-level comparison is REPUTE vs CORAL (the paper's headline);
    // the uniform-partition comparison lives at selection level in the
    // `repute-filter` tests.
    let (indexed, reads) = workload();
    let delta = 6u32;
    let repute = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(delta, 12).expect("valid"),
    );
    let coral = CoralLike::new(Arc::clone(&indexed), delta);
    let (mut r, mut c) = (0u64, 0u64);
    for read in &reads {
        r += repute.map_read(&read.seq).candidates;
        c += coral.map_read(&read.seq).candidates;
    }
    assert!(r <= c, "REPUTE {r} candidates vs CORAL {c}");
}

#[test]
fn reported_distances_never_exceed_delta() {
    let (indexed, reads) = workload();
    for delta in [3u32, 5, 7] {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(Razers3Like::new(Arc::clone(&indexed), delta)),
            Box::new(Hobbes3Like::new(Arc::clone(&indexed), delta)),
            Box::new(CoralLike::new(Arc::clone(&indexed), delta)),
            Box::new(YaraLike::new(Arc::clone(&indexed), delta)),
            Box::new(GemLike::new(Arc::clone(&indexed), delta)),
            Box::new(ReputeMapper::new(
                Arc::clone(&indexed),
                ReputeConfig::new(delta, 12).expect("valid"),
            )),
        ];
        for mapper in &mappers {
            for read in reads.iter().take(15) {
                for m in mapper.map_read(&read.seq).mappings {
                    assert!(
                        m.distance <= delta,
                        "{} reported distance {} > δ {}",
                        mapper.name(),
                        m.distance,
                        delta
                    );
                }
            }
        }
    }
}
