//! Daemon crash-and-resume integration: a `repute serve` core that dies
//! mid-batch loses at most that one in-flight batch, and after
//! `--resume` the union of job responses is bit-identical to an
//! uninterrupted run.

use std::path::PathBuf;

use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::profiles;
use repute_mappers::multiref::ReferenceSet;
use repute_serve::{JobEnvelope, JobResponse, ServeHarness, ServeOptions};

fn reference_set() -> ReferenceSet {
    let reference = ReferenceBuilder::new(120_000).seed(7201).build();
    ReferenceSet::build(vec![("chrS".to_string(), reference)])
}

/// Six jobs from three tenants with two distinct per-job δ overrides, so
/// the coalescer must form several batches (jobs only share a batch when
/// their effective configuration matches).
fn jobs() -> Vec<JobEnvelope> {
    let reference = ReferenceBuilder::new(120_000).seed(7201).build();
    let read = |start: usize| -> Vec<(String, DnaSeq)> {
        vec![(format!("r{start}"), reference.subseq(start..start + 100))]
    };
    vec![
        JobEnvelope::new("acme-1", read(10_000))
            .with_tenant("acme")
            .with_delta(3),
        JobEnvelope::new("acme-2", read(20_000))
            .with_tenant("acme")
            .with_delta(5),
        JobEnvelope::new("lab-1", read(30_000))
            .with_tenant("lab")
            .with_delta(3),
        JobEnvelope::new("lab-2", read(40_000))
            .with_tenant("lab")
            .with_delta(5),
        JobEnvelope::new("edge-1", read(50_000))
            .with_tenant("edge")
            .with_delta(3),
        JobEnvelope::new("edge-2", read(60_000))
            .with_tenant("edge")
            .with_delta(5),
    ]
}

fn options() -> ServeOptions {
    ServeOptions {
        tenant_weights: vec![("acme".to_string(), 2.0)],
        // One batch per round: these tests aim the crash window at
        // exactly one in-flight batch (concurrent rounds would execute
        // both config groups before the crash).
        concurrent_batches: false,
        ..ServeOptions::default()
    }
}

fn submit_all(harness: &mut ServeHarness) {
    for job in jobs() {
        let refusal = harness.submit(job).expect("journal I/O");
        assert!(refusal.is_none(), "every job fits the default limits");
    }
}

fn by_id(responses: &[JobResponse]) -> Vec<(String, String)> {
    let mut lines: Vec<(String, String)> = responses
        .iter()
        .map(|r| (r.id.clone(), r.to_json_line()))
        .collect();
    lines.sort();
    lines
}

#[test]
fn resume_after_mid_batch_crash_is_bit_identical_to_uninterrupted() {
    let dir = std::env::temp_dir().join("repute-serve-restart-test");
    std::fs::create_dir_all(&dir).ok();
    let platform = profiles::system1();

    // Uninterrupted reference run: no journal, straight drain.
    let mut clean = ServeHarness::new(reference_set(), platform.clone(), options()).unwrap();
    submit_all(&mut clean);
    let clean_responses = clean.drain().expect("uninterrupted drain");
    assert_eq!(clean_responses.len(), 6);
    let clean_batches = clean.counters().batches;
    assert!(
        clean_batches >= 2,
        "mixed deltas must split batches, got {clean_batches}"
    );

    // Journaled run: commit one batch, then lose power inside the next.
    let journal: PathBuf = dir.join("serve.journal");
    std::fs::remove_file(&journal).ok();
    let (mut doomed, replayed) = ServeHarness::with_journal(
        reference_set(),
        platform.clone(),
        options(),
        &journal,
        false,
    )
    .unwrap();
    assert!(replayed.is_empty(), "a fresh journal replays nothing");
    submit_all(&mut doomed);
    let committed = doomed.run_batch().expect("first batch commits");
    assert!(!committed.is_empty());
    let lost_ids = doomed.crash_mid_batch().expect("doomed batch executes");
    assert!(!lost_ids.is_empty(), "the crash must catch a live batch");

    // Restart from the journal: committed responses replay verbatim,
    // everything else (including the lost batch) re-executes.
    let (mut resumed, replayed) =
        ServeHarness::with_journal(reference_set(), platform, options(), &journal, true).unwrap();
    assert_eq!(
        by_id(&replayed),
        by_id(&committed),
        "replayed responses must be bit-identical to the committed batch"
    );
    assert_eq!(resumed.counters().replayed as usize, replayed.len());
    let reexecuted = resumed.drain().expect("resumed drain");

    // Union = every job exactly once, bit-identical to the clean run
    // (ids, SAM bytes, batch indices, and simulated latencies).
    let mut union = replayed.clone();
    union.extend(reexecuted.iter().cloned());
    assert_eq!(union.len(), 6, "no job lost, none answered twice");
    assert_eq!(by_id(&union), by_id(&clean_responses));

    // "At most one batch re-executed": the crashed batch's jobs are the
    // only previously-executed work in the resumed drain, and the
    // resumed run ends with the same batch count as the clean run.
    for id in &lost_ids {
        assert!(
            reexecuted.iter().any(|r| &r.id == id),
            "lost job {id} must be re-executed after resume"
        );
    }
    let rerun_of_executed: Vec<&String> = reexecuted
        .iter()
        .map(|r| &r.id)
        .filter(|id| lost_ids.contains(id) || committed.iter().any(|c| &&c.id == id))
        .collect();
    assert_eq!(
        rerun_of_executed.len(),
        lost_ids.len(),
        "only the single in-flight batch repeats work"
    );
    assert_eq!(resumed.counters().batches, clean_batches);
    assert_eq!(resumed.counters().completed, 6);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_a_compacted_journal_is_bit_identical() {
    let dir = std::env::temp_dir().join("repute-serve-compaction-test");
    std::fs::create_dir_all(&dir).ok();
    let platform = profiles::system1();

    // Uninterrupted reference run.
    let mut clean = ServeHarness::new(reference_set(), platform.clone(), options()).unwrap();
    submit_all(&mut clean);
    let clean_responses = clean.drain().expect("uninterrupted drain");
    let clean_batches = clean.counters().batches;

    // Control journal: same submissions and one committed batch, no
    // compaction — the size bound the compacted journal must beat.
    let control = dir.join("control.journal");
    std::fs::remove_file(&control).ok();
    let mut compacting = options();
    compacting.journal_compact_threshold = 1;
    let (mut plain, _) = ServeHarness::with_journal(
        reference_set(),
        platform.clone(),
        options(),
        &control,
        false,
    )
    .unwrap();
    submit_all(&mut plain);
    plain.run_batch().expect("control batch commits");
    let control_size = std::fs::metadata(&control).expect("control journal").len();

    // Compacting journal: threshold 1 compacts right after the first
    // batch commit, so the file holds only the header, one state
    // snapshot, and the still-queued accepted records.
    let journal: PathBuf = dir.join("serve.journal");
    std::fs::remove_file(&journal).ok();
    let (mut doomed, replayed) = ServeHarness::with_journal(
        reference_set(),
        platform.clone(),
        compacting.clone(),
        &journal,
        false,
    )
    .unwrap();
    assert!(replayed.is_empty());
    submit_all(&mut doomed);
    let committed = doomed.run_batch().expect("first batch commits");
    assert!(!committed.is_empty());
    assert_eq!(
        doomed.counters().compactions,
        1,
        "threshold 1 compacts per commit"
    );
    let compacted_size = std::fs::metadata(&journal)
        .expect("compacted journal")
        .len();
    assert!(
        compacted_size < control_size,
        "compacted journal ({compacted_size} B) must be smaller than the \
         append-only control ({control_size} B)"
    );
    let lost_ids = doomed.crash_mid_batch().expect("doomed batch executes");
    assert!(!lost_ids.is_empty());

    // Resume from the compacted journal: the committed batch's records
    // were compacted away (its responses were already delivered), the
    // live jobs — including the lost in-flight batch — re-execute, and
    // the union is bit-identical to the uninterrupted run.
    let (mut resumed, replayed) =
        ServeHarness::with_journal(reference_set(), platform, compacting, &journal, true).unwrap();
    assert!(
        replayed.is_empty(),
        "a compacted journal carries no committed batches to replay"
    );
    let counters = resumed.counters();
    assert_eq!(
        counters.completed as usize,
        committed.len(),
        "state snapshot restores counters"
    );
    assert_eq!(counters.batches, 1);
    let reexecuted = resumed.drain().expect("resumed drain");
    for id in &lost_ids {
        assert!(
            reexecuted.iter().any(|r| &r.id == id),
            "lost job {id} must re-execute after resume"
        );
    }
    let mut union = committed.clone();
    union.extend(reexecuted.iter().cloned());
    assert_eq!(union.len(), 6, "no job lost, none answered twice");
    assert_eq!(by_id(&union), by_id(&clean_responses));
    assert_eq!(resumed.counters().batches, clean_batches);
    assert_eq!(resumed.counters().completed, 6);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_resume_with_different_options_is_refused() {
    let dir = std::env::temp_dir().join("repute-serve-restart-mismatch-test");
    std::fs::create_dir_all(&dir).ok();
    let journal = dir.join("serve.journal");
    std::fs::remove_file(&journal).ok();

    let (mut harness, _) = ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        options(),
        &journal,
        false,
    )
    .unwrap();
    submit_all(&mut harness);
    harness.drain().unwrap();

    // A server with different pinned limits must refuse the journal.
    let mut other = options();
    other.limits.max_delta = 8;
    let err =
        ServeHarness::with_journal(reference_set(), profiles::system1(), other, &journal, true)
            .err()
            .expect("mismatched fingerprint is refused");
    assert!(
        matches!(err, repute_core::ReputeError::ResumeMismatch(_)),
        "expected ResumeMismatch, got {err:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
