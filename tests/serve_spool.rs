//! Spool-transport hardening: the crash window between writing
//! `<name>.json.response` and renaming the input to `<name>.json.done`
//! no longer causes a double submit on rescan, and multi-line job files
//! are refused with a typed response instead of silently dropping every
//! line after the first.

#![cfg(unix)]

use std::path::{Path, PathBuf};

use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::profiles;
use repute_mappers::multiref::ReferenceSet;
use repute_serve::transport::process_spool_once;
use repute_serve::{JobEnvelope, JobResponse, JobStatus, ServeHarness, ServeOptions};

fn reference_set() -> ReferenceSet {
    let reference = ReferenceBuilder::new(80_000).seed(4411).build();
    ReferenceSet::build(vec![("chrP".to_string(), reference)])
}

fn job(id: &str, start: usize) -> JobEnvelope {
    let reference = ReferenceBuilder::new(80_000).seed(4411).build();
    let reads: Vec<(String, DnaSeq)> =
        vec![(format!("{id}-r"), reference.subseq(start..start + 100))];
    JobEnvelope::new(id, reads)
}

fn harness() -> ServeHarness {
    ServeHarness::new(
        reference_set(),
        profiles::system1(),
        ServeOptions::default(),
    )
    .unwrap()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_response(dir: &Path, name: &str) -> JobResponse {
    let text = std::fs::read_to_string(dir.join(name)).expect("response file");
    JobResponse::parse(text.trim()).expect("response line")
}

#[test]
fn crash_window_leftovers_are_skipped_not_resubmitted() {
    let dir = fresh_dir("repute-serve-spool-crashwindow-test");

    // Simulate the post-crash state: job `a` already has its response on
    // disk (the crash hit between the response write and the rename),
    // job `b` is untouched new work.
    let stale_response = "{\"id\":\"a\",\"status\":\"OK\",\"reads\":1,\"mappings\":1}\n";
    std::fs::write(
        dir.join("a.json"),
        format!("{}\n", job("a", 10_000).to_json_line()),
    )
    .unwrap();
    std::fs::write(dir.join("a.json.response"), stale_response).unwrap();
    std::fs::write(
        dir.join("b.json"),
        format!("{}\n", job("b", 20_000).to_json_line()),
    )
    .unwrap();

    let mut h = harness();
    let processed = process_spool_once(h.core_mut(), &dir).expect("spool scan");
    assert_eq!(processed, 2, "both files are handled in one pass");

    // Job `a` was NOT re-executed: its pre-crash response is untouched
    // and its interrupted rename was completed.
    assert_eq!(
        std::fs::read_to_string(dir.join("a.json.response")).unwrap(),
        stale_response,
        "the pre-crash response must survive byte-for-byte"
    );
    assert!(
        dir.join("a.json.done").exists(),
        "interrupted rename completed"
    );
    assert!(!dir.join("a.json").exists());

    // Job `b` ran normally.
    let b = read_response(&dir, "b.json.response");
    assert_eq!(b.id, "b");
    assert_eq!(b.status, JobStatus::Ok);
    assert!(dir.join("b.json.done").exists());

    let counters = h.counters();
    assert_eq!(counters.spool_skipped, 1);
    assert_eq!(counters.accepted, 1, "only `b` was admitted");
    assert_eq!(counters.completed, 1);

    // A rescan finds nothing left to do — the scan is idempotent.
    assert_eq!(process_spool_once(h.core_mut(), &dir).expect("rescan"), 0);
    assert_eq!(h.counters().completed, 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unreadable_spool_files_are_rejected_without_wedging_the_scan() {
    let dir = fresh_dir("repute-serve-spool-unreadable-test");

    // A directory with a `.json` name cannot be read as a file — the
    // portable stand-in for an unreadable job file (permission modes
    // don't bite when tests run as root).
    std::fs::create_dir(dir.join("bad.json")).unwrap();
    std::fs::write(
        dir.join("good.json"),
        format!("{}\n", job("good", 30_000).to_json_line()),
    )
    .unwrap();

    let mut h = harness();
    assert_eq!(
        process_spool_once(h.core_mut(), &dir).expect("the scan must not wedge"),
        2
    );

    // The unreadable file earns a typed refusal and is renamed out of
    // the scan path like any other handled input.
    let bad = read_response(&dir, "bad.json.response");
    assert_eq!(bad.status, JobStatus::Rejected);
    assert!(
        bad.reason
            .as_deref()
            .unwrap_or("")
            .contains("unreadable spool job file"),
        "refusal must name the problem, got {:?}",
        bad.reason
    );
    assert!(dir.join("bad.json.done").exists());

    // The healthy job beside it still ran.
    let good = read_response(&dir, "good.json.response");
    assert_eq!(good.status, JobStatus::Ok);
    let counters = h.counters();
    assert_eq!(counters.rejected, 1);
    assert_eq!(counters.completed, 1);

    // The rescan finds nothing left.
    assert_eq!(process_spool_once(h.core_mut(), &dir).expect("rescan"), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_line_spool_files_are_rejected_with_a_typed_response() {
    let dir = fresh_dir("repute-serve-spool-multiline-test");

    let two_jobs = format!(
        "{}\n{}\n",
        job("first", 10_000).to_json_line(),
        job("second", 20_000).to_json_line()
    );
    std::fs::write(dir.join("multi.json"), two_jobs).unwrap();

    let mut h = harness();
    assert_eq!(
        process_spool_once(h.core_mut(), &dir).expect("spool scan"),
        1
    );

    // Neither embedded job ran: the file as a whole is refused, loudly,
    // instead of mapping the first line and silently dropping the rest.
    let response = read_response(&dir, "multi.json.response");
    assert_eq!(response.status, JobStatus::Rejected);
    assert!(
        response
            .reason
            .as_deref()
            .unwrap_or("")
            .contains("exactly one request line"),
        "refusal must name the problem, got {:?}",
        response.reason
    );
    assert!(dir.join("multi.json.done").exists());
    let counters = h.counters();
    assert_eq!(counters.accepted, 0);
    assert_eq!(counters.completed, 0);

    std::fs::remove_dir_all(&dir).ok();
}
