//! Criterion microbenches for the core data structures and kernels.
//!
//! These complement the table/figure binaries: where those reproduce the
//! paper's system-level results, these pin down the per-component costs
//! (index construction, backward search, bit-vector verification, and the
//! three filtration strategies including the exploration-space ablation).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use repute_align::{banded, block, myers};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_filter::freq::FreqTable;
use repute_filter::greedy::GreedySelector;
use repute_filter::oss::{Exploration, OssParams, OssSolver};
use repute_filter::pigeonhole::UniformSelector;
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_index::{FmIndex, QGramIndex, SuffixArray};
use repute_mappers::coral::CoralLike;
use repute_mappers::{IndexedReference, Mapper};

const REF_LEN: usize = 400_000;

fn reference() -> DnaSeq {
    ReferenceBuilder::new(REF_LEN).seed(0xBE).build()
}

fn bench_index_build(c: &mut Criterion) {
    let reference = reference();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("suffix_array_sais_400k", |b| {
        b.iter(|| SuffixArray::build(black_box(&reference)))
    });
    group.bench_function("fm_index_400k", |b| {
        b.iter(|| FmIndex::build(black_box(&reference)))
    });
    group.bench_function("qgram_index_q10_400k", |b| {
        b.iter(|| QGramIndex::build(black_box(&reference), 10))
    });
    group.finish();
}

fn bench_fm_queries(c: &mut Criterion) {
    let reference = reference();
    let fm = FmIndex::build(&reference);
    let codes = reference.to_codes();
    let pattern = &codes[1000..1020];
    let mut group = c.benchmark_group("fm_queries");
    group.bench_function("count_20mer", |b| {
        b.iter(|| fm.count(black_box(pattern)))
    });
    let interval = fm.interval(&codes[1000..1012]).unwrap();
    group.bench_function("locate_12mer_all", |b| {
        b.iter(|| fm.locate(black_box(interval), usize::MAX))
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let reference = reference();
    let codes = reference.to_codes();
    let read64 = &codes[5000..5064];
    let read150 = &codes[5000..5150];
    let window64 = &codes[4995..5075];
    let window150 = &codes[4995..5161];
    let mut group = c.benchmark_group("verification");
    group.bench_function("myers64_window80", |b| {
        let masks = myers::PatternMasks::new(read64);
        b.iter(|| myers::search(black_box(&masks), black_box(window64), 5))
    });
    group.bench_function("myers_blocked150_window166", |b| {
        let masks = block::BlockMasks::new(read150);
        let mut work = block::BlockWork::default();
        b.iter(|| block::search_with(black_box(&masks), black_box(window150), 7, &mut work))
    });
    // The §II-A claim check: Myers vs the classic Ukkonen band.
    group.bench_function("ukkonen_banded150_k7", |b| {
        let target = &codes[5000..5150];
        b.iter(|| banded::banded_distance(black_box(read150), black_box(target), 7))
    });
    group.finish();
}

fn bench_filtration(c: &mut Criterion) {
    let reference = reference();
    let fm = FmIndex::build(&reference);
    let read = reference.subseq(9000..9100).to_codes();
    let params = OssParams::new(5, 12).unwrap();
    let full = params.exploration(Exploration::Full);
    let mut group = c.benchmark_group("filtration_n100_d5");
    group.bench_function("freq_table", |b| {
        b.iter(|| FreqTable::build(&fm, black_box(&read), &params))
    });
    let table = FreqTable::build(&fm, &read, &params);
    group.bench_function("oss_dp_restricted", |b| {
        let solver = OssSolver::new(params);
        b.iter(|| solver.select(black_box(&read), &table))
    });
    let full_table = FreqTable::build(&fm, &read, &full);
    group.bench_function("freq_table_full_exploration", |b| {
        b.iter(|| FreqTable::build(&fm, black_box(&read), &full))
    });
    group.bench_function("oss_dp_full_exploration", |b| {
        let solver = OssSolver::new(full);
        b.iter(|| solver.select(black_box(&read), &full_table))
    });
    group.bench_function("greedy_serial", |b| {
        let selector = GreedySelector::new(5, 12);
        b.iter(|| selector.select(black_box(&read), &fm))
    });
    group.bench_function("uniform", |b| {
        let selector = UniformSelector::new(5);
        b.iter(|| selector.select(black_box(&read), &fm))
    });
    group.bench_function("oss_sparse", |b| {
        let solver = repute_filter::sparse::SparseSolver::new(params);
        let table = FreqTable::build(&fm, &read, solver.params());
        b.iter(|| solver.select(black_box(&read), &table))
    });
    group.finish();
}

fn bench_affine(c: &mut Criterion) {
    // Gotoh affine-gap vs unit-cost kernels at read scale.
    let reference = reference();
    let codes = reference.to_codes();
    let a = &codes[7000..7100];
    let b_seq = &codes[7003..7103];
    let mut group = c.benchmark_group("affine_gap_n100");
    group.bench_function("gotoh_bwa_penalties", |bch| {
        let p = repute_align::gotoh::AffinePenalties::bwa_like();
        bch.iter(|| repute_align::gotoh::affine_distance(black_box(a), black_box(b_seq), p))
    });
    group.bench_function("unit_edit_distance", |bch| {
        bch.iter(|| repute_align::dp::edit_distance(black_box(a), black_box(b_seq)))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let indexed = Arc::new(IndexedReference::build(reference()));
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 64)
        .profile(ErrorProfile::err012100())
        .seed(0xE2E)
        .simulate(indexed.seq())
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let repute = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(5, 12).unwrap());
    let coral = CoralLike::new(Arc::clone(&indexed), 5);
    let mut group = c.benchmark_group("map_read_n100_d5");
    group.sample_size(20);
    let mut cycle = reads.iter().cycle();
    group.bench_function("repute", |b| {
        b.iter_batched(
            || cycle.next().unwrap().clone(),
            |read| repute.map_read(black_box(&read)),
            BatchSize::SmallInput,
        )
    });
    let mut cycle = reads.iter().cycle();
    group.bench_function("coral", |b| {
        b.iter_batched(
            || cycle.next().unwrap().clone(),
            |read| coral.map_read(black_box(&read)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_fm_queries,
    bench_verification,
    bench_filtration,
    bench_affine,
    bench_end_to_end
);
criterion_main!(benches);
