//! Microbenches for the core data structures and kernels.
//!
//! These complement the table/figure binaries: where those reproduce the
//! paper's system-level results, these pin down the per-component costs
//! (index construction, backward search, bit-vector verification, and the
//! three filtration strategies including the exploration-space ablation).
//!
//! The harness is hand-rolled on `std::time::Instant` because the build
//! must work offline (no criterion). Two modes:
//!
//! * default (also what `cargo test` exercises): a smoke run — tiny
//!   reference, one iteration per bench — that only proves everything
//!   still executes;
//! * `REPUTE_BENCH=full cargo bench -p repute-bench`: the measured run at
//!   paper scale (400 kb reference, calibrated iteration counts).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use repute_align::{banded, block, myers};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_filter::freq::FreqTable;
use repute_filter::greedy::GreedySelector;
use repute_filter::oss::{Exploration, OssParams, OssSolver};
use repute_filter::pigeonhole::UniformSelector;
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_index::{FmIndex, QGramIndex, SuffixArray};
use repute_mappers::coral::CoralLike;
use repute_mappers::{IndexedReference, Mapper};

struct Harness {
    full: bool,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            full: std::env::var("REPUTE_BENCH").is_ok_and(|v| v == "full"),
        }
    }

    fn ref_len(&self) -> usize {
        if self.full {
            400_000
        } else {
            40_000
        }
    }

    fn iters(&self, full_iters: u32) -> u32 {
        if self.full {
            full_iters
        } else {
            1
        }
    }

    /// Times `f` over `iters` iterations and prints ns/iter.
    fn bench<R>(&self, name: &str, full_iters: u32, mut f: impl FnMut() -> R) {
        let iters = self.iters(full_iters);
        // One warmup iteration keeps cold-cache noise out of full runs.
        black_box(f());
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed.as_nanos() / u128::from(iters.max(1));
        println!("{name:<44} {per_iter:>12} ns/iter   ({iters} iters)");
    }
}

fn reference(h: &Harness) -> DnaSeq {
    ReferenceBuilder::new(h.ref_len()).seed(0xBE).build()
}

fn bench_index_build(h: &Harness) {
    let reference = reference(h);
    h.bench("index_build/suffix_array_sais", 5, || {
        SuffixArray::build(black_box(&reference))
    });
    h.bench("index_build/fm_index", 5, || {
        FmIndex::build(black_box(&reference))
    });
    h.bench("index_build/qgram_index_q10", 5, || {
        QGramIndex::build(black_box(&reference), 10)
    });
}

fn bench_fm_queries(h: &Harness) {
    let reference = reference(h);
    let fm = FmIndex::build(&reference);
    let codes = reference.to_codes();
    let pattern = &codes[1000..1020];
    h.bench("fm_queries/count_20mer", 10_000, || {
        fm.count(black_box(pattern))
    });
    let interval = fm.interval(&codes[1000..1012]).unwrap();
    h.bench("fm_queries/locate_12mer_all", 1_000, || {
        fm.locate(black_box(interval), usize::MAX)
    });
}

fn bench_verification(h: &Harness) {
    let reference = reference(h);
    let codes = reference.to_codes();
    let read64 = &codes[5000..5064];
    let read150 = &codes[5000..5150];
    let window64 = &codes[4995..5075];
    let window150 = &codes[4995..5161];
    let masks64 = myers::PatternMasks::new(read64);
    h.bench("verification/myers64_window80", 10_000, || {
        myers::search(black_box(&masks64), black_box(window64), 5)
    });
    let masks150 = block::BlockMasks::new(read150);
    let mut work = block::BlockWork::default();
    h.bench("verification/myers_blocked150_window166", 10_000, || {
        block::search_with(black_box(&masks150), black_box(window150), 7, &mut work)
    });
    // The §II-A claim check: Myers vs the classic Ukkonen band.
    let target = &codes[5000..5150];
    h.bench("verification/ukkonen_banded150_k7", 1_000, || {
        banded::banded_distance(black_box(read150), black_box(target), 7)
    });
}

fn bench_filtration(h: &Harness) {
    let reference = reference(h);
    let fm = FmIndex::build(&reference);
    let read = reference.subseq(9000..9100).to_codes();
    let params = OssParams::new(5, 12).unwrap();
    let full = params.exploration(Exploration::Full);
    h.bench("filtration_n100_d5/freq_table", 1_000, || {
        FreqTable::build(&fm, black_box(&read), &params)
    });
    let table = FreqTable::build(&fm, &read, &params);
    let solver = OssSolver::new(params);
    h.bench("filtration_n100_d5/oss_dp_restricted", 1_000, || {
        solver.select(black_box(&read), &table)
    });
    h.bench(
        "filtration_n100_d5/freq_table_full_exploration",
        200,
        || FreqTable::build(&fm, black_box(&read), &full),
    );
    let full_table = FreqTable::build(&fm, &read, &full);
    let full_solver = OssSolver::new(full);
    h.bench("filtration_n100_d5/oss_dp_full_exploration", 200, || {
        full_solver.select(black_box(&read), &full_table)
    });
    let greedy = GreedySelector::new(5, 12);
    h.bench("filtration_n100_d5/greedy_serial", 1_000, || {
        greedy.select(black_box(&read), &fm)
    });
    let uniform = UniformSelector::new(5);
    h.bench("filtration_n100_d5/uniform", 1_000, || {
        uniform.select(black_box(&read), &fm)
    });
    let sparse = repute_filter::sparse::SparseSolver::new(params);
    let sparse_table = FreqTable::build(&fm, &read, sparse.params());
    h.bench("filtration_n100_d5/oss_sparse", 1_000, || {
        sparse.select(black_box(&read), &sparse_table)
    });
}

fn bench_affine(h: &Harness) {
    // Gotoh affine-gap vs unit-cost kernels at read scale.
    let reference = reference(h);
    let codes = reference.to_codes();
    let a = &codes[7000..7100];
    let b_seq = &codes[7003..7103];
    let p = repute_align::gotoh::AffinePenalties::bwa_like();
    h.bench("affine_gap_n100/gotoh_bwa_penalties", 1_000, || {
        repute_align::gotoh::affine_distance(black_box(a), black_box(b_seq), p)
    });
    h.bench("affine_gap_n100/unit_edit_distance", 1_000, || {
        repute_align::dp::edit_distance(black_box(a), black_box(b_seq))
    });
}

fn bench_end_to_end(h: &Harness) {
    let indexed = Arc::new(IndexedReference::build(reference(h)));
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 64)
        .profile(ErrorProfile::err012100())
        .seed(0xE2E)
        .simulate(indexed.seq())
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let repute = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(5, 12).unwrap());
    let coral = CoralLike::new(Arc::clone(&indexed), 5);
    let mut cycle = reads.iter().cycle();
    h.bench("map_read_n100_d5/repute", 200, || {
        repute.map_read(black_box(cycle.next().unwrap()))
    });
    let mut cycle = reads.iter().cycle();
    h.bench("map_read_n100_d5/coral", 200, || {
        coral.map_read(black_box(cycle.next().unwrap()))
    });
}

fn main() {
    let h = Harness::new();
    println!(
        "repute micro benches — mode: {} (set REPUTE_BENCH=full for paper scale)",
        if h.full { "full" } else { "smoke" }
    );
    bench_index_build(&h);
    bench_fm_queries(&h);
    bench_verification(&h);
    bench_filtration(&h);
    bench_affine(&h);
    bench_end_to_end(&h);
}
