//! Benchmark harness for the REPUTE reproduction.
//!
//! One binary per paper table/figure (see `src/bin/`), plus Criterion
//! microbenches (`benches/micro.rs`). This library holds the shared
//! pieces: the scaled workload (synthetic chr21 stand-in + simulated read
//! sets) and the cell runner that maps a read set with one mapper on one
//! platform and scores it against the gold standard.
//!
//! # Scale
//!
//! The paper maps 1M+1M real reads to the ~40 Mbp chromosome 21. The
//! default harness scale is a 4 Mbp reference and 1 500 reads per set —
//! every binary prints the active scale — and can be adjusted via the
//! `REPUTE_REF_LEN` and `REPUTE_READS` environment variables. Times are
//! *simulated device seconds* derived from real executed work; shapes
//! (who wins, ratios, crossovers), not absolute values, are the
//! reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod workload;
