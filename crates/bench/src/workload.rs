//! The scaled evaluation workload.

use std::sync::Arc;

use repute_genome::reads::{ErrorProfile, ReadSimulator, SimRead};
use repute_genome::synth::{ReferenceBuilder, RepeatFamily};
use repute_genome::DnaSeq;
use repute_mappers::IndexedReference;

/// Default reference length (the chr21 stand-in; chr21 itself is ~40 Mbp).
pub const DEFAULT_REF_LEN: usize = 4_000_000;
/// Default reads per read set (the paper maps 1M per set).
pub const DEFAULT_READS: usize = 1_500;

/// Scale of a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Reference length in bases.
    pub reference_len: usize,
    /// Reads per read set.
    pub reads_per_set: usize,
}

impl Scale {
    /// The default benchmark scale, overridable via the `REPUTE_REF_LEN`
    /// and `REPUTE_READS` environment variables.
    pub fn from_env() -> Scale {
        let parse = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Scale {
            reference_len: parse("REPUTE_REF_LEN", DEFAULT_REF_LEN),
            reads_per_set: parse("REPUTE_READS", DEFAULT_READS),
        }
    }

    /// A small scale for unit tests.
    pub fn tiny() -> Scale {
        Scale {
            reference_len: 60_000,
            reads_per_set: 40,
        }
    }

    /// One-line description for table headers.
    pub fn describe(&self) -> String {
        format!(
            "scale: {:.1} Mbp reference (chr21≈40 Mbp), {} reads/set (paper: 1M/set)",
            self.reference_len as f64 / 1e6,
            self.reads_per_set
        )
    }
}

/// The full workload of one experiment: indexed reference + both read
/// sets of the paper (n=100 ERR012100-like, n=150 SRR826460-like).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The indexed chr21 stand-in.
    pub indexed: Arc<IndexedReference>,
    /// The n=100 read set with its ground truth.
    pub reads_100: Vec<SimRead>,
    /// The n=150 read set with its ground truth.
    pub reads_150: Vec<SimRead>,
    /// The scale everything was generated at.
    pub scale: Scale,
}

impl Workload {
    /// Generates the workload at the given scale (deterministic).
    ///
    /// The reference carries both *old* (highly diverged) and *young*
    /// (nearly identical) repeat families. The young families are what
    /// make chr21-style mapping hard: copies differ by only 1–2%, so a
    /// read from one copy maps within δ to hundreds of others — the
    /// multi-mapping regime in which seed selection (and the first-n
    /// output limits) actually matter.
    pub fn generate(scale: Scale) -> Workload {
        let len = scale.reference_len;
        let reference = ReferenceBuilder::new(len)
            .seed(0xC21)
            .repeat_families(vec![
                // Old, diverged interspersed repeats (Alu/LINE-like).
                RepeatFamily {
                    unit_len: 300,
                    copies: (len / 1_100).max(1),
                    divergence: 0.12,
                },
                RepeatFamily {
                    unit_len: 2_000,
                    copies: (len / 12_000).max(1),
                    divergence: 0.18,
                },
                // Young subfamilies: nearly identical copies. The short
                // SINE/MIR-like family matters most for the comparison:
                // its units are shorter than a read, so every read that
                // touches a copy has unique flanks — the regime where
                // global seed placement (the DP) beats serial per-section
                // selection.
                RepeatFamily {
                    unit_len: 300,
                    copies: (len / 2_600).max(1),
                    divergence: 0.015,
                },
                RepeatFamily {
                    unit_len: 80,
                    copies: (len / 1_200).max(1),
                    divergence: 0.01,
                },
                RepeatFamily {
                    unit_len: 1_500,
                    copies: (len / 40_000).max(1),
                    divergence: 0.008,
                },
            ])
            .build();
        let reads_100 = ReadSimulator::new(100, scale.reads_per_set)
            .profile(ErrorProfile::err012100())
            .unmappable_fraction(0.02)
            .seed(0x100)
            .simulate(&reference);
        let reads_150 = ReadSimulator::new(150, scale.reads_per_set)
            .profile(ErrorProfile::srr826460())
            .unmappable_fraction(0.02)
            .seed(0x150)
            .simulate(&reference);
        Workload {
            indexed: Arc::new(IndexedReference::build(reference)),
            reads_100,
            reads_150,
            scale,
        }
    }

    /// The read set for a given read length (100 or 150).
    ///
    /// # Panics
    ///
    /// Panics for lengths other than 100 or 150.
    pub fn reads(&self, read_len: usize) -> &[SimRead] {
        match read_len {
            100 => &self.reads_100,
            150 => &self.reads_150,
            other => panic!("no read set of length {other}"),
        }
    }

    /// The read sequences only, for a given read length.
    pub fn read_seqs(&self, read_len: usize) -> Vec<DnaSeq> {
        self.reads(read_len).iter().map(|r| r.seq.clone()).collect()
    }
}

/// The paper's per-read-length minimum k-mer lengths for REPUTE/CORAL
/// (§IV discusses S_min 12–22; these defaults keep every (n, δ) feasible).
pub fn s_min_for(read_len: usize, delta: u32) -> usize {
    let cap = read_len / (delta as usize + 1);
    cap.clamp(10, 15)
}

/// Candidate `S_min` values for per-cell tuning: the paper reports "the
/// best performances of REPUTE taking into consideration the k-mer
/// lengths and workload distribution" (§IV), and uses S_min up to 22 on
/// heterogeneous runs (Fig. 3) because a larger S_min shrinks the kernel
/// and restores GPU occupancy.
pub fn s_min_options(read_len: usize, delta: u32) -> Vec<usize> {
    let mut options = vec![s_min_for(read_len, delta)];
    let large = (read_len / (delta as usize + 1)).min(22);
    if large > options[0] {
        options.push(large);
    }
    options
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_generates_both_sets() {
        let w = Workload::generate(Scale::tiny());
        assert_eq!(w.reads_100.len(), 40);
        assert_eq!(w.reads_150.len(), 40);
        assert_eq!(w.reads(100)[0].seq.len(), 100);
        assert_eq!(w.reads(150)[0].seq.len(), 150);
        assert_eq!(w.indexed.len(), 60_000);
    }

    #[test]
    fn deterministic_generation() {
        let a = Workload::generate(Scale::tiny());
        let b = Workload::generate(Scale::tiny());
        assert_eq!(a.reads_100, b.reads_100);
        assert_eq!(a.indexed.seq(), b.indexed.seq());
    }

    #[test]
    fn s_min_feasible_for_every_paper_cell() {
        for (n, deltas) in [(100usize, [3u32, 4, 5]), (150, [5, 6, 7])] {
            for d in deltas {
                let s = s_min_for(n, d);
                assert!(
                    s * (d as usize + 1) <= n,
                    "infeasible s_min {s} for ({n}, {d})"
                );
                assert!(s >= 10);
            }
        }
    }

    #[test]
    fn workload_reference_has_chr21_like_repeat_mass() {
        // The evaluation's argument (DESIGN.md §2) rests on the synthetic
        // reference carrying real repeat structure; quantify it with the
        // LCP array. Human chr21 has ~40% of positions inside repeats at
        // 20-mer resolution; the stand-in should be within shouting
        // distance and far above a random sequence.
        let w = Workload::generate(Scale {
            reference_len: 200_000,
            reads_per_set: 1,
        });
        let codes = w.indexed.seq().to_codes();
        let sa = repute_index::SuffixArray::from_codes(&codes);
        let lcp = repute_index::LcpArray::build(&codes, &sa);
        let mass = lcp.repeat_fraction(20);
        assert!(
            (0.10..=0.70).contains(&mass),
            "repeat mass {mass} out of the chr21-like range"
        );
        // And the young families leave long near-exact copies around.
        assert!(lcp.longest_repeat() >= 60);
    }

    #[test]
    fn s_min_options_are_feasible_and_deduplicated() {
        for (n, deltas) in [(100usize, [3u32, 4, 5]), (150, [5, 6, 7])] {
            for d in deltas {
                let options = s_min_options(n, d);
                assert!(!options.is_empty());
                let mut sorted = options.clone();
                sorted.dedup();
                assert_eq!(sorted, options);
                for s in options {
                    assert!(
                        s * (d as usize + 1) <= n,
                        "infeasible option {s} for ({n}, {d})"
                    );
                }
            }
        }
        // Large-slack cells offer the paper's S_min=22.
        assert!(s_min_options(150, 5).contains(&22));
    }

    #[test]
    #[should_panic(expected = "no read set")]
    fn unknown_read_length_rejected() {
        let w = Workload::generate(Scale::tiny());
        let _ = w.reads(75);
    }

    #[test]
    fn scale_describe_mentions_numbers() {
        let d = Scale::tiny().describe();
        assert!(d.contains("0.1 Mbp"));
        assert!(d.contains("40 reads"));
    }
}
