//! The cell runner: one mapper × one configuration × one platform.

use std::sync::Arc;

use repute_core::{map_on_platform_with_metrics, MappingRun};
use repute_eval::accuracy::{all_locations_accuracy, any_best_accuracy, GoldStandard};
use repute_eval::CellResult;
use repute_genome::DnaSeq;
use repute_hetsim::{EnergyReport, Platform, Share};
use repute_mappers::razers3::Razers3Like;
use repute_mappers::{IndexedReference, Mapper, Mapping};
use repute_obs::json::JsonObject;
use repute_obs::{MapMetrics, RunReport};

/// Which of the paper's accuracy methodologies a cell is scored with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyMethod {
    /// §III-A: every gold location must be recovered.
    AllLocations,
    /// §III-B/C: one best-stratum location per read suffices.
    AnyBest,
}

/// Everything one cell run produced.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Time and accuracy, ready for a results table.
    pub result: CellResult,
    /// Per-read mapping lists (for downstream gold-standard use).
    pub outputs: Vec<Vec<Mapping>>,
    /// §III-D power/energy measurement of the run.
    pub energy: EnergyReport,
    /// Total substrate work of the run.
    pub work: u64,
    /// Per-read pipeline telemetry, index-aligned with `outputs`.
    pub metrics: Vec<MapMetrics>,
    /// Run-level roll-up: counters, device timelines, energy summary.
    pub report: RunReport,
}

impl CellOutcome {
    /// Writes the cell's full telemetry as JSON-lines: one `read` record
    /// per read followed by the [`RunReport`] records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_json_lines<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for (id, m) in self.metrics.iter().enumerate() {
            writeln!(out, "{}", m.to_json_line(id as u64))?;
        }
        self.report.write_json_lines(out)
    }

    /// Appends this cell's telemetry to the file named by the
    /// `REPUTE_METRICS_OUT` environment variable, prefixed with a `cell`
    /// record carrying `label`. A no-op when the variable is unset; export
    /// failures are reported to stderr, never fatal to the benchmark.
    pub fn export_if_requested(&self, label: &str) {
        let Ok(path) = std::env::var("REPUTE_METRICS_OUT") else {
            return;
        };
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|file| {
                let mut out = std::io::BufWriter::new(file);
                let mut obj = JsonObject::new();
                obj.str_field("type", "cell");
                obj.str_field("label", label);
                use std::io::Write as _;
                writeln!(out, "{}", obj.finish())?;
                self.write_json_lines(&mut out)
            });
        if let Err(err) = result {
            eprintln!("warning: metrics export to {path} failed: {err}");
        }
    }
}

/// Builds the §III-A gold standard: the RazerS3-style all-mapper with its
/// paper configuration (100 locations per read).
pub fn gold_standard(
    indexed: &Arc<IndexedReference>,
    delta: u32,
    reads: &[DnaSeq],
) -> GoldStandard {
    let gold_mapper = Razers3Like::new(Arc::clone(indexed), delta);
    let per_read = reads
        .iter()
        .map(|r| gold_mapper.map_read(r).mappings)
        .collect();
    GoldStandard::new(per_read)
}

/// Runs `mapper` over `reads` on `platform` with the given distribution
/// and scores it against `gold`.
///
/// # Panics
///
/// Panics if the launch distribution is invalid for the platform (the
/// harness constructs its own shares, so this indicates a harness bug).
pub fn run_cell(
    mapper: &dyn Mapper,
    reads: &[DnaSeq],
    platform: &Platform,
    shares: &[Share],
    gold: &GoldStandard,
    method: AccuracyMethod,
    tolerance: u32,
) -> CellOutcome {
    let (run, metrics): (MappingRun, Vec<MapMetrics>) =
        map_on_platform_with_metrics(&mapper, platform, shares, reads)
            .expect("harness-built shares are valid");
    let report = run.report(platform, &metrics);
    let outputs: Vec<Vec<Mapping>> = run.outputs.iter().map(|o| o.mappings.clone()).collect();
    let accuracy_pct = match method {
        AccuracyMethod::AllLocations => all_locations_accuracy(gold, &outputs, tolerance),
        AccuracyMethod::AnyBest => any_best_accuracy(gold, &outputs, tolerance),
    };
    CellOutcome {
        result: CellResult {
            time_s: run.simulated_seconds,
            accuracy_pct,
        },
        outputs,
        energy: run.energy,
        work: run.total_work(),
        metrics,
        report,
    }
}

/// Position-matching tolerance for accuracy comparisons: mappers report
/// either candidate diagonals or end-derived starts, each accurate to ±δ,
/// so two mappers' positions for the same location can differ by 2δ
/// (Rabema's interval matching absorbs the same slack).
pub fn match_tolerance(delta: u32) -> u32 {
    2 * delta
}

/// The standard per-table cell grid of the paper: `(read_len, δ)` pairs.
pub const PAPER_GRID: [(usize, u32); 6] =
    [(100, 3), (100, 4), (100, 5), (150, 5), (150, 6), (150, 7)];

/// Column labels for [`PAPER_GRID`].
pub fn grid_columns() -> Vec<String> {
    PAPER_GRID
        .iter()
        .map(|(n, d)| format!("n={n} δ={d}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Scale, Workload};
    use repute_core::{ReputeConfig, ReputeMapper};
    use repute_hetsim::profiles;

    #[test]
    fn repute_scores_high_any_best_on_tiny_workload() {
        let w = Workload::generate(Scale::tiny());
        let reads = w.read_seqs(100);
        let gold = gold_standard(&w.indexed, 3, &reads);
        let mapper = ReputeMapper::new(Arc::clone(&w.indexed), ReputeConfig::new(3, 15).unwrap());
        let platform = profiles::system1_cpu_only();
        let outcome = run_cell(
            &mapper,
            &reads,
            &platform,
            &platform.single_device_share(0, reads.len()),
            &gold,
            AccuracyMethod::AnyBest,
            3,
        );
        assert!(
            outcome.result.accuracy_pct > 95.0,
            "{}",
            outcome.result.accuracy_pct
        );
        assert!(outcome.result.time_s > 0.0);
        assert!(outcome.work > 0);
    }

    #[test]
    fn cell_outcome_carries_consistent_telemetry() {
        use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};
        use repute_obs::json::{field, parse_flat_object};

        let w = Workload::generate(Scale::tiny());
        let reads: Vec<_> = w.read_seqs(100).into_iter().take(60).collect();
        let gold = gold_standard(&w.indexed, 3, &reads);
        let mapper = ReputeMapper::new(Arc::clone(&w.indexed), ReputeConfig::new(3, 15).unwrap());
        let platform = profiles::system1();
        let shares = repute_core::balanced_shares(&mapper, &platform, 100, reads.len());
        let outcome = run_cell(
            &mapper,
            &reads,
            &platform,
            &shares,
            &gold,
            AccuracyMethod::AnyBest,
            3,
        );
        assert_eq!(outcome.metrics.len(), reads.len());
        assert_eq!(outcome.report.reads, reads.len() as u64);
        // The per-read records decompose the run's work scalar exactly.
        let decomposed: u64 = outcome
            .metrics
            .iter()
            .map(|m| m.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST))
            .sum();
        assert_eq!(decomposed, outcome.work);
        // The report's energy summary mirrors the run's EnergyReport.
        let summary = outcome.report.energy.expect("platform run has energy");
        assert!((summary.energy_j - outcome.energy.energy_j).abs() < 1e-9);
        assert!((summary.mapping_seconds - outcome.energy.mapping_seconds).abs() < 1e-12);
        // The JSON-lines export parses back: one read record per read,
        // then the run-report records.
        let mut buf = Vec::new();
        outcome.write_json_lines(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut read_lines = 0u64;
        let mut saw_event = false;
        for line in text.lines() {
            let fields = parse_flat_object(line).expect("line parses");
            match field(&fields, "type").unwrap().as_str().unwrap() {
                "read" => read_lines += 1,
                "event" => saw_event = true,
                _ => {}
            }
        }
        assert_eq!(read_lines, reads.len() as u64);
        assert!(saw_event, "device timelines must export kernel events");
    }

    #[test]
    fn gold_standard_scores_itself_perfectly() {
        let w = Workload::generate(Scale::tiny());
        let reads = w.read_seqs(100);
        let gold = gold_standard(&w.indexed, 3, &reads);
        let mapper = Razers3Like::new(Arc::clone(&w.indexed), 3);
        let platform = profiles::system1_cpu_only();
        let outcome = run_cell(
            &mapper,
            &reads,
            &platform,
            &platform.single_device_share(0, reads.len()),
            &gold,
            AccuracyMethod::AllLocations,
            3,
        );
        assert_eq!(outcome.result.accuracy_pct, 100.0);
    }

    #[test]
    fn grid_matches_paper_columns() {
        assert_eq!(PAPER_GRID.len(), 6);
        let cols = grid_columns();
        assert_eq!(cols[0], "n=100 δ=3");
        assert_eq!(cols[5], "n=150 δ=7");
    }
}
