//! Serve fault-tolerance ablation: the degradation curve under device
//! loss, concurrent-batch speedup over the serialized PR 9 execution
//! path, deadline shedding, and the all-devices-lost drain — plus the
//! `BENCH_pr10.json` baseline and its CI regression gate.
//!
//! The smoke section (always runs, nonzero exit on any failure):
//!
//! 1. Concurrency ablation: the pinned 10-job workload under
//!    `--serial-batches` (the PR 9 one-batch-at-a-time path) versus the
//!    default concurrent mode. Per-job SAM must be byte-identical —
//!    batch concurrency is a timing optimisation, never a mapping
//!    change — and the concurrent run must finish in strictly fewer
//!    simulated seconds.
//! 2. Degradation curve: the same workload with `k = 0, 1, 2` devices
//!    lost mid-run via a correlated fault (sparing device 0, the CPU).
//!    Every job must still complete with SAM bytes identical to the
//!    fault-free run — only latency may move — and the deadline job's
//!    SLO hit-rate is recorded per `k`.
//! 3. Deadline shedding: with `--shed-overdue`, a job whose deadline
//!    expires while queued behind an earlier-deadline batch is shed
//!    with a typed `DEADLINE_EXCEEDED` instead of mapped late.
//! 4. All-devices-lost: a correlated loss of the whole fleet answers
//!    still-queued work with a typed `SERVICE_UNAVAILABLE` — no panic,
//!    no silent drop.
//!
//! Baseline modes (mirroring the other trajectory gates):
//!
//! * `--write <path>` — write `BENCH_pr10.json`: serial, concurrent,
//!   and degraded simulated seconds (gated), plus the concurrency
//!   speedup and per-`k` deadline hit-rates (informational).
//! * `--check <path>` — re-run the smoke suite, schema-validate the
//!   committed document, and fail (exit 1) when any gated metric
//!   exceeds its committed value by more than 20%.

use std::collections::HashMap;

use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, FaultPlan};
use repute_obs::json::{field, parse_json, JsonObject, JsonValue};
use repute_serve::{JobEnvelope, JobResponse, JobStatus, ServeHarness, ServeOptions};

/// Schema identifier of the fault-tolerance baseline document.
const SCHEMA: &str = "repute-bench-serve-faults";
/// Schema version; bump on any key change and regenerate the baseline.
const VERSION: u64 = 1;
/// Fresh gated metrics may exceed the committed baseline by at most
/// this factor before the check fails.
const REGRESSION_FACTOR: f64 = 1.2;

/// Pinned smoke scale (deterministic; environment overrides are
/// ignored so the committed baseline stays comparable).
const REF_LEN: usize = 60_000;
const READS_PER_JOB: usize = 1;
const JOBS_PER_TENANT: usize = 6;
/// `system1` ships one CPU and two GPUs.
const DEVICES: usize = 3;
/// Strikes mid-workload: the pinned workload spans ~1.8e-3 simulated
/// seconds, so a 1e-4 fault lands after the first batches launch.
const LOSS_AT_S: f64 = 1.0e-4;

const TENANTS: [&str; 3] = ["acme", "lab", "edge"];

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn reference() -> DnaSeq {
    ReferenceBuilder::new(REF_LEN).seed(9901).build()
}

fn reference_set() -> repute_mappers::multiref::ReferenceSet {
    repute_mappers::multiref::ReferenceSet::build(vec![("chrH".to_string(), reference())])
}

fn options() -> ServeOptions {
    ServeOptions {
        tenant_weights: vec![("acme".to_string(), 2.0)],
        ..ServeOptions::default()
    }
}

/// A serving-shaped workload: 3 tenants × 6 single-read jobs cycling
/// δ ∈ {3..8} — many distinct configuration groups of batches far too
/// small to fill the fleet, which is exactly where overlapping
/// independent batches on disjoint device subsets beats serializing
/// full-fleet batches.
fn plain_jobs(reference: &DnaSeq) -> Vec<JobEnvelope> {
    let mut jobs = Vec::new();
    for (t, tenant) in TENANTS.iter().enumerate() {
        for j in 0..JOBS_PER_TENANT {
            let index = t * JOBS_PER_TENANT + j;
            let reads: Vec<(String, DnaSeq)> = (0..READS_PER_JOB)
                .map(|i| {
                    let start = 1_000 + (index * 3_000 + i * 700) % 50_000;
                    (
                        format!("{tenant}-{j}-r{i}"),
                        reference.subseq(start..start + 100),
                    )
                })
                .collect();
            let delta = [3u32, 4, 5, 6, 7, 8][index % 6];
            jobs.push(
                JobEnvelope::new(format!("{tenant}-{j}"), reads)
                    .with_tenant(*tenant)
                    .with_delta(delta),
            );
        }
    }
    jobs
}

/// The plain workload plus a last-submitted `lab` deadline job — the
/// SLO probe of the degradation curve. Kept out of the concurrency
/// ablation: an EDF dispatch charges fair service, so a deadline job
/// perturbs the whole interleave and the two modes would no longer
/// compare the same batch structure.
fn deadline_jobs(reference: &DnaSeq) -> Vec<JobEnvelope> {
    let mut jobs = plain_jobs(reference);
    jobs.push(
        JobEnvelope::new(
            "lab-urgent",
            vec![("urgent-r".to_string(), reference.subseq(48_000..48_100))],
        )
        .with_tenant("lab")
        .with_delta(4)
        .with_deadline(0.001)
        .with_priority(7),
    );
    jobs
}

fn submit_all(harness: &mut ServeHarness, jobs: &[JobEnvelope]) {
    for job in jobs {
        match harness.submit(job.clone()) {
            Ok(None) => {}
            Ok(Some(refusal)) => fail(&format!("unexpected refusal: {refusal:?}")),
            Err(e) => fail(&format!("submit {:?}: {e}", job.id)),
        }
    }
}

fn sam_by_id(responses: &[JobResponse]) -> HashMap<String, String> {
    responses
        .iter()
        .map(|r| {
            (
                r.id.clone(),
                r.sam
                    .clone()
                    .unwrap_or_else(|| fail("completed job without SAM")),
            )
        })
        .collect()
}

/// Runs `jobs` to completion under `opts`; returns the drained harness
/// and its responses.
fn run_workload(jobs: &[JobEnvelope], opts: ServeOptions) -> (ServeHarness, Vec<JobResponse>) {
    let mut harness = match ServeHarness::new(reference_set(), profiles::system1(), opts) {
        Ok(harness) => harness,
        Err(e) => fail(&format!("harness construction: {e}")),
    };
    submit_all(&mut harness, jobs);
    let responses = match harness.drain() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("drain: {e}")),
    };
    (harness, responses)
}

/// Correlated loss of the top `k` devices at `LOSS_AT_S`, always
/// sparing device 0 so the service degrades instead of dying.
fn loss_plan(k: usize) -> FaultPlan {
    let doomed: Vec<usize> = (DEVICES - k..DEVICES).collect();
    if doomed.is_empty() {
        FaultPlan::new()
    } else {
        FaultPlan::new().correlated(&doomed, LOSS_AT_S)
    }
}

struct SmokeResult {
    serial_seconds: f64,
    concurrent_seconds: f64,
    /// Simulated seconds with k = 0, 1, 2 devices lost (concurrent).
    degraded_seconds: [f64; DEVICES],
    /// Deadline hit-rate of tenant `lab` with k devices lost.
    hit_rates: [f64; DEVICES],
}

fn lab_hit_rate(harness: &ServeHarness) -> f64 {
    harness
        .core()
        .slo_reports()
        .iter()
        .find(|r| r.tenant == "lab")
        .map(|r| r.hit_rate())
        .unwrap_or_else(|| fail("no SLO report for tenant lab"))
}

fn run_smoke() -> SmokeResult {
    // --- 1. Concurrency ablation: serialized PR 9 path vs concurrent.
    let plain = plain_jobs(&reference());
    let serial_opts = ServeOptions {
        concurrent_batches: false,
        ..options()
    };
    let (serial, serial_responses) = run_workload(&plain, serial_opts);
    let serial_seconds = serial.core().simulated_seconds();
    let (concurrent, concurrent_responses) = run_workload(&plain, options());
    let concurrent_seconds = concurrent.core().simulated_seconds();
    let serial_sam = sam_by_id(&serial_responses);
    let concurrent_sam = sam_by_id(&concurrent_responses);
    if serial_sam != concurrent_sam {
        fail("concurrent batches changed SAM output — concurrency must be timing-only");
    }
    if concurrent_seconds >= serial_seconds {
        fail(&format!(
            "concurrent batches are not faster: {concurrent_seconds:.9} s \
             concurrent vs {serial_seconds:.9} s serialized"
        ));
    }
    println!(
        "  concurrency OK: {serial_seconds:.6} s serialized → {concurrent_seconds:.6} s \
         concurrent ({:.2}x) over {} jobs",
        serial_seconds / concurrent_seconds,
        serial_sam.len()
    );

    // --- 2. Degradation curve: k = 0, 1, 2 devices lost mid-run, on
    // the workload carrying the deadline job (k = 0 is the fault-free
    // SAM baseline the degraded fleets must reproduce byte-for-byte).
    let with_deadline = deadline_jobs(&reference());
    let mut degraded_seconds = [0.0; DEVICES];
    let mut hit_rates = [0.0; DEVICES];
    let mut baseline_sam: Option<HashMap<String, String>> = None;
    for k in 0..DEVICES {
        let opts = ServeOptions {
            fault_plan: loss_plan(k),
            ..options()
        };
        let (harness, responses) = run_workload(&with_deadline, opts);
        for r in &responses {
            if r.status != JobStatus::Ok {
                fail(&format!(
                    "k={k}: job {:?} did not complete under degradation: {:?}",
                    r.id, r.status
                ));
            }
        }
        let sam = sam_by_id(&responses);
        match &baseline_sam {
            None => baseline_sam = Some(sam),
            Some(baseline) => {
                if &sam != baseline {
                    fail(&format!(
                        "k={k}: SAM under device loss differs from the fault-free run"
                    ));
                }
            }
        }
        let health = harness.core().health();
        if health.lost_count() != k || harness.core().is_unavailable() {
            fail(&format!(
                "k={k}: expected exactly {k} lost device(s) and a live service, \
                 got {} lost, unavailable={}",
                health.lost_count(),
                harness.core().is_unavailable()
            ));
        }
        degraded_seconds[k] = harness.core().simulated_seconds();
        hit_rates[k] = lab_hit_rate(&harness);
        println!(
            "  degradation k={k}: {:.6} s simulated | lab deadline hit-rate {:.2} | \
             {} survivor(s)",
            degraded_seconds[k],
            hit_rates[k],
            health.live_count()
        );
    }
    if hit_rates[0] < 1.0 {
        fail("the deadline job must meet its SLO on a healthy fleet");
    }

    // --- 3. Deadline shedding: overdue queued work is refused typed. --
    let shed_opts = ServeOptions {
        shed_overdue: true,
        concurrent_batches: false,
        ..options()
    };
    let mut shedding = match ServeHarness::new(reference_set(), profiles::system1(), shed_opts) {
        Ok(harness) => harness,
        Err(e) => fail(&format!("shedding harness: {e}")),
    };
    let reference = reference();
    let urgent_reads: Vec<(String, DnaSeq)> =
        vec![("shed-u-r".to_string(), reference.subseq(5_000..5_100))];
    let late_reads: Vec<(String, DnaSeq)> =
        vec![("shed-l-r".to_string(), reference.subseq(9_000..9_100))];
    submit_all(
        &mut shedding,
        &[
            JobEnvelope::new("shed-urgent", urgent_reads)
                .with_tenant("acme")
                .with_deadline(1.0e-12),
            JobEnvelope::new("shed-late", late_reads)
                .with_tenant("lab")
                .with_delta(3)
                .with_deadline(1.0e-9),
        ],
    );
    let responses = match shedding.drain() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("shedding drain: {e}")),
    };
    let late = responses
        .iter()
        .find(|r| r.id == "shed-late")
        .unwrap_or_else(|| fail("no response for the overdue job"));
    if late.status != JobStatus::DeadlineExceeded || shedding.counters().shed != 1 {
        fail(&format!(
            "expected one typed DEADLINE_EXCEEDED shed, got {:?} (shed counter {})",
            late.status,
            shedding.counters().shed
        ));
    }
    println!(
        "  shedding OK: {:?} shed — {}",
        late.id,
        late.reason.as_deref().unwrap_or("?")
    );

    // --- 4. All devices lost: typed SERVICE_UNAVAILABLE, no panic. ----
    let doomed_opts = ServeOptions {
        fault_plan: FaultPlan::new().correlated(&[0, 1, 2], 1.0e-9),
        ..options()
    };
    let mut doomed = match ServeHarness::new(reference_set(), profiles::system1(), doomed_opts) {
        Ok(harness) => harness,
        Err(e) => fail(&format!("doomed harness: {e}")),
    };
    // Four distinct configuration groups: the first round launches at
    // most three (one per live device), so at least one job is still
    // queued when the whole fleet dies.
    let doomed_jobs: Vec<JobEnvelope> = [5u32, 3, 4, 6]
        .iter()
        .enumerate()
        .map(|(i, delta)| {
            let start = 12_000 + i * 3_000;
            JobEnvelope::new(
                format!("doomed-{i}"),
                vec![(
                    format!("doomed-{i}-r"),
                    reference.subseq(start..start + 100),
                )],
            )
            .with_tenant("acme")
            .with_delta(*delta)
        })
        .collect();
    submit_all(&mut doomed, &doomed_jobs);
    let responses = match doomed.drain() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("doomed drain: {e}")),
    };
    let unavailable = responses
        .iter()
        .filter(|r| r.status == JobStatus::ServiceUnavailable)
        .count();
    if unavailable == 0 || !doomed.core().is_unavailable() {
        fail("losing every device must answer queued work SERVICE_UNAVAILABLE");
    }
    println!(
        "  all-lost OK: {} completed before the loss, {unavailable} answered \
         SERVICE_UNAVAILABLE, daemon drained",
        responses.len() - unavailable
    );

    SmokeResult {
        serial_seconds,
        concurrent_seconds,
        degraded_seconds,
        hit_rates,
    }
}

fn render_document(r: &SmokeResult) -> String {
    let mut doc = JsonObject::new();
    doc.str_field("schema", SCHEMA);
    doc.u64_field("version", VERSION);
    doc.u64_field("reference_len", REF_LEN as u64);
    doc.u64_field("jobs", (TENANTS.len() * JOBS_PER_TENANT + 1) as u64);
    doc.u64_field("devices", DEVICES as u64);
    // Gated: deterministic simulated time on the serialized PR 9 path,
    // the concurrent path, and the degraded fleets.
    doc.f64_field("simulated_seconds_serial", r.serial_seconds);
    doc.f64_field("simulated_seconds_concurrent", r.concurrent_seconds);
    doc.f64_field("degraded_seconds_1lost", r.degraded_seconds[1]);
    doc.f64_field("degraded_seconds_2lost", r.degraded_seconds[2]);
    // Informational: the fault-free point of the degradation curve
    // (CPU-only can beat the full fleet here — small batches waste the
    // lone-GPU subsets concurrent rounds hand out), the speedup, and
    // the deadline hit-rate curve.
    doc.f64_field("degraded_seconds_0lost", r.degraded_seconds[0]);
    doc.f64_field(
        "concurrency_speedup",
        r.serial_seconds / r.concurrent_seconds,
    );
    doc.f64_field("deadline_hit_rate_0lost", r.hit_rates[0]);
    doc.f64_field("deadline_hit_rate_1lost", r.hit_rates[1]);
    doc.f64_field("deadline_hit_rate_2lost", r.hit_rates[2]);
    let mut text = doc.finish();
    text.push('\n');
    text
}

/// The gated (deterministic) metric keys.
const GATED: [&str; 4] = [
    "simulated_seconds_serial",
    "simulated_seconds_concurrent",
    "degraded_seconds_1lost",
    "degraded_seconds_2lost",
];

/// Validates the committed document; returns the gated metrics.
fn validate_document(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse_json(text).ok_or("not valid JSON")?;
    let fields = doc.as_obj().ok_or("top level is not an object")?;
    let schema = field(fields, "schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let version = field(fields, "version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"version\"")?;
    if version != VERSION {
        return Err(format!("schema version is {version}, expected {VERSION}"));
    }
    for required in ["jobs", "devices"] {
        if field(fields, required)
            .and_then(JsonValue::as_u64)
            .is_none()
        {
            return Err(format!("missing integer field {required:?}"));
        }
    }
    for informational in [
        "degraded_seconds_0lost",
        "concurrency_speedup",
        "deadline_hit_rate_0lost",
        "deadline_hit_rate_1lost",
        "deadline_hit_rate_2lost",
    ] {
        if field(fields, informational)
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("missing numeric field {informational:?}"));
        }
    }
    let mut out = Vec::new();
    for key in GATED {
        let value = field(fields, key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.as_slice() {
        [] => None,
        [mode, path] if mode == "--write" || mode == "--check" => {
            Some((mode.as_str(), path.as_str()))
        }
        _ => {
            eprintln!("usage: serve_faults [--write <path> | --check <path>]");
            std::process::exit(1);
        }
    };
    println!("Serve fault-tolerance ablation — degradation curve, concurrency, shedding, drain");
    println!(
        "pinned scale: {REF_LEN} bp reference, {} tenants × {JOBS_PER_TENANT} jobs × \
         {READS_PER_JOB} reads (+1 deadline job), {DEVICES} simulated devices",
        TENANTS.len()
    );
    let result = run_smoke();
    println!("smoke OK");

    let Some((mode, path)) = mode else { return };
    if mode == "--write" {
        let text = render_document(&result);
        if let Err(err) = validate_document(&text) {
            fail(&format!(
                "freshly written document fails its own schema: {err}"
            ));
        }
        if std::fs::write(path, &text).is_err() {
            fail(&format!("cannot write {path}"));
        }
        println!("wrote fault-tolerance baseline to {path}");
        return;
    }

    // --check: schema-validate and gate the deterministic metrics.
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => fail(&format!("cannot read {path}: {err}")),
    };
    let committed = match validate_document(&committed) {
        Ok(metrics) => metrics,
        Err(err) => fail(&format!("{path} violates the fault schema: {err}")),
    };
    println!("schema OK: {} gated metric(s)", committed.len());
    let fresh = [
        ("simulated_seconds_serial", result.serial_seconds),
        ("simulated_seconds_concurrent", result.concurrent_seconds),
        ("degraded_seconds_1lost", result.degraded_seconds[1]),
        ("degraded_seconds_2lost", result.degraded_seconds[2]),
    ];
    let mut regressed = false;
    for (key, committed_value) in &committed {
        let Some((_, fresh_value)) = fresh.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let limit = committed_value * REGRESSION_FACTOR;
        let verdict = if *fresh_value > limit {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {key:<28} committed {committed_value:.9} | fresh {fresh_value:.9} | \
             limit {limit:.9} [{verdict}]"
        );
    }
    if regressed {
        fail(&format!(
            "fault-tolerance regression beyond {REGRESSION_FACTOR}x; \
             refresh intentional changes with --write"
        ));
    }
    println!("fault-tolerance trajectory gate OK");
}
