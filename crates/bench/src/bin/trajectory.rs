//! Benchmark trajectory: the committed, schema-versioned performance
//! baseline (`BENCH_pr6.json`) and its CI regression gate.
//!
//! Two modes:
//!
//! * `--write <path>` — run the fixed trajectory workload and write the
//!   baseline document: per cell, wall and simulated seconds, word-op
//!   totals, and per-stage latency percentiles.
//! * `--check <path>` — re-run the same workload fresh, validate the
//!   committed document against the schema, and **fail (exit 1) when any
//!   cell's fresh simulated seconds exceed the committed baseline by more
//!   than 20%** — the regression gate CI runs on every push.
//!
//! The trajectory scale is pinned (60 kbp reference, 40 reads/set) and
//! deliberately ignores the `REPUTE_REF_LEN`/`REPUTE_READS` environment
//! overrides: the committed numbers are only comparable when every run
//! maps the identical workload. Simulated seconds are a deterministic
//! function of the workload and mapper, so an unchanged tree reproduces
//! the baseline exactly; the 20% headroom absorbs intentional
//! cost-model changes small enough not to need a baseline refresh
//! (larger changes regenerate the file with `--write`).

use std::sync::Arc;

use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{map_scheduled, ReputeConfig, ReputeMapper, Schedule, AUTO_HOST_THREADS};
use repute_hetsim::profiles;
use repute_obs::json::{field, parse_json, JsonObject, JsonValue};
use repute_obs::StageLatency;

/// Schema identifier of the trajectory document.
const SCHEMA: &str = "repute-bench-trajectory";
/// Schema version; bump on any key change and regenerate the baseline.
const VERSION: u64 = 1;
/// Fresh simulated seconds may exceed the committed baseline by at most
/// this factor before the check fails.
const REGRESSION_FACTOR: f64 = 1.2;

/// The pinned trajectory scale (environment overrides are ignored; see
/// the module docs).
fn trajectory_scale() -> Scale {
    Scale {
        reference_len: 60_000,
        reads_per_set: 40,
    }
}

/// The `(read_len, δ)` cells the trajectory tracks: the corners and
/// center of the paper grid — enough to catch regressions in both read
/// sets without making the CI gate slow.
const CELLS: [(usize, u32); 3] = [(100, 3), (100, 5), (150, 7)];

/// One measured trajectory cell.
struct CellMeasurement {
    label: String,
    read_len: usize,
    delta: u32,
    wall_seconds: f64,
    simulated_seconds: f64,
    word_updates: u64,
    prefilter_words: u64,
    latencies: Vec<StageLatency>,
}

/// Maps a report stage path (`map/filtration`) to its flat key prefix
/// (`filtration`).
fn stage_key(stage: &str) -> String {
    stage.rsplit('/').next().unwrap_or(stage).to_string()
}

fn measure() -> Vec<CellMeasurement> {
    let w = Workload::generate(trajectory_scale());
    let platform = profiles::system1();
    CELLS
        .iter()
        .map(|&(read_len, delta)| {
            let reads = w.read_seqs(read_len);
            let config =
                ReputeConfig::new(delta, s_min_for(read_len, delta)).expect("valid config");
            let mapper = ReputeMapper::new(Arc::clone(&w.indexed), config);
            let schedule = Schedule::Static(platform.even_shares(reads.len()));
            let (run, metrics) =
                map_scheduled(&mapper, &platform, &schedule, AUTO_HOST_THREADS, &reads)
                    .expect("trajectory cell run failed");
            let report = run.report(&platform, &metrics);
            CellMeasurement {
                label: format!("n={read_len} d={delta}"),
                read_len,
                delta,
                wall_seconds: run.wall_seconds,
                simulated_seconds: run.simulated_seconds,
                word_updates: report.totals.word_updates,
                prefilter_words: report.totals.prefilter_words,
                latencies: report.latencies,
            }
        })
        .collect()
}

fn render_document(cells: &[CellMeasurement]) -> String {
    let cell_objects: Vec<String> = cells
        .iter()
        .map(|c| {
            let mut obj = JsonObject::new();
            obj.str_field("label", &c.label);
            obj.u64_field("read_len", c.read_len as u64);
            obj.u64_field("delta", u64::from(c.delta));
            obj.f64_field("wall_seconds", c.wall_seconds);
            obj.f64_field("simulated_seconds", c.simulated_seconds);
            obj.u64_field("word_updates", c.word_updates);
            obj.u64_field("prefilter_words", c.prefilter_words);
            for lat in &c.latencies {
                let key = stage_key(&lat.stage);
                obj.u64_field(&format!("{key}_n"), lat.count);
                obj.f64_field(&format!("{key}_p50_s"), lat.p50_seconds);
                obj.f64_field(&format!("{key}_p90_s"), lat.p90_seconds);
                obj.f64_field(&format!("{key}_p99_s"), lat.p99_seconds);
            }
            obj.finish()
        })
        .collect();
    let scale = trajectory_scale();
    let mut scale_obj = JsonObject::new();
    scale_obj.u64_field("reference_len", scale.reference_len as u64);
    scale_obj.u64_field("reads_per_set", scale.reads_per_set as u64);
    let mut doc = JsonObject::new();
    doc.str_field("schema", SCHEMA);
    doc.u64_field("version", VERSION);
    doc.raw_field("scale", &scale_obj.finish());
    doc.raw_field("cells", &format!("[{}]", cell_objects.join(",")));
    let mut text = doc.finish();
    text.push('\n');
    text
}

/// Validates the committed document's shape; returns the cells keyed by
/// label, or the first schema violation.
fn validate_document(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse_json(text).ok_or("not valid JSON")?;
    let fields = doc.as_obj().ok_or("top level is not an object")?;
    let schema = field(fields, "schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let version = field(fields, "version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"version\"")?;
    if version != VERSION {
        return Err(format!("schema version is {version}, expected {VERSION}"));
    }
    field(fields, "scale")
        .and_then(JsonValue::as_obj)
        .ok_or("missing object field \"scale\"")?;
    let cells = field(fields, "cells")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array field \"cells\"")?;
    if cells.is_empty() {
        return Err("\"cells\" is empty".into());
    }
    let mut out = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let cell = cell
            .as_obj()
            .ok_or_else(|| format!("cell {i} is not an object"))?;
        let label = field(cell, "label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("cell {i} is missing \"label\""))?;
        for required in [
            "read_len",
            "delta",
            "wall_seconds",
            "simulated_seconds",
            "word_updates",
            "prefilter_words",
            "filtration_p50_s",
            "filtration_p90_s",
            "filtration_p99_s",
            "batch_p50_s",
            "batch_p99_s",
        ] {
            if field(cell, required).and_then(JsonValue::as_f64).is_none() {
                return Err(format!(
                    "cell {label:?} is missing numeric field {required:?}"
                ));
            }
        }
        let simulated = field(cell, "simulated_seconds")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        out.push((label.to_string(), simulated));
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "--write" || mode == "--check" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: trajectory --write <path> | --check <path>");
            std::process::exit(1);
        }
    };
    println!("Benchmark trajectory — schema {SCHEMA} v{VERSION}");
    let scale = trajectory_scale();
    println!(
        "pinned scale: {} bp reference, {} reads/set ({} cells)",
        scale.reference_len,
        scale.reads_per_set,
        CELLS.len()
    );
    println!("measuring…");
    let fresh = measure();
    for c in &fresh {
        println!(
            "  {:<10} simulated {:.6} s | wall {:.3} s | {} word update(s) | batch p99 {:.6} s",
            c.label,
            c.simulated_seconds,
            c.wall_seconds,
            c.word_updates,
            c.latencies
                .iter()
                .find(|l| l.stage == "batch")
                .map_or(0.0, |l| l.p99_seconds),
        );
    }

    if mode == "--write" {
        let text = render_document(&fresh);
        if let Err(err) = validate_document(&text) {
            eprintln!("BUG: freshly written document fails its own schema: {err}");
            std::process::exit(1);
        }
        if let Err(err) = std::fs::write(path, &text) {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        }
        println!("wrote baseline to {path}");
        return;
    }

    // --check: schema-validate the committed baseline, then gate on
    // simulated-seconds regressions.
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    let committed = match validate_document(&committed) {
        Ok(cells) => cells,
        Err(err) => {
            eprintln!("FAIL: {path} violates the trajectory schema: {err}");
            std::process::exit(1);
        }
    };
    println!("schema OK: {} committed cell(s)", committed.len());
    let mut failures = 0u32;
    for c in &fresh {
        let Some((_, baseline)) = committed.iter().find(|(label, _)| *label == c.label) else {
            eprintln!("FAIL: committed baseline has no cell {:?}", c.label);
            failures += 1;
            continue;
        };
        let ratio = if *baseline > 0.0 {
            c.simulated_seconds / baseline
        } else {
            1.0
        };
        println!(
            "  {:<10} fresh {:.6} s vs committed {:.6} s ({:+.1}%)",
            c.label,
            c.simulated_seconds,
            baseline,
            (ratio - 1.0) * 100.0
        );
        if ratio > REGRESSION_FACTOR {
            eprintln!(
                "FAIL: cell {:?} regressed {:.1}% in simulated seconds (gate: {:.0}%)",
                c.label,
                (ratio - 1.0) * 100.0,
                (REGRESSION_FACTOR - 1.0) * 100.0
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} trajectory check(s) failed");
        std::process::exit(1);
    }
    println!("\nall trajectory checks passed");
}
