//! Table II — the heterogeneous scenario (§III-B / §IV).
//!
//! REPUTE-all and CORAL-all distribute reads across the CPU and both GPUs
//! of System 1 (task-parallel, throughput-proportional split); the other
//! mappers stay on the CPU. Accuracy is the Rabema-style *any-best*
//! comparison, under which the best-mappers recover to ≈90–100% — the
//! paper's Table II pattern.

use std::sync::Arc;

use repute_bench::harness::{
    gold_standard, grid_columns, match_tolerance, run_cell, AccuracyMethod, PAPER_GRID,
};
use repute_bench::workload::{s_min_for, s_min_options, Scale, Workload};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_eval::{Table, TableRow};
use repute_hetsim::profiles;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like,
    yara::YaraLike, Mapper,
};

fn main() {
    let scale = Scale::from_env();
    println!("Table II — mapping on CPU + 2×GPU (heterogeneous scenario, accuracy per §III-B)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let cpu_platform = profiles::system1_cpu_only();
    let all_platform = profiles::system1();

    let mut table = Table::new(
        "System 1 — T(s) simulated / A(%) any-best vs RazerS3 gold".to_string(),
        grid_columns(),
    );
    let mapper_names = [
        "RazerS3",
        "Hobbes3",
        "Yara",
        "BWA-MEM",
        "GEM",
        "CORAL-all",
        "REPUTE-all",
    ];
    let mut rows: Vec<TableRow> = mapper_names
        .iter()
        .map(|name| TableRow {
            mapper: (*name).to_string(),
            cells: Vec::new(),
        })
        .collect();
    let mut bwamem_cache: Vec<(usize, repute_eval::CellResult)> = Vec::new();

    for &(n, delta) in &PAPER_GRID {
        eprintln!("cell (n={n}, δ={delta})…");
        let reads = w.read_seqs(n);
        let gold = gold_standard(&w.indexed, delta, &reads);
        let cpu_shares = cpu_platform.single_device_share(0, reads.len());
        let all_shares = all_platform.even_shares(reads.len());
        let s_min = s_min_for(n, delta);

        let mappers: Vec<(Box<dyn Mapper>, bool)> = vec![
            (
                Box::new(Razers3Like::new(Arc::clone(&w.indexed), delta)),
                false,
            ),
            (
                Box::new(Hobbes3Like::new(Arc::clone(&w.indexed), delta)),
                false,
            ),
            (
                Box::new(YaraLike::new(Arc::clone(&w.indexed), delta)),
                false,
            ),
            (Box::new(BwaMemLike::new(Arc::clone(&w.indexed))), false),
            (Box::new(GemLike::new(Arc::clone(&w.indexed), delta)), false),
            (
                Box::new(CoralLike::new(Arc::clone(&w.indexed), delta).with_s_min(s_min)),
                true,
            ),
            (
                Box::new(ReputeMapper::new(
                    Arc::clone(&w.indexed),
                    ReputeConfig::new(delta, s_min).expect("valid paper parameters"),
                )),
                true,
            ),
        ];
        for (row, (mapper, heterogeneous)) in rows.iter_mut().zip(&mappers) {
            let is_bwamem = mapper.name() == "BWA-MEM";
            if is_bwamem {
                if let Some((_, cached)) = bwamem_cache.iter().find(|(len, _)| *len == n) {
                    row.cells.push(Some(*cached));
                    continue;
                }
            }
            let (platform, shares) = if *heterogeneous {
                (&all_platform, all_shares.as_slice())
            } else {
                (&cpu_platform, cpu_shares.as_slice())
            };
            // REPUTE-all reports the best S_min per cell — the paper's
            // stated methodology (§IV): a larger S_min shrinks the kernel
            // footprint and restores GPU occupancy.
            let outcome = if mapper.name() == "REPUTE" {
                s_min_options(n, delta)
                    .into_iter()
                    .map(|s_min| {
                        let tuned = ReputeMapper::new(
                            Arc::clone(&w.indexed),
                            ReputeConfig::new(delta, s_min).expect("valid"),
                        );
                        run_cell(
                            &tuned,
                            &reads,
                            platform,
                            shares,
                            &gold,
                            AccuracyMethod::AnyBest,
                            match_tolerance(delta),
                        )
                    })
                    .min_by(|a, b| a.result.time_s.total_cmp(&b.result.time_s))
                    .expect("at least one s_min option")
            } else {
                run_cell(
                    mapper.as_ref(),
                    &reads,
                    platform,
                    shares,
                    &gold,
                    AccuracyMethod::AnyBest,
                    match_tolerance(delta),
                )
            };
            outcome.export_if_requested(&format!("table2 {} n={n} δ={delta}", row.mapper));
            if is_bwamem {
                bwamem_cache.push((n, outcome.result));
            }
            row.cells.push(Some(outcome.result));
        }
    }
    for row in rows {
        table.push_row(row);
    }
    println!("{table}");
    let show = |base: &str, target: &str| {
        let text: Vec<String> = table
            .speedups(base, target)
            .iter()
            .map(|r| r.map_or("-".into(), |v| format!("{v:.2}x")))
            .collect();
        println!("speedup {target} vs {base}: {}", text.join(", "));
    };
    show("CORAL-all", "REPUTE-all");
    show("Hobbes3", "REPUTE-all");
    show("Yara", "REPUTE-all");
    println!(
        "\npaper shape check: REPUTE-all ≈2× faster than a CPU-only REPUTE run (Table I),\n\
         best-mappers recover to ≈90–100% accuracy under any-best."
    );
}
