//! Diagnostic: per-read work decomposition for the main mappers.
//!
//! Not a paper experiment — a tuning aid that prints where each mapper's
//! simulated work goes (filtration vs locate+verify), averaged over the
//! workload, plus the candidate volumes that drive verification.

use std::sync::Arc;

use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_mappers::{coral::CoralLike, razers3::Razers3Like, Mapper};

fn main() {
    let scale = Scale::from_env();
    println!("{}", scale.describe());
    let w = Workload::generate(scale);
    for (n, delta) in [(100usize, 3u32), (100, 5), (150, 7)] {
        let s_min = s_min_for(n, delta);
        let reads = w.read_seqs(n);
        let repute = ReputeMapper::new(
            Arc::clone(&w.indexed),
            ReputeConfig::new(delta, s_min).expect("valid"),
        );
        let coral = CoralLike::new(Arc::clone(&w.indexed), delta).with_s_min(s_min);
        let razers = Razers3Like::new(Arc::clone(&w.indexed), delta);
        println!(
            "\n(n={n}, δ={delta}, s_min={s_min}) over {} reads:",
            reads.len()
        );
        for (name, outs) in [
            (
                "REPUTE",
                reads.iter().map(|r| repute.map_read(r)).collect::<Vec<_>>(),
            ),
            ("CORAL", reads.iter().map(|r| coral.map_read(r)).collect()),
            (
                "RazerS3",
                reads.iter().map(|r| razers.map_read(r)).collect(),
            ),
        ] {
            let total_work: u64 = outs.iter().map(|o| o.work).sum();
            let total_cand: u64 = outs.iter().map(|o| o.candidates).sum();
            let total_maps: usize = outs.iter().map(|o| o.mappings.len()).sum();
            let max_work = outs.iter().map(|o| o.work).max().unwrap_or(0);
            println!(
                "  {name:<8} work/read {:>9.0}  candidates/read {:>8.1}  mappings/read {:>7.1}  max work {:>10}",
                total_work as f64 / reads.len() as f64,
                total_cand as f64 / reads.len() as f64,
                total_maps as f64 / reads.len() as f64,
                max_work
            );
        }
    }
}
