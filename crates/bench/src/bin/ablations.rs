//! Ablations of REPUTE's design choices (DESIGN.md §5).
//!
//! 1. **Restricted exploration space** (the paper's memory optimisation
//!    over the original OSS): DP cells, peak DP memory and selection time,
//!    restricted vs full, across the paper's (n, δ) grid.
//! 2. **Seed-selection strategy**: total candidate locations per read for
//!    the DP optimum vs the serial greedy heuristic (CORAL) vs the uniform
//!    partition (RazerS3) — the quantity that drives verification time.
//! 3. **Index sampling** (§IV future work, after Bowtie 2): FM-Index
//!    footprint vs suffix-array sampling rate, with the locate cost that
//!    pays for it.

use repute_bench::harness::PAPER_GRID;
use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_filter::freq::FreqTable;
use repute_filter::greedy::GreedySelector;
use repute_filter::oss::{Exploration, OssParams, OssSolver};
use repute_filter::pigeonhole::UniformSelector;
use repute_filter::sparse::SparseSolver;
use repute_index::FmIndex;

fn main() {
    let scale = Scale::from_env();
    println!("Ablations — REPUTE design choices");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let sample: Vec<_> = w
        .reads(100)
        .iter()
        .filter(|r| r.origin.is_some())
        .take(200)
        .collect();
    let sample150: Vec<_> = w
        .reads(150)
        .iter()
        .filter(|r| r.origin.is_some())
        .take(200)
        .collect();

    // 1. Exploration-space restriction.
    println!("\n[1] restricted vs full exploration space (mean per read, 200 reads)");
    println!(
        "{:>12} | {:>22} | {:>22} | {:>15} | {:>6}",
        "(n, δ)", "DP cells (restr/full)", "peak bytes (restr/full)", "extends (r/f)", "≤cost?"
    );
    println!("{}", "-".repeat(92));
    for &(n, delta) in &PAPER_GRID {
        let s_min = s_min_for(n, delta);
        let params = OssParams::new(delta, s_min).expect("valid");
        let full = params.exploration(Exploration::Full);
        let reads = if n == 100 { &sample } else { &sample150 };
        let (mut rc, mut fc, mut rb, mut fb) = (0u64, 0u64, 0usize, 0usize);
        let mut identical = true;
        let (mut re, mut fe) = (0u64, 0u64);
        for read in reads {
            let codes = read.seq.to_codes();
            let rt = FreqTable::build(w.indexed.fm(), &codes, &params);
            let ft = FreqTable::build(w.indexed.fm(), &codes, &full);
            re += rt.extend_ops();
            fe += ft.extend_ops();
            let r = OssSolver::new(params).select(&codes, &rt);
            let f = OssSolver::new(full).select(&codes, &ft);
            rc += r.stats.dp_cells;
            fc += f.stats.dp_cells;
            rb = rb.max(r.stats.peak_bytes);
            fb = fb.max(f.stats.peak_bytes);
            identical &= r.selection.total_candidates() <= f.selection.total_candidates() + 16;
        }
        let reads_n = reads.len() as u64;
        println!(
            "{:>12} | {:>10} / {:>9} | {:>10} / {:>9} | {:>7}/{:>7} | {:>6}",
            format!("({n}, {delta})"),
            rc / reads_n,
            fc / reads_n,
            rb,
            fb,
            re / reads_n,
            fe / reads_n,
            if identical { "yes" } else { "NO" }
        );
    }

    // 1b. OSS divider-scan optimisations (early termination + early
    // leave), which the paper retains from the Optimal Seed Solver.
    println!("\n[1b] OSS early divider termination (mean DP cells per read, 200 reads)");
    println!(
        "{:>12} | {:>12} | {:>12} | {:>8}",
        "(n, δ)", "with", "without", "saving"
    );
    println!("{}", "-".repeat(54));
    for &(n, delta) in &PAPER_GRID {
        let s_min = s_min_for(n, delta);
        let on = OssParams::new(delta, s_min).expect("valid");
        let off = on.early_termination(false);
        let reads = if n == 100 { &sample } else { &sample150 };
        let (mut with, mut without) = (0u64, 0u64);
        for read in reads {
            let codes = read.seq.to_codes();
            let table = FreqTable::build(w.indexed.fm(), &codes, &on);
            with += OssSolver::new(on).select(&codes, &table).stats.dp_cells;
            without += OssSolver::new(off).select(&codes, &table).stats.dp_cells;
        }
        let reads_n = reads.len() as u64;
        println!(
            "{:>12} | {:>12} | {:>12} | {:>7.1}x",
            format!("({n}, {delta})"),
            with / reads_n,
            without / reads_n,
            without as f64 / with.max(1) as f64
        );
    }

    // 2. Seed-selection strategies. "sparse" is the original OSS
    // semantics (non-overlapping seeds with gaps allowed); the paper's
    // covering partition is the "DP (REPUTE)" column.
    println!("\n[2] total candidate locations per read (mean, 200 reads, n=100)");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>12} | {:>12}",
        "δ", "sparse OSS", "DP (REPUTE)", "greedy", "uniform"
    );
    println!("{}", "-".repeat(68));
    for delta in [3u32, 4, 5, 6, 7] {
        let s_min = s_min_for(100, delta);
        let params = OssParams::new(delta, s_min).expect("valid");
        let full = params.exploration(Exploration::Full);
        let greedy = GreedySelector::new(delta, s_min);
        let uniform = UniformSelector::new(delta);
        let (mut sp_total, mut dp_total, mut gr_total, mut un_total) = (0u64, 0u64, 0u64, 0u64);
        for read in &sample {
            let codes = read.seq.to_codes();
            let table = FreqTable::build(w.indexed.fm(), &codes, &params);
            let full_table = FreqTable::build(w.indexed.fm(), &codes, &full);
            sp_total += SparseSolver::new(full)
                .select(&codes, &full_table)
                .selection
                .total_candidates();
            dp_total += OssSolver::new(params)
                .select(&codes, &table)
                .selection
                .total_candidates();
            gr_total += greedy.select(&codes, w.indexed.fm()).0.total_candidates();
            un_total += uniform.select(&codes, w.indexed.fm()).0.total_candidates();
        }
        let n = sample.len() as u64;
        println!(
            "{:>6} | {:>12.1} | {:>12.1} | {:>12.1} | {:>12.1}",
            delta,
            sp_total as f64 / n as f64,
            dp_total as f64 / n as f64,
            gr_total as f64 / n as f64,
            un_total as f64 / n as f64
        );
    }

    // 3. Index sampling.
    println!("\n[3] FM-Index footprint vs SA sampling (§IV footprint reduction)");
    println!(
        "{:>10} | {:>14} | {:>14} | {:>14}",
        "sa_sample", "index bytes", "sa bytes", "locate steps*"
    );
    println!("{}", "-".repeat(60));
    for sa_sample in [4usize, 16, 32, 64, 128] {
        let fm = FmIndex::builder()
            .sa_sample(sa_sample)
            .build(w.indexed.seq());
        let fp = fm.footprint();
        // Expected LF walk length is sa_sample / 2.
        println!(
            "{:>10} | {:>14} | {:>14} | {:>14}",
            sa_sample,
            fp.total(),
            fp.sa_bytes,
            sa_sample / 2
        );
    }
    println!("*expected LF-mapping steps per located position");

    // 4. DVFS on the embedded SoC: race-to-idle vs slow-and-steady.
    // Active energy falls quadratically with frequency, but idle power
    // burns for the whole (longer) run — the classic embedded trade the
    // HiKey970's "up to 2.36 GHz" clocks exist to navigate.
    println!("\n[4] HiKey970 DVFS sweep, (n=100, δ=3), whole-system energy");
    println!(
        "{:>10} | {:>10} | {:>12} | {:>12} | {:>12}",
        "frequency", "T(s) sim", "active E(J)", "idle E(J)", "total E(J)"
    );
    println!("{}", "-".repeat(66));
    {
        use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
        use repute_hetsim::{profiles, Platform};
        use std::sync::Arc;
        let reads = w.read_seqs(100);
        let mapper = ReputeMapper::new(
            Arc::clone(&w.indexed),
            ReputeConfig::new(3, s_min_for(100, 3)).expect("valid"),
        );
        for percent in [40u32, 60, 80, 100] {
            let f = f64::from(percent) / 100.0;
            let platform = Platform::new(
                format!("HiKey970 @{percent}%"),
                3.5,
                vec![
                    profiles::cortex_a73_cluster().scaled(f),
                    profiles::cortex_a53_cluster().scaled(f),
                ],
            );
            let run = map_on_platform(
                &mapper,
                &platform,
                &platform.even_shares(reads.len()),
                &reads,
            )
            .expect("valid shares");
            let idle_energy = 3.5 * run.simulated_seconds;
            println!(
                "{:>9}% | {:>10.3} | {:>12.3} | {:>12.3} | {:>12.3}",
                percent,
                run.simulated_seconds,
                run.energy.energy_j,
                idle_energy,
                run.energy.energy_j + idle_energy
            );
        }
        println!(
            "active energy falls with f² but idle energy grows with 1/f —\n\
             whole-system energy picks the knee, not the lowest clock."
        );
    }
}
