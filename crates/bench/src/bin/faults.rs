//! Fault-injection ablation: output invariance and graceful degradation
//! under the deterministic fault model of `repute-hetsim`.
//!
//! Four checks, all enforced (nonzero exit on failure, so CI can run
//! this at tiny scale):
//!
//! 1. **Output invariance** — random fault plans with a guaranteed
//!    survivor (device 0 is never lost), transient storms, degradation,
//!    and combined plans all report exactly the mappings of the
//!    fault-free run, in exact read order, across both schedules.
//! 2. **Graceful degradation** — killing k = 0..3 of the 4 devices at
//!    t = 0 leaves the output unchanged while the simulated makespan
//!    grows monotonically (fewer survivors ⇒ no faster): the
//!    degradation curve printed per schedule.
//! 3. **Retry accounting** — a transient storm with a sufficient retry
//!    budget is fully absorbed: every strike is retried, nothing
//!    migrates, and the counters say so.
//! 4. **Total loss is typed** — killing every device yields the
//!    `AllDevicesLost` error naming the full unmapped read range, not a
//!    panic or silent truncation.

use std::sync::Arc;

use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{map_scheduled, map_scheduled_with_faults, ReputeConfig, ReputeMapper, Schedule};
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, FaultPlan, Platform};

const DEVICES: usize = 4;
const MAX_RETRIES: usize = 2;

fn quad_platform() -> Platform {
    Platform::new(
        "quad-cpu",
        1.0,
        (0..DEVICES).map(|_| profiles::intel_i7_2600()).collect(),
    )
}

fn mappings_of(run: &repute_core::MappingRun) -> Vec<Vec<repute_mappers::Mapping>> {
    run.outputs.iter().map(|o| o.mappings.clone()).collect()
}

fn schedules(platform: &Platform, items: usize) -> Vec<(String, Schedule)> {
    vec![
        (
            "static".into(),
            Schedule::Static(platform.even_shares(items)),
        ),
        ("dynamic".into(), Schedule::Dynamic { batch: 0 }),
    ]
}

fn main() {
    let scale = Scale::from_env();
    println!("Fault ablation — output invariance and graceful degradation");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let (n, delta) = (100usize, 5u32);
    let reads: Vec<DnaSeq> = w.read_seqs(n);
    let config = ReputeConfig::new(delta, s_min_for(n, delta)).expect("valid config");
    let mapper = ReputeMapper::new(Arc::clone(&w.indexed), config);
    let platform = quad_platform();
    let mut failures = 0u32;

    // [1] Output invariance across fault plans, schedules, and threads.
    println!(
        "\n[1] output invariance (n={n}, δ={delta}, {} reads, {DEVICES} devices)",
        reads.len()
    );
    println!(
        "{:>28} | {:>8} | {:>10} | {:>7} | {:>8}",
        "plan × schedule", "faults", "sim T(s)", "retries", "output"
    );
    println!("{}", "-".repeat(74));
    for (sched_name, schedule) in schedules(&platform, reads.len()) {
        let (clean, clean_metrics) = map_scheduled(&mapper, &platform, &schedule, 1, &reads)
            .expect("fault-free baseline failed");
        let gold = mappings_of(&clean);
        let horizon = clean.simulated_seconds.max(1e-6);
        let mut plans: Vec<(String, FaultPlan)> = vec![
            (
                "transient storm".into(),
                FaultPlan::parse("transient:d0@0x2,transient:d1@0,transient:d2@0x2,transient:d3@0")
                    .unwrap(),
            ),
            (
                "degrade d1+d3".into(),
                FaultPlan::new().degrade(1, 0.0, 0.5).degrade(3, 0.0, 0.25),
            ),
            (
                "loss d2 mid-run".into(),
                FaultPlan::new().loss(2, horizon / 2.0),
            ),
            (
                "combined".into(),
                FaultPlan::parse(&format!(
                    "transient:d0@0,slow:d1@0x0.5,loss:d3@{}",
                    horizon / 4.0
                ))
                .unwrap(),
            ),
        ];
        for seed in 0..6u64 {
            plans.push((
                format!("random seed {seed}"),
                FaultPlan::random(seed, DEVICES, horizon),
            ));
        }
        for (plan_name, plan) in &plans {
            for host_threads in [1usize, 4] {
                let (run, metrics) = match map_scheduled_with_faults(
                    &mapper,
                    &platform,
                    &schedule,
                    host_threads,
                    plan,
                    MAX_RETRIES,
                    &reads,
                ) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("FAIL: {plan_name} × {sched_name} ht={host_threads}: {e}");
                        failures += 1;
                        continue;
                    }
                };
                let same = mappings_of(&run) == gold && metrics == clean_metrics;
                if host_threads == 1 {
                    let faults: u64 = run.fault_counters.iter().map(|c| c.faults).sum();
                    let retries: u64 = run.fault_counters.iter().map(|c| c.retries).sum();
                    println!(
                        "{:>28} | {:>8} | {:>10.4} | {:>7} | {:>8}",
                        format!("{plan_name} × {sched_name}"),
                        faults,
                        run.simulated_seconds,
                        retries,
                        if same { "same" } else { "DIFFERS" }
                    );
                }
                if !same {
                    eprintln!(
                        "FAIL: {plan_name} × {sched_name} ht={host_threads} changed the output"
                    );
                    failures += 1;
                }
            }
        }
    }

    // [2] Graceful degradation: kill k of 4 devices at t = 0 and watch
    // the makespan grow while the output stays put.
    println!("\n[2] graceful degradation (kill k devices at t=0)");
    for (sched_name, schedule) in schedules(&platform, reads.len()) {
        let (clean, _) = map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        let gold = mappings_of(&clean);
        let mut prev = 0.0f64;
        println!("  {sched_name}:");
        for k in 0..DEVICES {
            // Kill the top-k device indices; device 0 always survives.
            let mut plan = FaultPlan::new();
            for dev in (DEVICES - k)..DEVICES {
                plan = plan.loss(dev, 0.0);
            }
            let (run, _) = map_scheduled_with_faults(
                &mapper,
                &platform,
                &schedule,
                1,
                &plan,
                MAX_RETRIES,
                &reads,
            )
            .expect("a survivor remains");
            let migrated: u64 = run.fault_counters.iter().map(|c| c.migrated_batches).sum();
            let same = mappings_of(&run) == gold;
            println!(
                "    {} dead | {} survivors | sim {:.4} s | {} migrated batch(es) | {}",
                k,
                DEVICES - k,
                run.simulated_seconds,
                migrated,
                if same {
                    "same output"
                } else {
                    "OUTPUT DIFFERS"
                }
            );
            if !same {
                eprintln!("FAIL: {sched_name} with {k} dead devices changed the output");
                failures += 1;
            }
            if run.simulated_seconds + 1e-12 < prev {
                eprintln!("FAIL: {sched_name}: makespan shrank when killing more devices");
                failures += 1;
            }
            prev = run.simulated_seconds;
        }
    }

    // [3] Retry accounting: a storm inside the budget is absorbed
    // without migration.
    println!("\n[3] retry accounting (storm within max_retries={MAX_RETRIES})");
    let schedule = Schedule::Static(platform.even_shares(reads.len()));
    let storm = FaultPlan::parse("transient:d0@0,transient:d1@0x2,transient:d2@0").unwrap();
    let (run, _) = map_scheduled_with_faults(
        &mapper,
        &platform,
        &schedule,
        1,
        &storm,
        MAX_RETRIES,
        &reads,
    )
    .expect("storm within budget");
    let faults: u64 = run.fault_counters.iter().map(|c| c.faults).sum();
    let retries: u64 = run.fault_counters.iter().map(|c| c.retries).sum();
    let migrated: u64 = run.fault_counters.iter().map(|c| c.migrated_batches).sum();
    println!("  {faults} strike(s) | {retries} retried | {migrated} migrated");
    if faults != 4 || retries != 4 || migrated != 0 {
        eprintln!("FAIL: expected 4 strikes / 4 retries / 0 migrations");
        failures += 1;
    }

    // [4] All devices dead: a typed error naming the unmapped range.
    println!("\n[4] total loss is a typed partial failure");
    let mut all_dead = FaultPlan::new();
    for dev in 0..DEVICES {
        all_dead = all_dead.loss(dev, 0.0);
    }
    match map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &all_dead, 0, &reads) {
        Err(e) => match e.unmapped_range() {
            Some(range) if range == (0..reads.len()) => {
                println!("  {e}");
            }
            Some(range) => {
                eprintln!("FAIL: wrong unmapped range {range:?}");
                failures += 1;
            }
            None => {
                eprintln!("FAIL: untyped error {e}");
                failures += 1;
            }
        },
        Ok(_) => {
            eprintln!("FAIL: mapping succeeded with every device dead");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nall fault ablation checks passed");
}
