//! Crash/resume ablation: the checkpoint journal makes an interrupted
//! run indistinguishable from an uninterrupted one.
//!
//! Three enforced sections (nonzero exit on any failure, so CI can run
//! this at tiny scale):
//!
//! 1. **Seeded crash points, in-process** — for both schedules, ≥5
//!    seeded simulated host crashes at random fractions of the makespan
//!    each leave a partial journal; resuming produces outputs, metrics,
//!    and a [`repute_obs::RunReport`] bit-identical to the uninterrupted
//!    run (wall clock and the replay-provenance counter excluded — they
//!    are the only fields allowed to differ).
//! 2. **SIGKILL, out-of-process** — a child `repute map --checkpoint`
//!    process is killed at seeded random delays, resumed with
//!    `--resume`, and must converge to a SAM byte-identical to the
//!    never-killed reference run (deterministic telemetry records too).
//! 3. **Typed failure classes** — the CLI exits with the documented
//!    distinct codes: 8 for a simulated crash, 6 for a mismatched
//!    resume, 5 for a corrupted journal, 2 for invalid combinations —
//!    never a panic.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{
    map_resumable, map_scheduled, ReputeConfig, ReputeError, ReputeMapper, RunFingerprint, Schedule,
};
use repute_genome::fasta::{write_fasta, FastaRecord};
use repute_genome::fastq::write_fastq;
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, FaultPlan, Platform};

const DEVICES: usize = 4;
const CRASH_POINTS: usize = 5;
const KILL_TRIALS: usize = 3;
const MAX_ATTEMPTS: usize = 60;

fn quad_platform() -> Platform {
    Platform::new(
        "quad-cpu",
        1.0,
        (0..DEVICES).map(|_| profiles::intel_i7_2600()).collect(),
    )
}

/// Deterministic xorshift64* stream for crash fractions and kill delays.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn work_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("repute-bench-resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

fn clear_journal(path: &Path) {
    std::fs::remove_file(path).ok();
    let mut manifest = path.as_os_str().to_owned();
    manifest.push(".manifest");
    std::fs::remove_file(PathBuf::from(manifest)).ok();
}

/// Normalizes a run report for bit-identity comparison: the host wall
/// clock and the replay-provenance counter are the only fields a resumed
/// run may legitimately differ in.
fn normalized_report(
    run: &repute_core::MappingRun,
    platform: &Platform,
    metrics: &[repute_obs::MapMetrics],
) -> repute_obs::RunReport {
    let mut report = run.report(platform, metrics);
    report.wall_seconds = 0.0;
    report.resumed_batches = 0;
    report
}

/// The deterministic subset of a telemetry JSON-lines file: per-read,
/// device, event, and energy records. Host stage clocks and the run
/// record's wall/provenance fields legitimately differ across runs.
fn deterministic_telemetry(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| {
            ["read", "device", "event", "energy"]
                .iter()
                .any(|k| l.contains(&format!("\"type\":\"{k}\"")))
        })
        .map(String::from)
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = std::env::var("REPUTE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_C0DEu64);
    println!("Crash/resume ablation — journaled runs are bit-identical");
    println!("{}", scale.describe());
    println!("seed {seed}");
    let dir = work_dir();
    let mut failures = 0u32;

    // ------------------------------------------------------------------
    // [1] Seeded simulated crash points, in-process, both schedules.
    // ------------------------------------------------------------------
    println!("\n[1] seeded crash points ({CRASH_POINTS} per schedule, in-process)");
    let w = Workload::generate(scale);
    let (n, delta) = (100usize, 5u32);
    let reads: Vec<DnaSeq> = w.read_seqs(n);
    let config = ReputeConfig::new(delta, s_min_for(n, delta)).expect("valid config");
    let mapper = ReputeMapper::new(Arc::clone(&w.indexed), config);
    let platform = quad_platform();
    let fingerprint = RunFingerprint::new(0xBE7C_0001, 0xD0_C0DE);
    let mut rng = Rng::new(seed);
    let schedules: Vec<(String, Schedule)> = vec![
        (
            "static".into(),
            Schedule::Static(platform.even_shares(reads.len())),
        ),
        ("dynamic".into(), Schedule::Dynamic { batch: 0 }),
    ];
    for (sched_name, schedule) in &schedules {
        let gold_path = dir.join(format!("gold-{sched_name}.rpj"));
        clear_journal(&gold_path);
        let gold = map_resumable(
            &mapper,
            &platform,
            schedule,
            0,
            &FaultPlan::new(),
            &gold_path,
            fingerprint,
            1,
            &reads,
        )
        .expect("uninterrupted journaled run");
        let (plain, plain_metrics) =
            map_scheduled(&mapper, &platform, schedule, 0, &reads).expect("plain run");
        if gold.run.outputs != plain.outputs || gold.metrics != plain_metrics {
            eprintln!("FAIL: {sched_name}: journaled run differs from map_scheduled");
            failures += 1;
        }
        let gold_report = normalized_report(&gold.run, &platform, &gold.metrics);
        let makespan = gold.run.simulated_seconds;
        println!(
            "  {sched_name}: {} batches | makespan {:.6} s",
            gold.total_batches, makespan
        );
        for trial in 0..CRASH_POINTS {
            let frac = 0.05 + 0.90 * rng.next_f64();
            let crash_t = frac * makespan;
            let path = dir.join(format!("crash-{sched_name}-{trial}.rpj"));
            clear_journal(&path);
            let crashed = map_resumable(
                &mapper,
                &platform,
                schedule,
                0,
                &FaultPlan::new().host_crash(crash_t),
                &path,
                fingerprint,
                1,
                &reads,
            );
            let committed = match crashed {
                Err(ReputeError::Interrupted { committed, .. }) => committed,
                Err(e) => {
                    eprintln!("FAIL: {sched_name} trial {trial}: unexpected error {e}");
                    failures += 1;
                    continue;
                }
                Ok(_) => {
                    eprintln!(
                        "FAIL: {sched_name} trial {trial}: crash at {crash_t:.6} s \
                         did not interrupt"
                    );
                    failures += 1;
                    continue;
                }
            };
            let resumed = match map_resumable(
                &mapper,
                &platform,
                schedule,
                0,
                &FaultPlan::new(),
                &path,
                fingerprint,
                1,
                &reads,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("FAIL: {sched_name} trial {trial}: resume failed: {e}");
                    failures += 1;
                    continue;
                }
            };
            let identical = resumed.run.outputs == gold.run.outputs
                && resumed.metrics == gold.metrics
                && resumed.run.simulated_seconds == gold.run.simulated_seconds
                && normalized_report(&resumed.run, &platform, &resumed.metrics) == gold_report;
            println!(
                "    crash @ {:>5.1}% ({crash_t:.6} s): {committed}/{} committed, \
                 {} replayed | {}",
                frac * 100.0,
                resumed.total_batches,
                resumed.resumed_batches,
                if identical {
                    "bit-identical"
                } else {
                    "DIFFERS"
                }
            );
            if !identical {
                eprintln!("FAIL: {sched_name} trial {trial}: resumed run differs");
                failures += 1;
            }
            if resumed.resumed_batches != committed {
                eprintln!(
                    "FAIL: {sched_name} trial {trial}: replayed {} != committed {committed}",
                    resumed.resumed_batches
                );
                failures += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // [2] SIGKILL a child `repute map --checkpoint` at seeded delays.
    // ------------------------------------------------------------------
    println!("\n[2] child-process SIGKILL trials ({KILL_TRIALS} seeded)");
    let repute = match repute_binary() {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
    };
    let ref_len = scale.reference_len.min(150_000);
    let read_count = scale.reads_per_set.min(300);
    let reference = ReferenceBuilder::new(ref_len).seed(seed ^ 0xFA57).build();
    let records = ReadSimulator::new(100, read_count)
        .seed(seed ^ 0x5EED)
        .simulate_fastq(&reference);
    let ref_fa = dir.join("reference.fa");
    let reads_fq = dir.join("reads.fq");
    {
        let mut buf = Vec::new();
        write_fasta(&mut buf, &[FastaRecord::new("chrSim", reference)], 70).expect("fasta");
        std::fs::write(&ref_fa, buf).expect("write reference");
        let mut buf = Vec::new();
        let reads_only: Vec<_> = records.iter().map(|(r, _)| r.clone()).collect();
        write_fastq(&mut buf, &reads_only).expect("fastq");
        std::fs::write(&reads_fq, buf).expect("write reads");
    }
    let base_args = |sam: &Path, metrics: &Path| -> Vec<String> {
        vec![
            "map".into(),
            "--reference".into(),
            ref_fa.display().to_string(),
            "--reads".into(),
            reads_fq.display().to_string(),
            "--delta".into(),
            "5".into(),
            "--platform".into(),
            "system1".into(),
            "--schedule".into(),
            "dynamic".into(),
            "--output".into(),
            sam.display().to_string(),
            "--metrics-out".into(),
            metrics.display().to_string(),
        ]
    };

    // Never-killed reference run (no checkpoint).
    let ref_sam = dir.join("ref.sam");
    let ref_jsonl = dir.join("ref.jsonl");
    let status = Command::new(&repute)
        .args(base_args(&ref_sam, &ref_jsonl))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn reference run");
    if !status.success() {
        eprintln!("FAIL: reference CLI run exited with {status}");
        std::process::exit(1);
    }
    let gold_sam = std::fs::read(&ref_sam).expect("read reference SAM");
    let gold_telemetry =
        deterministic_telemetry(&std::fs::read_to_string(&ref_jsonl).expect("read telemetry"));

    for trial in 0..KILL_TRIALS {
        let journal = dir.join(format!("kill-{trial}.rpj"));
        let sam = dir.join(format!("kill-{trial}.sam"));
        let jsonl = dir.join(format!("kill-{trial}.jsonl"));
        clear_journal(&journal);
        let mut kills = 0usize;
        let mut finished = false;
        for attempt in 0..MAX_ATTEMPTS {
            let mut args = base_args(&sam, &jsonl);
            args.push("--checkpoint".into());
            args.push(journal.display().to_string());
            if journal.exists() {
                args.push("--resume".into());
            }
            let mut child = Command::new(&repute)
                .args(&args)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn checkpointed run");
            // Seeded, slowly growing delay: early attempts die young,
            // later ones get long enough to finish.
            let delay_ms = 1 + (rng.next_u64() % 40) * (1 + attempt as u64) / 4;
            std::thread::sleep(Duration::from_millis(delay_ms));
            match child.try_wait().expect("poll child") {
                Some(status) if status.success() => {
                    finished = true;
                    println!(
                        "  trial {trial}: finished on attempt {} after {kills} kill(s)",
                        attempt + 1
                    );
                    break;
                }
                Some(status) => {
                    eprintln!("FAIL: trial {trial}: child exited with {status}");
                    failures += 1;
                    finished = true;
                    break;
                }
                None => {
                    child.kill().expect("SIGKILL child");
                    child.wait().expect("reap child");
                    kills += 1;
                }
            }
        }
        if !finished {
            eprintln!("FAIL: trial {trial}: did not finish within {MAX_ATTEMPTS} attempts");
            failures += 1;
            continue;
        }
        let killed_sam = std::fs::read(&sam).expect("read resumed SAM");
        if killed_sam != gold_sam {
            eprintln!("FAIL: trial {trial}: resumed SAM differs from the reference run");
            failures += 1;
        }
        let killed_telemetry =
            deterministic_telemetry(&std::fs::read_to_string(&jsonl).expect("read telemetry"));
        if killed_telemetry != gold_telemetry {
            eprintln!("FAIL: trial {trial}: deterministic telemetry records differ");
            failures += 1;
        }
    }

    // ------------------------------------------------------------------
    // [3] Typed failure classes surface as distinct exit codes.
    // ------------------------------------------------------------------
    println!("\n[3] typed failure exit codes");
    let journal = dir.join("codes.rpj");
    let sam = dir.join("codes.sam");
    let jsonl = dir.join("codes.jsonl");
    clear_journal(&journal);
    let run_cli = |extra: &[&str]| -> std::process::Output {
        let mut args = base_args(&sam, &jsonl);
        args.extend(extra.iter().map(|s| s.to_string()));
        Command::new(&repute).args(&args).output().expect("run cli")
    };
    let expect_code =
        |what: &str, out: &std::process::Output, code: i32, failures: &mut u32| match out
            .status
            .code()
        {
            Some(c) if c == code => println!("  {what}: exit {c} (expected)"),
            other => {
                eprintln!(
                    "FAIL: {what}: expected exit {code}, got {other:?}\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                *failures += 1;
            }
        };

    // Exit 2: a crash event without a journal to crash into.
    let out = run_cli(&["--fault-plan", "crash:@0.001"]);
    expect_code("crash plan without --checkpoint", &out, 2, &mut failures);

    // Exit 8: a simulated host crash interrupts the checkpointed run.
    let journal_s = journal.display().to_string();
    let out = run_cli(&[
        "--checkpoint",
        &journal_s,
        "--fault-plan",
        "crash:@0.0000001",
    ]);
    expect_code("simulated host crash", &out, 8, &mut failures);

    // Exit 0: the resume completes and matches the reference SAM.
    let out = run_cli(&["--checkpoint", &journal_s, "--resume"]);
    expect_code("resume to completion", &out, 0, &mut failures);
    match std::fs::read(&sam) {
        Ok(bytes) if bytes == gold_sam => println!("  resumed SAM matches the reference run"),
        Ok(_) => {
            eprintln!("FAIL: resumed SAM differs from the reference run");
            failures += 1;
        }
        Err(e) => {
            eprintln!("FAIL: resumed SAM missing: {e}");
            failures += 1;
        }
    }

    // Exit 6: resuming under a different configuration is refused.
    let out = run_cli(&["--checkpoint", &journal_s, "--resume", "--s-min", "14"]);
    expect_code("mismatched resume", &out, 6, &mut failures);

    // Exit 5: a corrupted journal is refused (flip one byte inside the
    // first committed record, below the manifest watermark).
    let mut bytes = std::fs::read(&journal).expect("read journal");
    if bytes.len() > 46 {
        bytes[46] ^= 0x40;
        std::fs::write(&journal, bytes).expect("write corrupted journal");
        let out = run_cli(&["--checkpoint", &journal_s, "--resume"]);
        expect_code("corrupted journal", &out, 5, &mut failures);
    } else {
        eprintln!("FAIL: journal too short to corrupt ({} bytes)", bytes.len());
        failures += 1;
    }

    if failures > 0 {
        eprintln!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nall crash/resume checks passed");
}

/// Locates the `repute` CLI binary next to this bench binary, building
/// it (same profile, offline) if it is not there yet.
fn repute_binary() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let bin_dir = exe
        .parent()
        .ok_or_else(|| "bench binary has no parent directory".to_string())?;
    let candidate = bin_dir.join(if cfg!(windows) {
        "repute.exe"
    } else {
        "repute"
    });
    if candidate.exists() {
        return Ok(candidate);
    }
    let mut build = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()));
    build.args(["build", "-p", "repute-cli", "--offline"]);
    if !cfg!(debug_assertions) {
        build.arg("--release");
    }
    let status = build
        .status()
        .map_err(|e| format!("cannot run cargo to build repute-cli: {e}"))?;
    if !status.success() {
        return Err("building repute-cli failed".into());
    }
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "repute binary not found at {} even after building repute-cli",
            candidate.display()
        ))
    }
}
