//! Table III — the embedded scenario (§III-C / §IV).
//!
//! Only RazerS3, Hobbes3, CORAL and REPUTE could be built on the HiKey970
//! (§III-C); the same four run here on the simulated big.LITTLE platform.
//! CORAL-HiKey and REPUTE-HiKey distribute reads across the A73 and A53
//! clusters; RazerS3 and Hobbes3 are CPU programs and run on the big
//! cluster alone. Accuracy follows §III-B (any-best).

use std::sync::Arc;

use repute_bench::harness::{
    gold_standard, grid_columns, match_tolerance, run_cell, AccuracyMethod, PAPER_GRID,
};
use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_eval::{Table, TableRow};
use repute_hetsim::profiles;
use repute_mappers::{coral::CoralLike, hobbes3::Hobbes3Like, razers3::Razers3Like, Mapper};

fn main() {
    let scale = Scale::from_env();
    println!("Table III — read mapping on the HiKey970 SoC (accuracy per §III-C)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let platform = profiles::system2_hikey970();

    let mut table = Table::new(
        "System 2 (HiKey970) — T(s) simulated / A(%) any-best vs RazerS3 gold".to_string(),
        grid_columns(),
    );
    let mapper_names = ["RazerS3", "Hobbes3", "CORAL-HiKey", "REPUTE-HiKey"];
    let mut rows: Vec<TableRow> = mapper_names
        .iter()
        .map(|name| TableRow {
            mapper: (*name).to_string(),
            cells: Vec::new(),
        })
        .collect();

    for &(n, delta) in &PAPER_GRID {
        eprintln!("cell (n={n}, δ={delta})…");
        let reads = w.read_seqs(n);
        let gold = gold_standard(&w.indexed, delta, &reads);
        // Big-cluster-only for the CPU programs, both clusters for the
        // OpenCL mappers.
        let big_only = platform.single_device_share(0, reads.len());
        let both = platform.even_shares(reads.len());
        let s_min = s_min_for(n, delta);

        let mappers: Vec<(Box<dyn Mapper>, bool)> = vec![
            (
                Box::new(Razers3Like::new(Arc::clone(&w.indexed), delta)),
                false,
            ),
            (
                Box::new(Hobbes3Like::new(Arc::clone(&w.indexed), delta)),
                false,
            ),
            (
                Box::new(CoralLike::new(Arc::clone(&w.indexed), delta).with_s_min(s_min)),
                true,
            ),
            (
                Box::new(ReputeMapper::new(
                    Arc::clone(&w.indexed),
                    ReputeConfig::new(delta, s_min).expect("valid paper parameters"),
                )),
                true,
            ),
        ];
        for (row, (mapper, multi)) in rows.iter_mut().zip(&mappers) {
            let shares = if *multi {
                both.as_slice()
            } else {
                big_only.as_slice()
            };
            let outcome = run_cell(
                mapper.as_ref(),
                &reads,
                &platform,
                shares,
                &gold,
                AccuracyMethod::AnyBest,
                match_tolerance(delta),
            );
            outcome.export_if_requested(&format!("table3 {} n={n} δ={delta}", row.mapper));
            row.cells.push(Some(outcome.result));
        }
    }
    for row in rows {
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "\npaper shape check: REPUTE-HiKey outperforms RazerS3 by ≈4× and is comparable\n\
         to or better than Hobbes3; all accuracies ≈100% under any-best."
    );
}
