//! Fig. 2 — the memory-optimised DP filtration, step by step (n=100, δ=5).
//!
//! The paper's Fig. 2 walks through the δ iterations of the DP: each
//! iteration's exploration space of prefixes, the optimal divider chosen
//! for each prefix, and the final backtracking. This binary prints the
//! same walk-through from the solver's trace API.

use repute_bench::workload::{Scale, Workload};
use repute_filter::freq::FreqTable;
use repute_filter::oss::{Exploration, OssParams, OssSolver};
use repute_filter::pigeonhole::UniformSelector;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 2 — DP filtration walk-through for (n=100, δ=5, S_min=12)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    // A forward-strand read with a meaningful candidate load (reads from
    // the reverse strand or unique regions make for an empty figure).
    let read = w
        .reads(100)
        .iter()
        .filter(|r| {
            r.origin
                .is_some_and(|o| o.strand == repute_genome::Strand::Forward)
        })
        .map(|r| r.seq.clone())
        .find(|seq| {
            let (sel, _) = UniformSelector::new(5).select(&seq.to_codes(), w.indexed.fm());
            sel.total_candidates() >= 50
        })
        .expect("workload contains repeat-touching forward reads");
    let codes = read.to_codes();

    let params = OssParams::new(5, 12).expect("valid parameters");
    let table = FreqTable::build(w.indexed.fm(), &codes, &params);
    let (outcome, trace) = OssSolver::new(params).select_traced(&codes, &table);

    for (t, iteration) in trace.iterations.iter().enumerate() {
        let lo = iteration.first().map(|&(p, _, _)| p).unwrap_or(0);
        let hi = iteration.last().map(|&(p, _, _)| p).unwrap_or(0);
        println!(
            "\niteration {t}: exploration space = prefixes of length {lo}..={hi} \
             ({} prefixes explored)",
            iteration.len()
        );
        // Show a handful of representative prefixes like the figure does.
        for &(prefix, divider, cost) in iteration.iter().step_by(iteration.len().div_ceil(6).max(1))
        {
            if t == 0 {
                println!("  prefix {prefix:>3}: 1 k-mer, cost {cost}");
            } else {
                println!(
                    "  prefix {prefix:>3}: 1st section = [0..{divider}), 2nd = [{divider}..{prefix}), cost {cost}"
                );
            }
        }
    }
    println!("\nbacktracking: optimal dividers at {:?}", trace.dividers);
    println!("final partition:");
    for (i, seed) in outcome.selection.seeds.iter().enumerate() {
        println!(
            "  k-mer {:>2}: [{:>3}..{:>3}) candidates {:>6}",
            i + 1,
            seed.start,
            seed.end(),
            seed.count
        );
    }
    println!(
        "total candidates: {} | DP cells: {} | peak DP memory: {} bytes",
        outcome.selection.total_candidates(),
        outcome.stats.dp_cells,
        outcome.stats.peak_bytes
    );

    // Contrast with the unrestricted exploration space (the memory
    // optimisation the paper applies over the original OSS).
    let full_params = params.exploration(Exploration::Full);
    let full_table = FreqTable::build(w.indexed.fm(), &codes, &full_params);
    let full = OssSolver::new(full_params).select(&codes, &full_table);
    println!(
        "without the restricted exploration space (original OSS behaviour):\n\
         FM extensions: {} (vs {} restricted) | DP cells: {} | peak DP memory: {} bytes\n\
         total candidates: {}",
        full_table.extend_ops(),
        table.extend_ops(),
        full.stats.dp_cells,
        full.stats.peak_bytes,
        full.selection.total_candidates()
    );
}
