//! Verification-kernel micro-benchmark and its CI gate (`BENCH_pr8.json`).
//!
//! Measures the batch verification stage (Ukkonen-banded kernels,
//! per-read mask hoisting, [`repute_align::BatchVerifier`] SWAR lanes)
//! against the stage it replaced — the unbanded
//! [`repute_align::block::search_full`] kernel with masks and scratch
//! rebuilt per candidate — on a pinned synthetic candidate corpus,
//! asserting along the way that both paths report bit-identical hit
//! streams. A second stage checks
//! full-pipeline invariance: the whole mapper grid is digested twice —
//! in-process (batch path) and in a `REPUTE_SCALAR_VERIFY=1` child
//! process (scalar path) — and the digests must agree.
//!
//! Modes:
//!
//! * `--write <path>` — run both stages and write the baseline document
//!   (corpus shape, wall seconds per path, speedup, work total, grid
//!   digest).
//! * `--check <path>` — re-run fresh and fail (exit 1) when the
//!   committed document is malformed, claims a speedup below
//!   [`MIN_COMMITTED_SPEEDUP`], disagrees with the fresh deterministic
//!   word total or grid digest, or the fresh speedup falls below
//!   [`MIN_FRESH_SPEEDUP`] (the looser floor absorbs CI machine noise).
//! * `--grid-digest` — internal: print the grid digest and exit (the
//!   child-process half of the invariance check).
//!
//! The corpus scale is pinned and ignores the `REPUTE_*` environment
//! overrides: committed numbers are only comparable when every run
//! verifies the identical candidate stream.

use std::sync::Arc;
use std::time::Instant;

use repute_align::block::{search_full, BlockMasks, BlockWork};
use repute_align::{BatchVerifier, ReadMasks, LANES};
use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{map_scheduled, ReputeConfig, ReputeMapper, Schedule};
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::profiles;
use repute_mappers::{gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like, Mapper};
use repute_obs::json::{field, parse_json, JsonObject, JsonValue};
use repute_obs::MapMetrics;

/// Schema identifier of the kernel-benchmark document.
const SCHEMA: &str = "repute-bench-verify-kernel";
/// Schema version; bump on any key change and regenerate the baseline.
const VERSION: u64 = 1;
/// The committed baseline must record at least this speedup — the
/// acceptance bar of the batch-kernel change itself.
const MIN_COMMITTED_SPEEDUP: f64 = 2.0;
/// A fresh `--check` run must reproduce at least this much of it;
/// the slack absorbs noisy shared CI machines.
const MIN_FRESH_SPEEDUP: f64 = 1.3;
/// Timed repetitions per path; the minimum is reported (noise robust).
const ROUNDS: usize = 7;

/// Pinned corpus: reads sliced from a synthetic reference, each
/// verified against `WINDOWS_PER_READ` candidate windows (true site,
/// mutated site, shifted sites, unrelated windows).
const CORPUS_REF_LEN: usize = 300_000;
const READS_PER_LEN: usize = 250;
const READ_LENS: [usize; 2] = [100, 150];
const WINDOWS_PER_READ: usize = 8;
const CORPUS_DELTA: u32 = 5;

/// One read with the byte ranges of its candidate windows.
struct CorpusRead {
    read: Vec<u8>,
    windows: Vec<(usize, usize)>,
}

/// Deterministic candidate corpus (no RNG beyond the seeded reference
/// builder — identical on every machine).
fn build_corpus() -> (Vec<u8>, Vec<CorpusRead>) {
    let reference = ReferenceBuilder::new(CORPUS_REF_LEN).seed(81).build();
    let codes = reference.to_codes();
    let n = codes.len();
    let delta = CORPUS_DELTA as usize;
    let mut reads = Vec::new();
    for (li, &m) in READ_LENS.iter().enumerate() {
        for r in 0..READS_PER_LEN {
            let at = (r * 977 + li * 353 + 64) % (n - m - 400);
            let mut read = codes[at..at + m].to_vec();
            // A third of the reads carry 2 substitutions, so true-site
            // verification is not all exact matches.
            if r % 3 == 0 {
                read[m / 4] = (read[m / 4] + 1) % 4;
                read[(3 * m) / 4] = (read[(3 * m) / 4] + 2) % 4;
            }
            let windows = (0..WINDOWS_PER_READ)
                .map(|c| {
                    let start = match c {
                        0 => at.saturating_sub(delta),                // true site
                        1 => at.saturating_sub(delta) + 3,            // shifted site
                        _ => (at + c * 31_013) % (n - m - 2 * delta), // decoys
                    };
                    (start, (start + m + 2 * delta).min(n))
                })
                .collect();
            reads.push(CorpusRead { read, windows });
        }
    }
    (codes, reads)
}

/// FNV-1a fold of one u64 into the running digest.
fn fold(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Folds a hit (or miss) into the digest. Only the alignment result is
/// folded — the two stages deliberately report different work totals
/// (that reduction is half the point), which are compared separately.
fn fold_hit(h: &mut u64, hit: Option<(u32, usize)>) {
    match hit {
        Some((distance, end)) => {
            fold(h, 1);
            fold(h, u64::from(distance));
            fold(h, end as u64);
        }
        None => fold(h, 0),
    }
}

/// One full baseline pass: the verification stage as it was before
/// this kernel generation — the unbanded blocked kernel, with pattern
/// masks and working memory rebuilt for every candidate.
fn baseline_pass(codes: &[u8], corpus: &[CorpusRead]) -> (u64, u64) {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut words = 0u64;
    for cr in corpus {
        for &(s, e) in &cr.windows {
            let masks = BlockMasks::new(&cr.read);
            let mut work = BlockWork::default();
            let hit = search_full(&masks, &codes[s..e], CORPUS_DELTA, &mut work);
            words += work.word_updates();
            fold_hit(&mut digest, hit.map(|h| (h.distance, h.end)));
        }
    }
    (digest, words)
}

/// One full batch pass: the current verification stage — banded
/// kernels, masks hoisted per read, windows verified [`LANES`] at a
/// time through the SWAR lanes on reused arenas.
fn batch_pass(codes: &[u8], corpus: &[CorpusRead], verifier: &mut BatchVerifier) -> (u64, u64) {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut words = 0u64;
    let mut results = Vec::with_capacity(LANES);
    let mut lanes: Vec<&[u8]> = Vec::with_capacity(LANES);
    for cr in corpus {
        let masks = ReadMasks::new(&cr.read);
        for chunk in cr.windows.chunks(LANES) {
            lanes.clear();
            lanes.extend(chunk.iter().map(|&(s, e)| &codes[s..e]));
            results.clear();
            verifier.verify_lanes(&masks, &lanes, CORPUS_DELTA, &mut results);
            for res in &results {
                words += res.1.word_updates;
                fold_hit(&mut digest, res.0.map(|v| (v.distance, v.end)));
            }
        }
    }
    (digest, words)
}

/// Kernel-stage measurement: hit-identity assertion plus best-of-ROUNDS
/// wall seconds for each path.
struct KernelMeasurement {
    baseline_seconds: f64,
    batch_seconds: f64,
    speedup: f64,
    baseline_words: u64,
    batch_words: u64,
    candidates: u64,
}

fn measure_kernel() -> KernelMeasurement {
    let (codes, corpus) = build_corpus();
    let candidates: u64 = corpus.iter().map(|c| c.windows.len() as u64).sum();
    let mut verifier = BatchVerifier::new();
    // Differential warmup: the two paths must report identical hits.
    let (baseline_digest, baseline_words) = baseline_pass(&codes, &corpus);
    let (batch_digest, batch_words) = batch_pass(&codes, &corpus, &mut verifier);
    assert_eq!(
        baseline_digest, batch_digest,
        "batch verification diverged from the unbanded baseline"
    );
    assert!(
        batch_words <= baseline_words,
        "banded path charged more word updates ({batch_words}) than the \
         unbanded baseline ({baseline_words})"
    );
    let mut baseline_best = f64::INFINITY;
    let mut batch_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        let (d, _) = baseline_pass(&codes, &corpus);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(d, baseline_digest);
        baseline_best = baseline_best.min(dt);
        let t = Instant::now();
        let (d, _) = batch_pass(&codes, &corpus, &mut verifier);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(d, batch_digest);
        batch_best = batch_best.min(dt);
    }
    KernelMeasurement {
        baseline_seconds: baseline_best,
        batch_seconds: batch_best,
        speedup: baseline_best / batch_best,
        baseline_words,
        batch_words,
        candidates,
    }
}

/// Digests a mapping run: every mapping triple, every metric counter,
/// and the work totals, folded in read order.
fn fold_outputs(h: &mut u64, outputs: &[repute_mappers::MapOutput], metrics: &[MapMetrics]) {
    for out in outputs {
        fold(h, out.mappings.len() as u64);
        for m in &out.mappings {
            fold(h, u64::from(m.position));
            fold(h, u64::from(m.distance));
            fold(h, u64::from(m.strand == repute_genome::Strand::Reverse));
        }
        fold(h, out.work);
        fold(h, out.candidates);
    }
    for m in metrics {
        for (_, v) in m.fields() {
            fold(h, v);
        }
    }
}

/// The full-pipeline grid digest: REPUTE across schedules and host
/// thread counts, plus the engine-sharing baseline mappers per read.
/// Any batch/scalar divergence anywhere in mapping output or work
/// accounting changes this value.
fn grid_digest() -> u64 {
    let w = Workload::generate(Scale::tiny());
    let platform = profiles::system1();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(read_len, delta) in &[(100usize, 3u32), (150, 5)] {
        let reads = w.read_seqs(read_len);
        let config = ReputeConfig::new(delta, s_min_for(read_len, delta)).expect("valid config");
        let mapper = ReputeMapper::new(Arc::clone(&w.indexed), config);
        for host_threads in [1usize, 4] {
            for schedule in [
                Schedule::Static(platform.even_shares(reads.len())),
                Schedule::Dynamic { batch: 0 },
            ] {
                let (run, metrics) =
                    map_scheduled(&mapper, &platform, &schedule, host_threads, &reads)
                        .expect("grid cell run failed");
                fold_outputs(&mut h, &run.outputs, &metrics);
                fold(&mut h, run.simulated_seconds.to_bits());
            }
        }
        // Baseline mappers share VerifyEngine; digest their raw
        // per-read outputs and telemetry.
        let gem = GemLike::new(Arc::clone(&w.indexed), delta);
        let razers = Razers3Like::new(Arc::clone(&w.indexed), delta);
        let hobbes = Hobbes3Like::new(Arc::clone(&w.indexed), delta);
        let baselines: [&dyn Mapper; 3] = [&gem, &razers, &hobbes];
        for mapper in baselines {
            for read in &reads {
                let mut metrics = MapMetrics::new();
                let out = mapper.map_read_metered(read, &mut metrics);
                fold_outputs(&mut h, std::slice::from_ref(&out), &[metrics]);
            }
        }
    }
    h
}

/// Runs the grid in a child process with `REPUTE_SCALAR_VERIFY=1` and
/// returns its digest (the env switch is latched at engine
/// construction, so the scalar pipeline needs its own process).
fn scalar_grid_digest() -> u64 {
    let exe = std::env::current_exe().expect("own executable path");
    let output = std::process::Command::new(exe)
        .arg("--grid-digest")
        .env("REPUTE_SCALAR_VERIFY", "1")
        .output()
        .expect("spawn scalar grid child");
    assert!(
        output.status.success(),
        "scalar grid child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8_lossy(&output.stdout);
    text.lines()
        .find_map(|l| l.strip_prefix("grid-digest: "))
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
        .expect("child printed no digest")
}

fn render_document(k: &KernelMeasurement, digest: u64) -> String {
    let mut corpus = JsonObject::new();
    corpus.u64_field("reference_len", CORPUS_REF_LEN as u64);
    corpus.u64_field("reads", (READS_PER_LEN * READ_LENS.len()) as u64);
    corpus.u64_field("windows_per_read", WINDOWS_PER_READ as u64);
    corpus.u64_field("delta", u64::from(CORPUS_DELTA));
    corpus.u64_field("candidates", k.candidates);
    let mut doc = JsonObject::new();
    doc.str_field("schema", SCHEMA);
    doc.u64_field("version", VERSION);
    doc.raw_field("corpus", &corpus.finish());
    doc.f64_field("baseline_seconds", k.baseline_seconds);
    doc.f64_field("batch_seconds", k.batch_seconds);
    doc.f64_field("speedup", k.speedup);
    doc.u64_field("baseline_word_updates", k.baseline_words);
    doc.u64_field("batch_word_updates", k.batch_words);
    doc.str_field("grid_digest", &format!("{digest:016x}"));
    let mut text = doc.finish();
    text.push('\n');
    text
}

/// Committed-document fields the check compares against.
struct Committed {
    speedup: f64,
    baseline_words: u64,
    batch_words: u64,
    grid_digest: String,
}

fn validate_document(text: &str) -> Result<Committed, String> {
    let doc = parse_json(text).ok_or("not valid JSON")?;
    let fields = doc.as_obj().ok_or("top level is not an object")?;
    let schema = field(fields, "schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let version = field(fields, "version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"version\"")?;
    if version != VERSION {
        return Err(format!("schema version is {version}, expected {VERSION}"));
    }
    field(fields, "corpus")
        .and_then(JsonValue::as_obj)
        .ok_or("missing object field \"corpus\"")?;
    for required in ["baseline_seconds", "batch_seconds", "speedup"] {
        if field(fields, required)
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("missing numeric field {required:?}"));
        }
    }
    let speedup = field(fields, "speedup")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let baseline_words = field(fields, "baseline_word_updates")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"baseline_word_updates\"")?;
    let batch_words = field(fields, "batch_word_updates")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"batch_word_updates\"")?;
    let grid_digest = field(fields, "grid_digest")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"grid_digest\"")?
        .to_string();
    Ok(Committed {
        speedup,
        baseline_words,
        batch_words,
        grid_digest,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 1 && args[0] == "--grid-digest" {
        println!("grid-digest: {:016x}", grid_digest());
        return;
    }
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "--write" || mode == "--check" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: verify_kernel --write <path> | --check <path>");
            std::process::exit(1);
        }
    };
    println!("Verification kernel benchmark — schema {SCHEMA} v{VERSION}");
    println!(
        "pinned corpus: {} reads × {} windows, read lens {:?}, δ={}",
        READS_PER_LEN * READ_LENS.len(),
        WINDOWS_PER_READ,
        READ_LENS,
        CORPUS_DELTA
    );
    println!("measuring kernel paths (best of {ROUNDS})…");
    let k = measure_kernel();
    println!(
        "  baseline {:.6} s | batch {:.6} s | speedup {:.2}× | {} candidate(s)",
        k.baseline_seconds, k.batch_seconds, k.speedup, k.candidates
    );
    println!(
        "  word updates: baseline {} → batch {} ({:.1}% of baseline work)",
        k.baseline_words,
        k.batch_words,
        100.0 * k.batch_words as f64 / k.baseline_words as f64
    );
    println!("digesting mapper grid (batch path, in process)…");
    let batch_digest = grid_digest();
    println!("  grid-digest: {batch_digest:016x}");
    println!("digesting mapper grid (scalar path, child process)…");
    let scalar_digest = scalar_grid_digest();
    println!("  grid-digest: {scalar_digest:016x}");
    if batch_digest != scalar_digest {
        eprintln!("FAIL: batch and scalar pipelines produced different grids");
        std::process::exit(1);
    }
    println!("grid invariance OK: batch and scalar pipelines agree bit for bit");

    if mode == "--write" {
        if k.speedup < MIN_COMMITTED_SPEEDUP {
            eprintln!(
                "FAIL: measured speedup {:.2}× is below the {MIN_COMMITTED_SPEEDUP:.1}× \
                 bar for a committed baseline",
                k.speedup
            );
            std::process::exit(1);
        }
        let text = render_document(&k, batch_digest);
        if let Err(err) = validate_document(&text) {
            eprintln!("BUG: freshly written document fails its own schema: {err}");
            std::process::exit(1);
        }
        if let Err(err) = std::fs::write(path, &text) {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        }
        println!("wrote baseline to {path}");
        return;
    }

    // --check
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    let committed = match validate_document(&committed) {
        Ok(c) => c,
        Err(err) => {
            eprintln!("FAIL: {path} violates the verify-kernel schema: {err}");
            std::process::exit(1);
        }
    };
    let mut failures = 0u32;
    if committed.speedup < MIN_COMMITTED_SPEEDUP {
        eprintln!(
            "FAIL: committed speedup {:.2}× is below the {MIN_COMMITTED_SPEEDUP:.1}× bar",
            committed.speedup
        );
        failures += 1;
    }
    if committed.baseline_words != k.baseline_words {
        eprintln!(
            "FAIL: fresh baseline word total {} != committed {} (corpus or kernel \
             drift — regenerate with --write)",
            k.baseline_words, committed.baseline_words
        );
        failures += 1;
    }
    if committed.batch_words != k.batch_words {
        eprintln!(
            "FAIL: fresh batch word total {} != committed {} (band or accounting \
             drift — regenerate with --write)",
            k.batch_words, committed.batch_words
        );
        failures += 1;
    }
    let fresh_digest = format!("{batch_digest:016x}");
    if committed.grid_digest != fresh_digest {
        eprintln!(
            "FAIL: fresh grid digest {fresh_digest} != committed {} (mapping output \
             changed — regenerate with --write)",
            committed.grid_digest
        );
        failures += 1;
    }
    if k.speedup < MIN_FRESH_SPEEDUP {
        eprintln!(
            "FAIL: fresh speedup {:.2}× fell below the {MIN_FRESH_SPEEDUP:.1}× floor \
             (committed: {:.2}×)",
            k.speedup, committed.speedup
        );
        failures += 1;
    }
    if failures > 0 {
        eprintln!("\n{failures} verify-kernel check(s) failed");
        std::process::exit(1);
    }
    println!(
        "\nall verify-kernel checks passed (committed {:.2}×, fresh {:.2}×)",
        committed.speedup, k.speedup
    );
}
