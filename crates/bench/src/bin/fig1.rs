//! Fig. 1 — the pigeonhole principle and optimal dividers (n=100, δ=5).
//!
//! The paper's Fig. 1 shows a read divided into δ+1 k-mers, each with its
//! candidate-location count, and the optimal dividers that minimise the
//! total. This binary prints the same picture for one read of the scaled
//! workload: the uniform partition (what a strategy-free pigeonhole
//! mapper uses) against the DP-optimal dividers.

use repute_bench::workload::{Scale, Workload};
use repute_filter::freq::FreqTable;
use repute_filter::oss::{OssParams, OssSolver};
use repute_filter::pigeonhole::UniformSelector;
use repute_filter::SeedSelection;

fn print_partition(label: &str, selection: &SeedSelection) {
    println!("\n{label}");
    let mut ruler = String::new();
    for seed in &selection.seeds {
        ruler.push('|');
        ruler.push_str(&".".repeat(seed.len.saturating_sub(1)));
    }
    ruler.push('|');
    println!("  {ruler}");
    for (i, seed) in selection.seeds.iter().enumerate() {
        println!(
            "  k-mer {:>2}: read[{:>3}..{:>3}]  len {:>2}  candidates {:>6}",
            i + 1,
            seed.start,
            seed.end(),
            seed.len,
            seed.count
        );
    }
    println!(
        "  total candidate locations: {}",
        selection.total_candidates()
    );
}

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 1 — pigeonhole principle for (n=100, δ=5)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let delta = 5u32;
    let s_min = 12usize;

    // Pick the first genomic (mappable) read of the n=100 set.
    // A forward-strand read with a meaningful candidate load (reads from
    // the reverse strand or unique regions make for an empty figure).
    let read = w
        .reads(100)
        .iter()
        .filter(|r| {
            r.origin
                .is_some_and(|o| o.strand == repute_genome::Strand::Forward)
        })
        .map(|r| r.seq.clone())
        .find(|seq| {
            let (sel, _) = UniformSelector::new(5).select(&seq.to_codes(), w.indexed.fm());
            sel.total_candidates() >= 50
        })
        .expect("workload contains repeat-touching forward reads");
    let codes = read.to_codes();
    println!("\nread: {read}");

    let (uniform, _) = UniformSelector::new(delta).select(&codes, w.indexed.fm());
    print_partition("uniform partition (no seed selection):", &uniform);

    let params = OssParams::new(delta, s_min).expect("valid parameters");
    let table = FreqTable::build(w.indexed.fm(), &codes, &params);
    let outcome = OssSolver::new(params).select(&codes, &table);
    print_partition(
        "optimal dividers (REPUTE's DP filtration, S_min=12):",
        &outcome.selection,
    );

    let gain =
        uniform.total_candidates() as f64 / outcome.selection.total_candidates().max(1) as f64;
    println!(
        "\ncandidate reduction vs uniform: {gain:.2}× \
         (the quantity the vertical dividers of the paper's Fig. 1 minimise)"
    );
}
