//! Fig. 4 — mapping time vs minimum k-mer length S_min (n=100, δ=4).
//!
//! The paper fixes the distribution (820k reads on the CPU, 90k per GPU)
//! and sweeps S_min: small values explore more DP possibilities
//! (longer filtration), large values shrink the exploration space until
//! candidate counts grow and verification dominates — a U-shaped curve
//! with the sweet spot in the middle.

use std::sync::Arc;

use repute_bench::workload::{Scale, Workload};
use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_hetsim::{profiles, Share};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 4 — mapping time vs minimum k-mer length (n=100, δ=4)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let reads = w.read_seqs(100);
    let total = reads.len();
    let platform = profiles::system1();
    // The paper's fixed distribution: 82% CPU, 9% per GPU.
    let per_gpu = total * 9 / 100;
    let cpu = total - 2 * per_gpu;
    let shares = vec![
        Share {
            device: 0,
            items: cpu,
        },
        Share {
            device: 1,
            items: per_gpu,
        },
        Share {
            device: 2,
            items: per_gpu,
        },
    ];

    println!(
        "\n{:>6} | {:>12} | {:>16} | {:>16}",
        "S_min", "T(s) sim", "filter work", "candidates"
    );
    println!("{}", "-".repeat(60));
    for s_min in (10..=20).step_by(2) {
        let mapper = ReputeMapper::new(
            Arc::clone(&w.indexed),
            ReputeConfig::new(4, s_min).expect("valid paper parameters"),
        );
        let run = map_on_platform(&mapper, &platform, &shares, &reads)
            .expect("share arithmetic covers all reads");
        let candidates: u64 = run.outputs.iter().map(|o| o.candidates).sum();
        println!(
            "{:>6} | {:>12.3} | {:>16} | {:>16}",
            s_min,
            run.simulated_seconds,
            run.total_work(),
            candidates
        );
    }
    println!(
        "\npaper shape check: small S_min pays in DP exploration, large S_min pays in\n\
         candidate locations — the minimum sits between (Fig. 4 bottoms at S_min≈16-18)."
    );
}
