//! Table IV — power and energy (§III-D / §IV).
//!
//! The two measurement cases of the paper: (n=100, δ=3) and (n=150, δ=5).
//! On System 1, CORAL and REPUTE run both CPU-only and CPU+GPU variants;
//! RazerS3 and Hobbes3 are CPU-only. On System 2 (HiKey970), all four run.
//! `P(W)` is the average wall power during mapping (idle + busy devices),
//! `E(J)` the energy above idle over the mapping time — the paper's exact
//! §III-D arithmetic.

use std::sync::Arc;

use repute_bench::harness::{gold_standard, match_tolerance, run_cell, AccuracyMethod};
use repute_bench::workload::{s_min_for, s_min_options, Scale, Workload};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_hetsim::profiles;
use repute_hetsim::{Platform, Share};
use repute_mappers::{coral::CoralLike, hobbes3::Hobbes3Like, razers3::Razers3Like, Mapper};

struct EnergyRow {
    name: String,
    power_w: f64,
    energy_j: f64,
    time_s: f64,
}

fn measure(
    name: &str,
    mapper: &dyn Mapper,
    w: &Workload,
    n: usize,
    delta: u32,
    platform: &Platform,
    shares: &[Share],
) -> EnergyRow {
    let reads = w.read_seqs(n);
    let gold = gold_standard(&w.indexed, delta, &reads);
    let outcome = run_cell(
        mapper,
        &reads,
        platform,
        shares,
        &gold,
        AccuracyMethod::AnyBest,
        match_tolerance(delta),
    );
    outcome.export_if_requested(&format!("table4 {name} n={n} δ={delta}"));
    EnergyRow {
        name: name.to_string(),
        power_w: outcome.energy.average_power_w,
        energy_j: outcome.energy.energy_j,
        time_s: outcome.energy.mapping_seconds,
    }
}

fn print_rows(header: &str, rows: &[EnergyRow]) {
    println!("\n{header}");
    println!(
        "{:<14} | {:>8} | {:>10} | {:>8}",
        "Mapper", "P(W)", "E(J)", "T(s)"
    );
    println!("{}", "-".repeat(50));
    for r in rows {
        println!(
            "{:<14} | {:>8.1} | {:>10.2} | {:>8.2}",
            r.name, r.power_w, r.energy_j, r.time_s
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("Table IV — power and energy consumption (§III-D methodology)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);

    let sys1_cpu = profiles::system1_cpu_only();
    let sys1_all = profiles::system1();
    let sys2 = profiles::system2_hikey970();

    for (n, delta) in [(100usize, 3u32), (150, 5)] {
        let s_min = s_min_for(n, delta);
        let count = w.read_seqs(n).len();
        eprintln!("case (n={n}, δ={delta})…");

        let razers = Razers3Like::new(Arc::clone(&w.indexed), delta);
        let hobbes = Hobbes3Like::new(Arc::clone(&w.indexed), delta);
        let coral = CoralLike::new(Arc::clone(&w.indexed), delta).with_s_min(s_min);
        let repute = ReputeMapper::new(
            Arc::clone(&w.indexed),
            ReputeConfig::new(delta, s_min).expect("valid paper parameters"),
        );
        // Heterogeneous REPUTE uses the per-cell tuned S_min (large
        // kernels hurt GPU occupancy; §IV).
        let s_min_all = *s_min_options(n, delta).last().expect("non-empty");
        let repute_all = ReputeMapper::new(
            Arc::clone(&w.indexed),
            ReputeConfig::new(delta, s_min_all).expect("valid paper parameters"),
        );

        let cpu_share = sys1_cpu.single_device_share(0, count);
        let all_share = sys1_all.even_shares(count);
        let rows = vec![
            measure("RazerS3", &razers, &w, n, delta, &sys1_cpu, &cpu_share),
            measure("Hobbes3", &hobbes, &w, n, delta, &sys1_cpu, &cpu_share),
            measure("CORAL-CPU", &coral, &w, n, delta, &sys1_cpu, &cpu_share),
            measure("CORAL-all", &coral, &w, n, delta, &sys1_all, &all_share),
            measure("REPUTE-CPU", &repute, &w, n, delta, &sys1_cpu, &cpu_share),
            measure(
                "REPUTE-all",
                &repute_all,
                &w,
                n,
                delta,
                &sys1_all,
                &all_share,
            ),
        ];
        print_rows(
            &format!("System 1 — 160 W idle — (n={n}, δ={delta})"),
            &rows,
        );

        let big_share = sys2.single_device_share(0, count);
        let both_share = sys2.even_shares(count);
        let rows = vec![
            measure("RazerS3", &razers, &w, n, delta, &sys2, &big_share),
            measure("Hobbes3", &hobbes, &w, n, delta, &sys2, &big_share),
            measure("CORAL-HiKey", &coral, &w, n, delta, &sys2, &both_share),
            measure("REPUTE-HiKey", &repute, &w, n, delta, &sys2, &both_share),
        ];
        print_rows(
            &format!("System 2 — 3.5 W idle — (n={n}, δ={delta})"),
            &rows,
        );
    }
    println!(
        "\npaper shape check: REPUTE-all draws the most power but completes fastest;\n\
         the HiKey970 rows use one to two orders of magnitude less energy than\n\
         System 1 (the paper reports up to 27× savings)."
    );
}
