//! Fig. 3 — mapping time vs CPU/GPU workload distribution (n=150, δ=5).
//!
//! The paper sweeps the number of reads (out of 1M) mapped by *each* GPU,
//! the CPU taking the rest, at a fixed minimum k-mer length of 22. The
//! leftmost point is CPU-only, the rightmost all-GPU; the sweet spot sits
//! in between because the task-parallel launch completes when the slowest
//! device finishes.

use std::sync::Arc;

use repute_bench::workload::{Scale, Workload};
use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_hetsim::{profiles, Share};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 3 — mapping time vs workload distribution (n=150, δ=5, S_min=22)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let reads = w.read_seqs(150);
    let total = reads.len();
    let platform = profiles::system1();
    let mapper = ReputeMapper::new(
        Arc::clone(&w.indexed),
        ReputeConfig::new(5, 22).expect("valid paper parameters"),
    );

    println!(
        "\n{:>14} | {:>14} | {:>12} | {:>12}",
        "reads per GPU", "reads on CPU", "T(s) sim", "bottleneck"
    );
    println!("{}", "-".repeat(62));
    let steps = 8usize;
    let mut best: Option<(usize, f64)> = None;
    for step in 0..=steps {
        let per_gpu = total / 2 * step / steps; // up to all reads on GPUs
        let cpu = total - 2 * per_gpu;
        let shares = vec![
            Share {
                device: 0,
                items: cpu,
            },
            Share {
                device: 1,
                items: per_gpu,
            },
            Share {
                device: 2,
                items: per_gpu,
            },
        ];
        let run = map_on_platform(&mapper, &platform, &shares, &reads)
            .expect("share arithmetic covers all reads");
        let bottleneck = run
            .device_runs
            .iter()
            .max_by(|a, b| a.simulated_seconds.total_cmp(&b.simulated_seconds))
            .map(|r| platform.devices()[r.device].name().to_string())
            .unwrap_or_default();
        println!(
            "{:>14} | {:>14} | {:>12.3} | {:>12}",
            per_gpu, cpu, run.simulated_seconds, bottleneck
        );
        if best.is_none_or(|(_, t)| run.simulated_seconds < t) {
            best = Some((per_gpu, run.simulated_seconds));
        }
    }
    if let Some((per_gpu, t)) = best {
        println!(
            "\nbest split: {per_gpu} reads per GPU ({t:.3}s) — the U-shape of the paper's Fig. 3:\n\
             CPU-bound on the left, GPU-bound on the right."
        );
    }
}
