//! Scheduler ablation: `--schedule {static,dynamic}` × `--host-threads`
//! over the standard workload.
//!
//! Three checks, all enforced (nonzero exit on failure, so CI can run
//! this at tiny scale):
//!
//! 1. **Output invariance** — every schedule mode and host-thread count
//!    reports exactly the mappings of the single-device baseline, in
//!    exact read order (the schedule must never change *what* is mapped,
//!    only *when* and *where*).
//! 2. **Dynamic beats static on skew** — on a deliberately imbalanced
//!    read set (heaviest read repeated over the first quarter, lightest
//!    over the rest), greedy batch pulling finishes no later than even
//!    static shares in simulated time.
//! 3. **Host threading pays off** — with ≥ 4 host cores, the threaded
//!    static executor beats the sequential host (`--host-threads 1`) by
//!    ≥ 1.5× wall clock (min of 3 repetitions each). Skipped on smaller
//!    runners: the simulated schedule is core-count-independent, but
//!    wall clock obviously is not.

use std::sync::Arc;

use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{map_scheduled, ReputeConfig, ReputeMapper, Schedule, AUTO_HOST_THREADS};
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, Platform};
use repute_mappers::Mapper;

/// Four identical CPU devices: the simplest platform on which even
/// static shares pin a skewed read set to one device while greedy batch
/// pulling spreads it, and on which share threads map 1:1 to host cores.
fn quad_platform() -> Platform {
    Platform::new(
        "quad-cpu",
        1.0,
        (0..4).map(|_| profiles::intel_i7_2600()).collect(),
    )
}

fn run(
    mapper: &ReputeMapper,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    reads: &[DnaSeq],
) -> repute_core::MappingRun {
    map_scheduled(mapper, platform, schedule, host_threads, reads)
        .expect("schedule bench run failed")
        .0
}

fn mappings_of(run: &repute_core::MappingRun) -> Vec<Vec<repute_mappers::Mapping>> {
    run.outputs.iter().map(|o| o.mappings.clone()).collect()
}

fn main() {
    let scale = Scale::from_env();
    println!("Schedule ablation — static shares vs dynamic batch pulling");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let (n, delta) = (100usize, 5u32);
    let reads = w.read_seqs(n);
    let config = ReputeConfig::new(delta, s_min_for(n, delta)).expect("valid config");
    let mapper = ReputeMapper::new(Arc::clone(&w.indexed), config);
    let platform = quad_platform();
    let mut failures = 0u32;

    // [1] Output invariance across schedules and host-thread counts.
    println!(
        "\n[1] output invariance (n={n}, δ={delta}, {} reads, {} devices)",
        reads.len(),
        platform.devices().len()
    );
    let single = profiles::system1_cpu_only();
    let baseline = run(
        &mapper,
        &single,
        &Schedule::Static(single.single_device_share(0, reads.len())),
        1,
        &reads,
    );
    let gold = mappings_of(&baseline);
    let variants: Vec<(String, Schedule, usize)> = vec![
        (
            "static auto".into(),
            Schedule::Static(platform.even_shares(reads.len())),
            AUTO_HOST_THREADS,
        ),
        (
            "static ht=1".into(),
            Schedule::Static(platform.even_shares(reads.len())),
            1,
        ),
        (
            "static ht=2".into(),
            Schedule::Static(platform.even_shares(reads.len())),
            2,
        ),
        (
            "dynamic auto".into(),
            Schedule::Dynamic { batch: 0 },
            AUTO_HOST_THREADS,
        ),
        ("dynamic b=7 ht=3".into(), Schedule::Dynamic { batch: 7 }, 3),
    ];
    println!(
        "{:>18} | {:>10} | {:>10} | {:>8}",
        "variant", "sim T(s)", "energy(J)", "output"
    );
    println!("{}", "-".repeat(56));
    for (name, schedule, host_threads) in &variants {
        let out = run(&mapper, &platform, schedule, *host_threads, &reads);
        let same = mappings_of(&out) == gold;
        println!(
            "{:>18} | {:>10.4} | {:>10.2} | {:>8}",
            name,
            out.simulated_seconds,
            out.energy.energy_j,
            if same { "same" } else { "DIFFERS" }
        );
        if !same {
            eprintln!("FAIL: {name} changed the mapping output");
            failures += 1;
        }
    }

    // [2] Skewed workload: dynamic batch pulling must finish no later
    // than static even shares. The first quarter of the read set is the
    // heaviest read repeated, the rest the lightest: even shares pin all
    // the heavy reads on device 0.
    let per_read_work: Vec<u64> = reads.iter().map(|r| mapper.map_read(r).work).collect();
    let heavy = (0..reads.len()).max_by_key(|&i| per_read_work[i]).unwrap();
    let light = (0..reads.len()).min_by_key(|&i| per_read_work[i]).unwrap();
    let q = (reads.len() / 4).max(1);
    let mut skewed: Vec<DnaSeq> = Vec::with_capacity(4 * q);
    skewed.extend(std::iter::repeat_with(|| reads[heavy].clone()).take(q));
    skewed.extend(std::iter::repeat_with(|| reads[light].clone()).take(3 * q));
    println!(
        "\n[2] skewed workload: {q}×heaviest (work {}) + {}×lightest (work {})",
        per_read_work[heavy],
        3 * q,
        per_read_work[light]
    );
    if per_read_work[heavy] <= per_read_work[light] {
        eprintln!("FAIL: workload has no per-read work skew to exploit");
        failures += 1;
    }
    let static_run = run(
        &mapper,
        &platform,
        &Schedule::Static(platform.even_shares(skewed.len())),
        AUTO_HOST_THREADS,
        &skewed,
    );
    let dynamic_run = run(
        &mapper,
        &platform,
        &Schedule::Dynamic { batch: 0 },
        AUTO_HOST_THREADS,
        &skewed,
    );
    println!(
        "static even shares: {:.4} s | dynamic: {:.4} s ({:+.1}%)",
        static_run.simulated_seconds,
        dynamic_run.simulated_seconds,
        (dynamic_run.simulated_seconds / static_run.simulated_seconds - 1.0) * 100.0
    );
    if dynamic_run.simulated_seconds > static_run.simulated_seconds {
        eprintln!("FAIL: dynamic schedule is slower than static even shares on a skewed workload");
        failures += 1;
    }
    if mappings_of(&dynamic_run) != mappings_of(&static_run) {
        eprintln!("FAIL: schedules disagree on the skewed workload's mappings");
        failures += 1;
    }

    // [3] Wall-clock speedup of the threaded executor over a sequential
    // host, on the natural (uniform) workload.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n[3] host threading ({cores} cores available)");
    if cores < 4 {
        println!("skipped: needs ≥ 4 host cores for a meaningful speedup check");
    } else {
        let shares = Schedule::Static(platform.even_shares(reads.len()));
        let best_wall = |host_threads: usize| {
            (0..3)
                .map(|_| run(&mapper, &platform, &shares, host_threads, &reads).wall_seconds)
                .fold(f64::INFINITY, f64::min)
        };
        let sequential = best_wall(1);
        let threaded = best_wall(AUTO_HOST_THREADS);
        let speedup = sequential / threaded;
        println!(
            "sequential host: {sequential:.4} s | threaded: {threaded:.4} s | speedup {speedup:.2}×"
        );
        if speedup < 1.5 {
            eprintln!("FAIL: threaded executor speedup {speedup:.2}× is below 1.5×");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nall schedule ablation checks passed");
}
