//! Table I — the homogeneous scenario (§III-A / §IV).
//!
//! All mappers run on the CPU of System 1; accuracy is the §III-A
//! all-locations comparison against the RazerS3 gold standard (RazerS3
//! limited to 100 locations per read, the rest to 1000; Yara, BWA-MEM and
//! GEM report their best stratum, hence their low scores under this
//! methodology — exactly the paper's pattern).

use std::sync::Arc;

use repute_bench::harness::{
    gold_standard, grid_columns, match_tolerance, run_cell, AccuracyMethod, PAPER_GRID,
};
use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_eval::{Table, TableRow};
use repute_hetsim::profiles;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like,
    yara::YaraLike, Mapper,
};

fn main() {
    let scale = Scale::from_env();
    println!("Table I — mapping on the CPU (homogeneous scenario, accuracy per §III-A)");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let platform = profiles::system1_cpu_only();

    let mut table = Table::new(
        "System 1, CPU only — T(s) simulated / A(%) all-locations vs RazerS3 gold".to_string(),
        grid_columns(),
    );
    let mapper_names = [
        "RazerS3",
        "Hobbes3",
        "Yara",
        "BWA-MEM",
        "GEM",
        "CORAL-cpu",
        "REPUTE-cpu",
    ];
    let mut rows: Vec<TableRow> = mapper_names
        .iter()
        .map(|name| TableRow {
            mapper: (*name).to_string(),
            cells: Vec::new(),
        })
        .collect();

    // BWA-MEM has no δ knob: one run per read length, reused per column.
    let mut bwamem_cache: Vec<(usize, repute_eval::CellResult)> = Vec::new();

    for &(n, delta) in &PAPER_GRID {
        eprintln!("cell (n={n}, δ={delta})…");
        let reads = w.read_seqs(n);
        let gold = gold_standard(&w.indexed, delta, &reads);
        let shares = platform.single_device_share(0, reads.len());
        let s_min = s_min_for(n, delta);

        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(Razers3Like::new(Arc::clone(&w.indexed), delta)),
            Box::new(Hobbes3Like::new(Arc::clone(&w.indexed), delta)),
            Box::new(YaraLike::new(Arc::clone(&w.indexed), delta)),
            Box::new(BwaMemLike::new(Arc::clone(&w.indexed))),
            Box::new(GemLike::new(Arc::clone(&w.indexed), delta)),
            Box::new(CoralLike::new(Arc::clone(&w.indexed), delta).with_s_min(s_min)),
            Box::new(ReputeMapper::new(
                Arc::clone(&w.indexed),
                ReputeConfig::new(delta, s_min).expect("valid paper parameters"),
            )),
        ];
        for (row, mapper) in rows.iter_mut().zip(&mappers) {
            let is_bwamem = mapper.name() == "BWA-MEM";
            if is_bwamem {
                if let Some((_, cached)) = bwamem_cache.iter().find(|(len, _)| *len == n) {
                    row.cells.push(Some(*cached));
                    continue;
                }
            }
            let outcome = run_cell(
                mapper.as_ref(),
                &reads,
                &platform,
                &shares,
                &gold,
                AccuracyMethod::AllLocations,
                match_tolerance(delta),
            );
            outcome.export_if_requested(&format!("table1 {} n={n} δ={delta}", row.mapper));
            if is_bwamem {
                bwamem_cache.push((n, outcome.result));
            }
            row.cells.push(Some(outcome.result));
        }
    }
    for row in rows {
        table.push_row(row);
    }
    println!("{table}");
    let show = |base: &str, target: &str| {
        let text: Vec<String> = table
            .speedups(base, target)
            .iter()
            .map(|r| r.map_or("-".into(), |v| format!("{v:.2}x")))
            .collect();
        println!("speedup {target} vs {base}: {}", text.join(", "));
    };
    show("RazerS3", "REPUTE-cpu");
    show("Yara", "REPUTE-cpu");
    show("CORAL-cpu", "REPUTE-cpu");
    show("Hobbes3", "REPUTE-cpu");
    let winners = table.column_winners();
    println!(
        "fastest per column: {}",
        winners
            .iter()
            .map(|w| w.unwrap_or("-"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "\npaper shape check: REPUTE-cpu beats CORAL-cpu at high δ / n=150, and the\n\
         best-mappers (Yara, BWA-MEM, GEM) score low under the all-locations metric."
    );
}
