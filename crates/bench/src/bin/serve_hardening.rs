//! Serve hardening ablation: deadline scheduling, tenant quotas, and
//! journal compaction must behave as specified — and compaction must
//! actually bound the journal — plus the `BENCH_pr9.json` baseline and
//! its CI regression gate.
//!
//! The smoke section (always runs, nonzero exit on any failure):
//!
//! 1. Runs the pinned 9-job workload through a hardened harness
//!    (tenant quota on `edge`, one tight-deadline job submitted last)
//!    and checks: the over-quota job gets a typed `QUOTA_EXCEEDED`
//!    refusal, the deadline job runs in the first scheduler batch
//!    (EDF beats submission and fair-queue order), counters account
//!    every submission, and per-job SAM is byte-identical to a
//!    default-options run of the same jobs (scheduling policy must
//!    never leak into mapping output).
//! 2. Compaction ablation: the same drained workload journaled with
//!    `journal_compact_threshold = 1` versus an append-only control.
//!    The compacted journal (header + state snapshot + zero live
//!    records after a full drain) must be a fraction of the control.
//! 3. Crash/resume from a compacted journal: commit one batch (which
//!    compacts), crash mid-batch, resume — the union of pre-crash and
//!    post-resume responses must be bit-identical to an uninterrupted
//!    run.
//!
//! Baseline modes (mirroring the other trajectory gates):
//!
//! * `--write <path>` — write `BENCH_pr9.json`: deterministic simulated
//!   seconds and journal byte sizes (gated), plus the compaction ratio
//!   (informational).
//! * `--check <path>` — re-run the smoke workload, schema-validate the
//!   committed document, and fail (exit 1) when any gated metric
//!   exceeds its committed value by more than 20%.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::profiles;
use repute_mappers::multiref::ReferenceSet;
use repute_obs::json::{field, parse_json, JsonObject, JsonValue};
use repute_serve::{JobEnvelope, JobResponse, JobStatus, ServeHarness, ServeOptions};

/// Schema identifier of the hardening baseline document.
const SCHEMA: &str = "repute-bench-serve-hardening";
/// Schema version; bump on any key change and regenerate the baseline.
const VERSION: u64 = 1;
/// Fresh gated metrics may exceed the committed baseline by at most
/// this factor before the check fails.
const REGRESSION_FACTOR: f64 = 1.2;

/// Pinned smoke scale (deterministic; environment overrides are
/// ignored so the committed baseline stays comparable).
const REF_LEN: usize = 60_000;
const READS_PER_JOB: usize = 4;
const JOBS_PER_TENANT: usize = 3;
/// Sliding-window read budget pinned on tenant `edge`: two jobs fit,
/// the third must be refused.
const EDGE_BUDGET: u64 = (READS_PER_JOB * 2) as u64;

const TENANTS: [&str; 3] = ["acme", "lab", "edge"];

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn reference() -> DnaSeq {
    ReferenceBuilder::new(REF_LEN).seed(9901).build()
}

fn reference_set() -> ReferenceSet {
    ReferenceSet::build(vec![("chrH".to_string(), reference())])
}

fn hardened_options() -> ServeOptions {
    ServeOptions {
        tenant_weights: vec![("acme".to_string(), 2.0)],
        tenant_quotas: vec![("edge".to_string(), EDGE_BUDGET)],
        ..ServeOptions::default()
    }
}

/// 3 tenants × 3 jobs, alternating δ ∈ {3, 5}; the very last submission
/// is a `lab` job with a unique δ = 4 and a tight deadline — under
/// plain fair queuing it would run late (lab has no weight boost and it
/// arrives last), under EDF it must seed the first batch.
fn smoke_jobs(reference: &DnaSeq) -> Vec<JobEnvelope> {
    let mut jobs = Vec::new();
    for (t, tenant) in TENANTS.iter().enumerate() {
        for j in 0..JOBS_PER_TENANT {
            let reads: Vec<(String, DnaSeq)> = (0..READS_PER_JOB)
                .map(|i| {
                    let start = 1_000 + (t * JOBS_PER_TENANT + j) * 5_000 + i * 700;
                    (
                        format!("{tenant}-{j}-r{i}"),
                        reference.subseq(start..start + 100),
                    )
                })
                .collect();
            let delta = if (t + j) % 2 == 0 { 3 } else { 5 };
            jobs.push(
                JobEnvelope::new(format!("{tenant}-{j}"), reads)
                    .with_tenant(*tenant)
                    .with_delta(delta),
            );
        }
    }
    let urgent_reads: Vec<(String, DnaSeq)> = (0..READS_PER_JOB)
        .map(|i| {
            let start = 48_000 + i * 700;
            (format!("urgent-r{i}"), reference.subseq(start..start + 100))
        })
        .collect();
    jobs.push(
        JobEnvelope::new("lab-urgent", urgent_reads)
            .with_tenant("lab")
            .with_delta(4)
            .with_deadline(0.001)
            .with_priority(7),
    );
    jobs
}

/// Submits every job, recording inline refusals; returns (refusals,
/// accepted ids in submission order).
fn submit_all(harness: &mut ServeHarness, jobs: &[JobEnvelope]) -> (Vec<JobResponse>, Vec<String>) {
    let mut refusals = Vec::new();
    let mut accepted = Vec::new();
    for job in jobs {
        match harness.submit(job.clone()) {
            Ok(None) => accepted.push(job.id.clone()),
            Ok(Some(refusal)) => refusals.push(refusal),
            Err(e) => fail(&format!("submit {:?}: {e}", job.id)),
        }
    }
    (refusals, accepted)
}

fn sam_by_id(responses: &[JobResponse]) -> HashMap<String, String> {
    responses
        .iter()
        .map(|r| {
            (
                r.id.clone(),
                r.sam
                    .clone()
                    .unwrap_or_else(|| fail("completed job without SAM")),
            )
        })
        .collect()
}

struct SmokeResult {
    simulated_seconds: f64,
    batches: u64,
    compactions: u64,
    journal_control_bytes: u64,
    journal_compacted_bytes: u64,
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("repute-serve-hardening");
    std::fs::remove_dir_all(&dir).ok();
    if std::fs::create_dir_all(&dir).is_err() {
        fail("cannot create the hardening scratch directory");
    }
    dir
}

fn journal_size(path: &Path) -> u64 {
    match std::fs::metadata(path) {
        Ok(meta) => meta.len(),
        Err(_) => fail(&format!("cannot stat journal {}", path.display())),
    }
}

fn run_smoke() -> SmokeResult {
    let dir = scratch_dir();
    let jobs = smoke_jobs(&reference());
    let submitted = jobs.len() as u64;

    // --- 1. EDF + quota semantics on the hardened harness. -----------
    let mut hardened =
        match ServeHarness::new(reference_set(), profiles::system1(), hardened_options()) {
            Ok(harness) => harness,
            Err(e) => fail(&format!("harness construction: {e}")),
        };
    let (refusals, accepted) = submit_all(&mut hardened, &jobs);
    if refusals.len() != 1 || refusals[0].status != JobStatus::QuotaExceeded {
        fail(&format!(
            "expected exactly one QUOTA_EXCEEDED refusal for tenant edge, got {refusals:?}"
        ));
    }
    if refusals[0].id != "edge-2" {
        fail(&format!(
            "the third edge job must blow the {EDGE_BUDGET}-read budget, \
             refused {:?} instead",
            refusals[0].id
        ));
    }
    println!(
        "  quota OK: {:?} refused — {}",
        refusals[0].id,
        refusals[0].reason.as_deref().unwrap_or("?")
    );
    let responses = match hardened.drain() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("hardened drain: {e}")),
    };
    if responses.len() != accepted.len() {
        fail(&format!(
            "{} responses for {} accepted jobs",
            responses.len(),
            accepted.len()
        ));
    }
    let c = hardened.counters();
    if c.accepted + c.rejected + c.retry_later + c.quota_exceeded != submitted {
        fail(&format!(
            "counters leak submissions: accepted {} + rejected {} + retry-later {} \
             + quota-exceeded {} != {submitted}",
            c.accepted, c.rejected, c.retry_later, c.quota_exceeded
        ));
    }
    if c.quota_exceeded != 1 || c.completed != accepted.len() as u64 {
        fail("quota/completion counters drifted");
    }
    let urgent = responses
        .iter()
        .find(|r| r.id == "lab-urgent")
        .unwrap_or_else(|| fail("no response for the deadline job"));
    let min_batch = responses
        .iter()
        .filter_map(|r| r.batch)
        .min()
        .unwrap_or_else(|| fail("no batch indices"));
    if urgent.batch != Some(min_batch) {
        fail(&format!(
            "EDF violated: the tight-deadline job ran in batch {:?}, \
             first batch was {min_batch}",
            urgent.batch
        ));
    }
    println!(
        "  EDF OK: last-submitted deadline job seeded batch {min_batch} \
         of {} batches",
        c.batches
    );

    // Scheduling policy must never leak into mapping output: per-job
    // SAM byte-identical to a default-options run of the same jobs.
    let mut plain = match ServeHarness::new(
        reference_set(),
        profiles::system1(),
        ServeOptions::default(),
    ) {
        Ok(harness) => harness,
        Err(e) => fail(&format!("plain harness construction: {e}")),
    };
    for job in jobs.iter().filter(|j| accepted.contains(&j.id)) {
        match plain.submit(job.clone()) {
            Ok(None) => {}
            other => fail(&format!("plain submit {:?}: {other:?}", job.id)),
        }
    }
    let plain_sam = match plain.drain() {
        Ok(responses) => sam_by_id(&responses),
        Err(e) => fail(&format!("plain drain: {e}")),
    };
    let hardened_sam = sam_by_id(&responses);
    for (id, sam) in &hardened_sam {
        if plain_sam.get(id) != Some(sam) {
            fail(&format!(
                "job {id:?}: SAM under EDF/quota differs from the default-options run"
            ));
        }
    }
    println!(
        "  byte-identity OK: {} jobs, scheduling policy did not touch SAM",
        hardened_sam.len()
    );

    // --- 2. Compaction ablation: bounded journal vs append-only. ------
    let control_path = dir.join("control.journal");
    let (mut control, _) = match ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        hardened_options(),
        &control_path,
        false,
    ) {
        Ok(pair) => pair,
        Err(e) => fail(&format!("control journal: {e}")),
    };
    submit_all(&mut control, &jobs);
    if let Err(e) = control.drain() {
        fail(&format!("control drain: {e}"));
    }
    let journal_control_bytes = journal_size(&control_path);

    let compact_path = dir.join("compact.journal");
    let mut compacting_options = hardened_options();
    compacting_options.journal_compact_threshold = 1;
    let (mut compacting, _) = match ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        compacting_options.clone(),
        &compact_path,
        false,
    ) {
        Ok(pair) => pair,
        Err(e) => fail(&format!("compacting journal: {e}")),
    };
    submit_all(&mut compacting, &jobs);
    if let Err(e) = compacting.drain() {
        fail(&format!("compacting drain: {e}"));
    }
    let compactions = compacting.counters().compactions;
    if compactions == 0 {
        fail("threshold 1 must compact at least once per committed batch");
    }
    let journal_compacted_bytes = journal_size(&compact_path);
    // After a full drain there are zero live records: the compacted
    // journal is just the header plus one state snapshot, and must be
    // a fraction of the append-only control.
    if journal_compacted_bytes * 2 >= journal_control_bytes {
        fail(&format!(
            "compaction did not bound the journal: {journal_compacted_bytes} B \
             compacted vs {journal_control_bytes} B control"
        ));
    }
    println!(
        "  compaction OK: {compactions} compaction(s), journal \
         {journal_control_bytes} B → {journal_compacted_bytes} B"
    );

    // --- 3. Crash + resume from a compacted journal. ------------------
    let crash_path = dir.join("crash.journal");
    let (mut doomed, _) = match ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        compacting_options.clone(),
        &crash_path,
        false,
    ) {
        Ok(pair) => pair,
        Err(e) => fail(&format!("crash journal: {e}")),
    };
    submit_all(&mut doomed, &jobs);
    let committed = match doomed.run_batch() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("first batch: {e}")),
    };
    if doomed.counters().compactions == 0 {
        fail("the first commit must trigger a compaction at threshold 1");
    }
    let lost = match doomed.crash_mid_batch() {
        Ok(ids) => ids,
        Err(e) => fail(&format!("doomed batch: {e}")),
    };
    let (mut resumed, replayed) = match ServeHarness::with_journal(
        reference_set(),
        profiles::system1(),
        compacting_options,
        &crash_path,
        true,
    ) {
        Ok(pair) => pair,
        Err(e) => fail(&format!("resume from compacted journal: {e}")),
    };
    if !replayed.is_empty() {
        fail("a compacted journal has no committed batches to replay");
    }
    let reexecuted = match resumed.drain() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("resumed drain: {e}")),
    };
    for id in &lost {
        if !reexecuted.iter().any(|r| &r.id == id) {
            fail(&format!("lost job {id:?} was not re-executed after resume"));
        }
    }
    let mut union: Vec<(String, String)> = committed
        .iter()
        .chain(reexecuted.iter())
        .map(|r| (r.id.clone(), r.to_json_line()))
        .collect();
    union.sort();
    let mut clean: Vec<(String, String)> = responses
        .iter()
        .map(|r| (r.id.clone(), r.to_json_line()))
        .collect();
    clean.sort();
    if union != clean {
        fail("crash + resume from a compacted journal is not bit-identical");
    }
    println!(
        "  crash/resume OK: {} committed + {} re-executed == uninterrupted run",
        committed.len(),
        reexecuted.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    SmokeResult {
        simulated_seconds: hardened.core().simulated_seconds(),
        batches: c.batches,
        compactions,
        journal_control_bytes,
        journal_compacted_bytes,
    }
}

fn render_document(r: &SmokeResult) -> String {
    let mut doc = JsonObject::new();
    doc.str_field("schema", SCHEMA);
    doc.u64_field("version", VERSION);
    doc.u64_field("reference_len", REF_LEN as u64);
    doc.u64_field("jobs", (TENANTS.len() * JOBS_PER_TENANT + 1) as u64);
    doc.u64_field("batches", r.batches);
    doc.u64_field("compactions", r.compactions);
    // Gated: deterministic simulated time and journal footprints.
    doc.f64_field("simulated_seconds", r.simulated_seconds);
    doc.f64_field("journal_control_bytes", r.journal_control_bytes as f64);
    doc.f64_field("journal_compacted_bytes", r.journal_compacted_bytes as f64);
    // Informational: how much of the append-only journal compaction
    // reclaims on this workload.
    doc.f64_field(
        "compaction_ratio",
        r.journal_compacted_bytes as f64 / r.journal_control_bytes as f64,
    );
    let mut text = doc.finish();
    text.push('\n');
    text
}

/// The gated (deterministic) metric keys.
const GATED: [&str; 3] = [
    "simulated_seconds",
    "journal_control_bytes",
    "journal_compacted_bytes",
];

/// Validates the committed document; returns the gated metrics.
fn validate_document(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse_json(text).ok_or("not valid JSON")?;
    let fields = doc.as_obj().ok_or("top level is not an object")?;
    let schema = field(fields, "schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let version = field(fields, "version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"version\"")?;
    if version != VERSION {
        return Err(format!("schema version is {version}, expected {VERSION}"));
    }
    for required in ["jobs", "batches", "compactions"] {
        if field(fields, required)
            .and_then(JsonValue::as_u64)
            .is_none()
        {
            return Err(format!("missing integer field {required:?}"));
        }
    }
    if field(fields, "compaction_ratio")
        .and_then(JsonValue::as_f64)
        .is_none()
    {
        return Err("missing numeric field \"compaction_ratio\"".to_string());
    }
    let mut out = Vec::new();
    for key in GATED {
        let value = field(fields, key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.as_slice() {
        [] => None,
        [mode, path] if mode == "--write" || mode == "--check" => {
            Some((mode.as_str(), path.as_str()))
        }
        _ => {
            eprintln!("usage: serve_hardening [--write <path> | --check <path>]");
            std::process::exit(1);
        }
    };
    println!("Serve hardening ablation — EDF, quotas, journal compaction, crash/resume");
    println!(
        "pinned scale: {REF_LEN} bp reference, {} tenants × {JOBS_PER_TENANT} jobs × \
         {READS_PER_JOB} reads (+1 deadline job), edge budget {EDGE_BUDGET} reads",
        TENANTS.len()
    );
    let result = run_smoke();
    println!(
        "  {} batch(es) | simulated {:.6} s | {} compaction(s) | journal {} B → {} B",
        result.batches,
        result.simulated_seconds,
        result.compactions,
        result.journal_control_bytes,
        result.journal_compacted_bytes
    );
    println!("smoke OK");

    let Some((mode, path)) = mode else { return };
    if mode == "--write" {
        let text = render_document(&result);
        if let Err(err) = validate_document(&text) {
            fail(&format!(
                "freshly written document fails its own schema: {err}"
            ));
        }
        if std::fs::write(path, &text).is_err() {
            fail(&format!("cannot write {path}"));
        }
        println!("wrote hardening baseline to {path}");
        return;
    }

    // --check: schema-validate and gate the deterministic metrics.
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => fail(&format!("cannot read {path}: {err}")),
    };
    let committed = match validate_document(&committed) {
        Ok(metrics) => metrics,
        Err(err) => fail(&format!("{path} violates the hardening schema: {err}")),
    };
    println!("schema OK: {} gated metric(s)", committed.len());
    let fresh = [
        ("simulated_seconds", result.simulated_seconds),
        ("journal_control_bytes", result.journal_control_bytes as f64),
        (
            "journal_compacted_bytes",
            result.journal_compacted_bytes as f64,
        ),
    ];
    let mut regressed = false;
    for (key, committed_value) in &committed {
        let Some((_, fresh_value)) = fresh.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let limit = committed_value * REGRESSION_FACTOR;
        let verdict = if *fresh_value > limit {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {key:<24} committed {committed_value:.9} | fresh {fresh_value:.9} | \
             limit {limit:.9} [{verdict}]"
        );
    }
    if regressed {
        fail(&format!(
            "hardening regression beyond {REGRESSION_FACTOR}x; \
             refresh intentional changes with --write"
        ));
    }
    println!("hardening trajectory gate OK");
}
