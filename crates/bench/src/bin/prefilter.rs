//! Pre-alignment filter ablation: `--prefilter {none,shd,qgram,both}`
//! over the standard workload, plus the adversarial-corpus canary.
//!
//! Three checks, all enforced (nonzero exit on failure, so CI can run
//! this at tiny scale):
//!
//! 1. **Output invariance** — every mode reports exactly the mappings
//!    the unfiltered pipeline reports (the zero-false-negative contract,
//!    end to end).
//! 2. **Verification saving** — `both` reduces the total Myers
//!    `word_updates` of the run, as reported in `CellOutcome` metrics.
//! 3. **Rejection power** — the SHD filter rejects a nonzero fraction
//!    of the checked-in adversarial corpus (shared with the prefilter
//!    crate's regression tests); 0% means the filter silently became a
//!    no-op.

use std::sync::Arc;

use repute_bench::harness::{gold_standard, match_tolerance, run_cell, AccuracyMethod};
use repute_bench::workload::{s_min_for, Scale, Workload};
use repute_core::{ReputeConfig, ReputeMapper};
use repute_hetsim::profiles;
use repute_obs::MapMetrics;
use repute_prefilter::{PrefilterMode, ShdFilter};

const CORPUS: &str = include_str!("../../../prefilter/tests/corpus/adversarial.txt");

fn corpus_codes(s: &str) -> Vec<u8> {
    s.bytes()
        .map(|b| match b {
            b'A' => 0u8,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            other => panic!("bad corpus base {:?}", other as char),
        })
        .collect()
}

/// SHD rejection rate over the adversarial corpus's unverifiable
/// entries, as `(rejected, negatives)`.
fn corpus_shd_rejections() -> (u32, u32) {
    let shd = ShdFilter::new();
    let mut negatives = 0u32;
    let mut rejected = 0u32;
    for line in CORPUS
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let mut parts = line.split('\t');
        let _name = parts.next().expect("name");
        let delta: u32 = parts.next().expect("delta").parse().expect("delta int");
        let read = corpus_codes(parts.next().expect("read"));
        let window = corpus_codes(parts.next().expect("window"));
        if repute_align::verify(&read, &window, delta).is_some() {
            continue;
        }
        negatives += 1;
        if !shd.examine_codes(&read, &window, delta).accept {
            rejected += 1;
        }
    }
    (rejected, negatives)
}

fn main() {
    let scale = Scale::from_env();
    println!("Pre-alignment filter ablation — SHD + q-gram bins");
    println!("{}", scale.describe());
    println!("generating workload…");
    let w = Workload::generate(scale);
    let (n, delta) = (100usize, 5u32);
    let reads = w.read_seqs(n);
    let gold = gold_standard(&w.indexed, delta, &reads);
    let platform = profiles::system1_cpu_only();
    let shares = platform.single_device_share(0, reads.len());
    let base = ReputeConfig::new(delta, s_min_for(n, delta)).expect("valid config");

    println!("\n[1] mode sweep (n={n}, δ={delta}, {} reads)", reads.len());
    println!(
        "{:>8} | {:>12} | {:>12} | {:>10} | {:>10} | {:>9} | {:>10}",
        "mode", "word upd", "filter words", "tested", "rejected", "false acc", "sim T(s)"
    );
    println!("{}", "-".repeat(88));
    let mut failures = 0u32;
    let mut baseline: Option<(Vec<Vec<repute_mappers::Mapping>>, u64)> = None;
    let mut both_word_updates = None;
    for mode in PrefilterMode::ALL {
        let mapper = ReputeMapper::new(Arc::clone(&w.indexed), base.with_prefilter(mode));
        let outcome = run_cell(
            &mapper,
            &reads,
            &platform,
            &shares,
            &gold,
            AccuracyMethod::AnyBest,
            match_tolerance(delta),
        );
        let mut totals = MapMetrics::new();
        for m in &outcome.metrics {
            totals.merge(m);
        }
        println!(
            "{:>8} | {:>12} | {:>12} | {:>10} | {:>10} | {:>9} | {:>10.4}",
            mode.to_string(),
            totals.word_updates,
            totals.prefilter_words,
            totals.prefilter_tested,
            totals.prefilter_rejected,
            totals.prefilter_false_accepts,
            outcome.result.time_s,
        );
        outcome.export_if_requested(&format!("prefilter-{mode}"));
        match &baseline {
            None => baseline = Some((outcome.outputs.clone(), totals.word_updates)),
            Some((gold_outputs, _)) => {
                if &outcome.outputs != gold_outputs {
                    eprintln!("FAIL: mode {mode} changed mapping output (false negatives!)");
                    failures += 1;
                }
            }
        }
        if mode == PrefilterMode::Both {
            both_word_updates = Some(totals.word_updates);
        }
    }
    let none_words = baseline.expect("mode sweep ran").1;
    let both_words = both_word_updates.expect("mode sweep ran");
    println!("\n[2] verification saving: word_updates {none_words} (none) → {both_words} (both)");
    if both_words >= none_words {
        eprintln!("FAIL: --prefilter both did not reduce Myers word updates");
        failures += 1;
    } else {
        println!(
            "saved {:.1}% of Myers word updates",
            (none_words - both_words) as f64 / none_words as f64 * 100.0
        );
    }

    let (rejected, negatives) = corpus_shd_rejections();
    println!("\n[3] adversarial corpus: SHD rejected {rejected}/{negatives} unverifiable entries");
    if rejected == 0 {
        eprintln!("FAIL: SHD rejection rate on the adversarial corpus is 0 — filter is a no-op");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("\n{failures} check(s) failed");
        std::process::exit(1);
    }
    println!("\nall prefilter ablation checks passed");
}
