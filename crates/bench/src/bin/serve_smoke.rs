//! Serve smoke ablation: the mapping-as-a-service daemon must produce
//! byte-identical SAM to batch `repute map`, enforce its admission
//! limits, and account every job — plus the `BENCH_pr7.json` service
//! baseline and its CI regression gate.
//!
//! The smoke section (always runs, nonzero exit on any failure):
//!
//! 1. Spins up an in-process [`ServeHarness`], submits 9 jobs from 3
//!    tenants (mixed per-job δ overrides) **plus one oversized job that
//!    must be `REJECTED`**, and drains gracefully.
//! 2. For every completed job, runs batch `repute map` (the CLI library
//!    entry point, δ matched) over the same reads and **byte-compares**
//!    the daemon's per-job SAM — and the concatenation of all jobs —
//!    against the batch output.
//! 3. Checks the counters add up (accepted + rejected = submitted,
//!    completed = accepted) and that per-job latency percentiles and
//!    the queue-depth high-water mark are populated.
//!
//! Baseline modes (mirroring the trajectory gate):
//!
//! * `--write <path>` — write `BENCH_pr7.json`: deterministic simulated
//!   per-job latency percentiles and total simulated seconds (gated),
//!   plus the measured cold index-build versus cached index-load wall
//!   cost and its per-job amortization (informational — wall clock is
//!   machine-dependent and never gated).
//! * `--check <path>` — re-run the smoke workload, schema-validate the
//!   committed document, and fail (exit 1) when any gated simulated
//!   metric exceeds its committed value by more than 20%.

use std::time::Instant;

use repute_genome::fasta::{write_fasta, FastaRecord};
use repute_genome::fastq::{write_fastq, FastqRecord};
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::profiles;
use repute_mappers::multiref::ReferenceSet;
use repute_obs::json::{field, parse_json, JsonObject, JsonValue};
use repute_serve::{JobEnvelope, JobStatus, ServeHarness, ServeLimits, ServeOptions};

/// Schema identifier of the service baseline document.
const SCHEMA: &str = "repute-bench-serve";
/// Schema version; bump on any key change and regenerate the baseline.
const VERSION: u64 = 1;
/// Fresh gated metrics may exceed the committed baseline by at most
/// this factor before the check fails.
const REGRESSION_FACTOR: f64 = 1.2;

/// Pinned smoke scale (environment overrides are ignored so the
/// committed baseline stays comparable).
const REF_LEN: usize = 60_000;
/// Reads per normal job.
const READS_PER_JOB: usize = 4;
/// Jobs per tenant (3 tenants).
const JOBS_PER_TENANT: usize = 3;
/// Server-pinned per-job read limit; the oversized job exceeds it.
const MAX_READS_PER_JOB: usize = 16;

const TENANTS: [&str; 3] = ["acme", "lab", "edge"];

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn reference() -> DnaSeq {
    ReferenceBuilder::new(REF_LEN).seed(9401).build()
}

fn serve_options() -> ServeOptions {
    ServeOptions {
        limits: ServeLimits {
            max_reads_per_job: MAX_READS_PER_JOB,
            ..ServeLimits::default()
        },
        tenant_weights: vec![("acme".to_string(), 2.0), ("lab".to_string(), 1.0)],
        ..ServeOptions::default()
    }
}

/// The 9 normal jobs: 3 tenants × 3 jobs, alternating δ ∈ {3, 5}
/// overrides so the coalescer must split batches by configuration.
fn smoke_jobs(reference: &DnaSeq) -> Vec<JobEnvelope> {
    let mut jobs = Vec::new();
    for (t, tenant) in TENANTS.iter().enumerate() {
        for j in 0..JOBS_PER_TENANT {
            let reads: Vec<(String, DnaSeq)> = (0..READS_PER_JOB)
                .map(|i| {
                    let start = 1_000 + (t * JOBS_PER_TENANT + j) * 5_000 + i * 700;
                    (
                        format!("{tenant}-{j}-r{i}"),
                        reference.subseq(start..start + 100),
                    )
                })
                .collect();
            let delta = if (t + j) % 2 == 0 { 3 } else { 5 };
            jobs.push(
                JobEnvelope::new(format!("{tenant}-{j}"), reads)
                    .with_tenant(*tenant)
                    .with_delta(delta),
            );
        }
    }
    jobs
}

/// One read too many for the server's pinned limit.
fn oversized_job(reference: &DnaSeq) -> JobEnvelope {
    let reads: Vec<(String, DnaSeq)> = (0..MAX_READS_PER_JOB + 1)
        .map(|i| {
            let start = 2_000 + i * 300;
            (format!("big-r{i}"), reference.subseq(start..start + 100))
        })
        .collect();
    JobEnvelope::new("too-big", reads).with_tenant("acme")
}

struct SmokeResult {
    job_latency: (u64, f64, f64, f64),
    simulated_seconds: f64,
    batches: u64,
    queue_high_water: u64,
    cold_index_build_s: f64,
    cached_index_load_s: f64,
}

fn run_smoke() -> SmokeResult {
    let reference = reference();
    let dir = std::env::temp_dir().join("repute-serve-smoke");
    if std::fs::create_dir_all(&dir).is_err() {
        fail("cannot create the smoke scratch directory");
    }
    let ref_path = dir.join("reference.fa");
    let mut fa = Vec::new();
    if write_fasta(&mut fa, &[FastaRecord::new("chrS", reference.clone())], 70).is_err() {
        fail("cannot render the reference FASTA");
    }
    if std::fs::write(&ref_path, &fa).is_err() {
        fail("cannot write the reference FASTA");
    }

    // Cold index build versus cached load: what `--index-cache` (and a
    // long-lived daemon) amortizes away.
    let started = Instant::now();
    let set = ReferenceSet::build(vec![("chrS".to_string(), reference.clone())]);
    let cold_index_build_s = started.elapsed().as_secs_f64();
    let mut serialized = Vec::new();
    if set.write_to(&mut serialized).is_err() {
        fail("cannot serialize the reference set");
    }
    let started = Instant::now();
    if ReferenceSet::read_from(serialized.as_slice()).is_err() {
        fail("cannot reload the serialized reference set");
    }
    let cached_index_load_s = started.elapsed().as_secs_f64();

    let mut harness = match ServeHarness::new(set, profiles::system1(), serve_options()) {
        Ok(harness) => harness,
        Err(e) => fail(&format!("harness construction: {e}")),
    };

    // Submit: 9 normal jobs + 1 oversized (must be REJECTED inline).
    let jobs = smoke_jobs(&reference);
    let submitted = jobs.len() + 1;
    for job in &jobs {
        match harness.submit(job.clone()) {
            Ok(None) => {}
            Ok(Some(refusal)) => fail(&format!(
                "job {:?} refused: {:?}",
                refusal.id, refusal.reason
            )),
            Err(e) => fail(&format!("submit: {e}")),
        }
    }
    match harness.submit(oversized_job(&reference)) {
        Ok(Some(refusal)) if refusal.status == JobStatus::Rejected => {
            println!(
                "  oversized job rejected as specified: {}",
                refusal.reason.as_deref().unwrap_or("?")
            );
        }
        Ok(other) => fail(&format!("oversized job must be REJECTED, got {other:?}")),
        Err(e) => fail(&format!("oversized submit: {e}")),
    }

    // Graceful drain, then the byte-identity check per job.
    let responses = match harness.drain() {
        Ok(responses) => responses,
        Err(e) => fail(&format!("drain: {e}")),
    };
    if responses.len() != jobs.len() {
        fail(&format!(
            "{} responses for {} accepted jobs",
            responses.len(),
            jobs.len()
        ));
    }
    let mut daemon_sam = Vec::new();
    let mut batch_sam = Vec::new();
    for job in &jobs {
        let response = match responses.iter().find(|r| r.id == job.id) {
            Some(r) => r,
            None => fail(&format!("no response for job {:?}", job.id)),
        };
        if response.status != JobStatus::Ok {
            fail(&format!("job {:?} not OK: {:?}", job.id, response.reason));
        }
        let sam = response.sam.as_deref().unwrap_or("");
        // Batch `repute map` over exactly this job's reads.
        let fq_path = dir.join(format!("{}.fq", job.id));
        let out_path = dir.join(format!("{}.sam", job.id));
        let records: Vec<FastqRecord> = job
            .reads
            .iter()
            .map(|(id, seq)| FastqRecord::with_uniform_quality(id.clone(), seq.clone(), 40))
            .collect();
        let mut fq = Vec::new();
        if write_fastq(&mut fq, &records).is_err() || std::fs::write(&fq_path, &fq).is_err() {
            fail("cannot write a job FASTQ");
        }
        let opts = repute_cli::MapOptions {
            reference: ref_path.to_string_lossy().into_owned(),
            reads: fq_path.to_string_lossy().into_owned(),
            delta: job.delta.unwrap_or(5),
            output: Some(out_path.to_string_lossy().into_owned()),
            ..repute_cli::MapOptions::default()
        };
        if let Err(e) = repute_cli::run_map(&opts) {
            fail(&format!("batch map for job {:?}: {e}", job.id));
        }
        let expected = match std::fs::read_to_string(&out_path) {
            Ok(text) => text,
            Err(_) => fail("cannot read the batch SAM"),
        };
        if sam != expected {
            fail(&format!(
                "job {:?}: daemon SAM differs from batch `repute map` \
                 ({} vs {} bytes)",
                job.id,
                sam.len(),
                expected.len()
            ));
        }
        daemon_sam.extend_from_slice(sam.as_bytes());
        batch_sam.extend_from_slice(expected.as_bytes());
    }
    if daemon_sam != batch_sam {
        fail("concatenated daemon SAM differs from concatenated batch SAM");
    }
    println!(
        "  byte-identity OK: {} jobs, {} SAM bytes each side",
        jobs.len(),
        daemon_sam.len()
    );

    // Accounting: every submission lands in exactly one counter bucket.
    let c = harness.counters();
    if c.accepted + c.rejected + c.retry_later != submitted as u64 {
        fail(&format!(
            "counters leak submissions: accepted {} + rejected {} + \
             retry-later {} != {submitted}",
            c.accepted, c.rejected, c.retry_later
        ));
    }
    if c.rejected != 1 || c.completed != jobs.len() as u64 {
        fail(&format!(
            "expected 1 rejection and {} completions, got {} and {}",
            jobs.len(),
            c.rejected,
            c.completed
        ));
    }
    let core = harness.core();
    let job_latency = core.latency_percentiles();
    if job_latency.0 != jobs.len() as u64 {
        fail("latency sample count != completed jobs");
    }
    if core.queue_depth() != 0 || core.queue_depth_high_water() < jobs.len() as u64 {
        fail("queue-depth gauge did not track the backlog");
    }
    std::fs::remove_dir_all(&dir).ok();
    SmokeResult {
        job_latency,
        simulated_seconds: core.simulated_seconds(),
        batches: c.batches,
        queue_high_water: core.queue_depth_high_water(),
        cold_index_build_s,
        cached_index_load_s,
    }
}

fn render_document(r: &SmokeResult) -> String {
    let jobs = (TENANTS.len() * JOBS_PER_TENANT) as u64;
    let mut doc = JsonObject::new();
    doc.str_field("schema", SCHEMA);
    doc.u64_field("version", VERSION);
    doc.u64_field("reference_len", REF_LEN as u64);
    doc.u64_field("jobs", jobs);
    doc.u64_field("batches", r.batches);
    doc.u64_field("queue_depth_high_water", r.queue_high_water);
    // Gated: deterministic simulated service metrics.
    doc.f64_field("simulated_seconds", r.simulated_seconds);
    doc.f64_field("job_p50_s", r.job_latency.1);
    doc.f64_field("job_p90_s", r.job_latency.2);
    doc.f64_field("job_p99_s", r.job_latency.3);
    // Informational: wall-clock index costs (machine-dependent).
    doc.f64_field("cold_index_build_s", r.cold_index_build_s);
    doc.f64_field("cached_index_load_s", r.cached_index_load_s);
    doc.f64_field(
        "amortized_index_s_per_job",
        r.cold_index_build_s / jobs as f64,
    );
    let mut text = doc.finish();
    text.push('\n');
    text
}

/// The gated (deterministic) metric keys.
const GATED: [&str; 4] = ["simulated_seconds", "job_p50_s", "job_p90_s", "job_p99_s"];

/// Validates the committed document; returns the gated metrics.
fn validate_document(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse_json(text).ok_or("not valid JSON")?;
    let fields = doc.as_obj().ok_or("top level is not an object")?;
    let schema = field(fields, "schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let version = field(fields, "version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field \"version\"")?;
    if version != VERSION {
        return Err(format!("schema version is {version}, expected {VERSION}"));
    }
    for required in ["jobs", "batches", "queue_depth_high_water"] {
        if field(fields, required)
            .and_then(JsonValue::as_u64)
            .is_none()
        {
            return Err(format!("missing integer field {required:?}"));
        }
    }
    for required in [
        "cold_index_build_s",
        "cached_index_load_s",
        "amortized_index_s_per_job",
    ] {
        if field(fields, required)
            .and_then(JsonValue::as_f64)
            .is_none()
        {
            return Err(format!("missing numeric field {required:?}"));
        }
    }
    let mut out = Vec::new();
    for key in GATED {
        let value = field(fields, key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.as_slice() {
        [] => None,
        [mode, path] if mode == "--write" || mode == "--check" => {
            Some((mode.as_str(), path.as_str()))
        }
        _ => {
            eprintln!("usage: serve_smoke [--write <path> | --check <path>]");
            std::process::exit(1);
        }
    };
    println!("Serve smoke ablation — daemon vs batch byte-identity, admission, accounting");
    println!(
        "pinned scale: {REF_LEN} bp reference, {} tenants × {JOBS_PER_TENANT} jobs × \
         {READS_PER_JOB} reads (+1 oversized)",
        TENANTS.len()
    );
    let result = run_smoke();
    println!(
        "  {} batch(es) | simulated {:.6} s | queue high-water {}",
        result.batches, result.simulated_seconds, result.queue_high_water
    );
    println!(
        "  job latency: n={} p50 {:.6} p90 {:.6} p99 {:.6} (simulated s)",
        result.job_latency.0, result.job_latency.1, result.job_latency.2, result.job_latency.3
    );
    println!(
        "  index cost: cold build {:.4} s, cached load {:.4} s, amortized {:.5} s/job",
        result.cold_index_build_s,
        result.cached_index_load_s,
        result.cold_index_build_s / (TENANTS.len() * JOBS_PER_TENANT) as f64
    );
    println!("smoke OK");

    let Some((mode, path)) = mode else { return };
    if mode == "--write" {
        let text = render_document(&result);
        if let Err(err) = validate_document(&text) {
            fail(&format!(
                "freshly written document fails its own schema: {err}"
            ));
        }
        if std::fs::write(path, &text).is_err() {
            fail(&format!("cannot write {path}"));
        }
        println!("wrote service baseline to {path}");
        return;
    }

    // --check: schema-validate and gate the deterministic metrics.
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => fail(&format!("cannot read {path}: {err}")),
    };
    let committed = match validate_document(&committed) {
        Ok(metrics) => metrics,
        Err(err) => fail(&format!("{path} violates the service schema: {err}")),
    };
    println!("schema OK: {} gated metric(s)", committed.len());
    let fresh = [
        ("simulated_seconds", result.simulated_seconds),
        ("job_p50_s", result.job_latency.1),
        ("job_p90_s", result.job_latency.2),
        ("job_p99_s", result.job_latency.3),
    ];
    let mut regressed = false;
    for (key, committed_value) in &committed {
        let Some((_, fresh_value)) = fresh.iter().find(|(k, _)| k == key) else {
            continue;
        };
        let limit = committed_value * REGRESSION_FACTOR;
        let verdict = if *fresh_value > limit {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {key:<20} committed {committed_value:.9} | fresh {fresh_value:.9} | \
             limit {limit:.9} [{verdict}]"
        );
    }
    if regressed {
        fail(&format!(
            "service latency regression beyond {REGRESSION_FACTOR}x; \
             refresh intentional changes with --write"
        ));
    }
    println!("service trajectory gate OK");
}
