//! Fixed-width bit-mask arithmetic over `&mut [u64]` scratch words.
//!
//! The SHD filter manipulates masks of one bit per read base. Reads are
//! a few hundred bases, so masks span a handful of words; every helper
//! here is a straight-line loop the compiler unrolls — no allocation,
//! no per-bit work. Bit `i` of a mask lives in word `i / 64`, position
//! `i % 64` (LSB-first, matching the Myers verifier's convention).

/// Shifts `mask` left by one bit (towards higher read positions),
/// writing into `out`. Bit 0 of the result is `carry_in` (the value
/// conceptually at position −1).
pub fn shl1(mask: &[u64], out: &mut [u64], carry_in: bool) {
    debug_assert_eq!(mask.len(), out.len());
    let mut carry = u64::from(carry_in);
    for (o, &w) in out.iter_mut().zip(mask) {
        *o = (w << 1) | carry;
        carry = w >> 63;
    }
}

/// Shifts `mask` right by one bit (towards lower read positions),
/// writing into `out`. The top bit of the result is `carry_in` (the
/// value conceptually at position `len`).
pub fn shr1(mask: &[u64], out: &mut [u64], carry_in: bool) {
    debug_assert_eq!(mask.len(), out.len());
    let mut carry = u64::from(carry_in) << 63;
    for (o, &w) in out.iter_mut().zip(mask).rev() {
        *o = (w >> 1) | carry;
        carry = w << 63;
    }
}

/// Zeroes every bit at position `len` and above (the padding bits of
/// the last word).
pub fn clear_tail(mask: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = mask.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Population count across all words.
pub fn popcount(mask: &[u64]) -> u32 {
    mask.iter().map(|w| w.count_ones()).sum()
}

/// Number of maximal runs of consecutive 1-bits in the first `len` bits
/// (a run starts wherever a 1 has a 0 — or the mask boundary — below it).
pub fn count_runs(mask: &[u64], len: usize) -> u32 {
    let mut runs = 0u32;
    let mut prev_top = 0u64; // bit `w*64 - 1`, seen from word w
    for (w, &word) in mask.iter().enumerate() {
        if w * 64 >= len {
            break;
        }
        let mut m = word;
        let tail = len - w * 64;
        if tail < 64 {
            m &= (1u64 << tail) - 1;
        }
        // Run starts: 1-bits whose predecessor bit is 0.
        let starts = m & !((m << 1) | prev_top);
        runs += starts.count_ones();
        prev_top = word >> 63;
    }
    runs
}

/// Sound lower bound on the edits a ≤ δ alignment needs to explain the
/// surviving 1-bits of an amended-AND mask: each maximal 1-run of
/// length `ℓ` contributes `max(1, ⌈(ℓ−2)/3⌉)`.
///
/// Why: every surviving 1 is an edit position or part of an amended
/// match segment of ≤ 2 bases (longer segments survive amendment as
/// 0s). An edit therefore extends a run by at most 3 bits — itself
/// plus one adjacent short segment — so `ℓ ≤ 2 + 3e`; and a run with
/// no edit at all can only be a lone boundary segment of ≤ 2 bits,
/// which still claims the adjacent (read-position-free) deletion
/// uniquely, hence the floor of 1. Callers must special-case reads
/// shorter than the amendment cutoff, where a 0-edit whole-read run
/// can be amended.
pub fn streak_edit_bound(mask: &[u64], len: usize) -> u64 {
    let mut bound = 0u64;
    let mut run = 0usize;
    for i in 0..len {
        if mask[i / 64] >> (i % 64) & 1 != 0 {
            run += 1;
        } else if run > 0 {
            bound += run_cost(run);
            run = 0;
        }
    }
    if run > 0 {
        bound += run_cost(run);
    }
    bound
}

fn run_cost(len: usize) -> u64 {
    if len <= 2 {
        1
    } else {
        ((len - 2) as u64).div_ceil(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_to_words(bits: &[u8]) -> Vec<u64> {
        let mut words = vec![0u64; bits.len().div_ceil(64).max(1)];
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    #[test]
    fn shl1_carries_across_words() {
        let mask = vec![1u64 << 63, 0];
        let mut out = vec![0u64; 2];
        shl1(&mask, &mut out, true);
        assert_eq!(out, vec![1, 1]);
    }

    #[test]
    fn shr1_carries_across_words() {
        let mask = vec![0u64, 1];
        let mut out = vec![0u64; 2];
        shr1(&mask, &mut out, true);
        assert_eq!(out, vec![1u64 << 63, 1u64 << 63]);
    }

    #[test]
    fn clear_tail_zeroes_padding_only() {
        let mut mask = vec![u64::MAX, u64::MAX];
        clear_tail(&mut mask, 70);
        assert_eq!(mask, vec![u64::MAX, (1u64 << 6) - 1]);
        let mut exact = vec![u64::MAX];
        clear_tail(&mut exact, 64); // multiple of 64: nothing to clear
        assert_eq!(exact, vec![u64::MAX]);
    }

    #[test]
    fn count_runs_counts_maximal_streaks() {
        // 1101110001 → runs {0,1}, {3,4,5}, {9}
        let words = bits_to_words(&[1, 1, 0, 1, 1, 1, 0, 0, 0, 1]);
        assert_eq!(count_runs(&words, 10), 3);
        assert_eq!(popcount(&words), 6);
    }

    #[test]
    fn count_runs_spans_word_boundary() {
        // A single run crossing bits 62..=65 must count once.
        let words = bits_to_words(
            &(0..70)
                .map(|i| u8::from((62..=65).contains(&i)))
                .collect::<Vec<_>>(),
        );
        assert_eq!(count_runs(&words, 70), 1);
    }

    #[test]
    fn streak_edit_bound_charges_per_run() {
        // Runs: {0,1} (len 2 → 1), {5..=12} (len 8 → 2)
        let bits: Vec<u8> = (0..20)
            .map(|i| u8::from(i < 2 || (5..=12).contains(&i)))
            .collect();
        let words = bits_to_words(&bits);
        assert_eq!(streak_edit_bound(&words, 20), 3);
        assert_eq!(streak_edit_bound(&words, 1), 1);
        assert_eq!(streak_edit_bound(&[0u64], 20), 0);
        // len-5 run → 1 edit, len-6 → 2: the 2+3e breakpoints.
        let five = bits_to_words(&[1, 1, 1, 1, 1, 0]);
        assert_eq!(streak_edit_bound(&five, 6), 1);
        let six = bits_to_words(&[1, 1, 1, 1, 1, 1, 0]);
        assert_eq!(streak_edit_bound(&six, 7), 2);
    }

    #[test]
    fn count_runs_respects_len() {
        let words = vec![u64::MAX; 2];
        assert_eq!(count_runs(&words, 128), 1);
        assert_eq!(count_runs(&words, 10), 1);
        assert_eq!(count_runs(&words, 0), 0);
    }
}
