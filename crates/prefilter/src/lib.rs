//! Bit-parallel pre-alignment filtering for the REPUTE pipeline.
//!
//! Myers bit-vector verification dominates per-read work: every merged
//! candidate window costs `O(window · ⌈read/64⌉)` word updates whether
//! or not it contains a real mapping. The accelerator literature fixes
//! this with *pre-alignment filters* — cheap checks that reject most
//! false candidates before any dynamic programming, while never
//! rejecting a true one:
//!
//! * **GateKeeper** (Alser et al.) computes Shifted Hamming Distance
//!   masks in FPGA logic — see [`shd::ShdFilter`] for the portable
//!   bit-parallel reformulation used here.
//! * **GRIM-Filter** (Kim et al.) keeps per-region q-gram existence
//!   bitvectors in 3D-stacked memory — see [`qgram::QgramBins`] /
//!   [`qgram::QgramFilter`].
//!
//! Both are expressed behind one [`PreFilter`] trait so the
//! verification engine can run none, either, or [`Chain`] both. The
//! load-bearing contract is **zero false negatives**: a filter may pass
//! junk (cost: one wasted verification, which the caller counts as a
//! *false accept*), but any window the verifier would accept within δ
//! must survive filtration — otherwise filtration changes mapping
//! output, not just mapping cost. Each filter documents its safety
//! argument, and `tests/` checks both against `repute_align::verify`
//! as oracle.
//!
//! Costs are reported in the platform simulator's currency: one unit ≈
//! one 64-lane bitwise word operation, the same unit as a Myers word
//! update, so saved and spent work subtract meaningfully in device
//! timelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod qgram;
pub mod shd;

pub use qgram::{QgramBins, QgramFilter};
pub use shd::ShdFilter;

use std::fmt;
use std::str::FromStr;

/// One candidate handed to a filter: a read (2-bit codes) against the
/// reference window verification would inspect for one merged diagonal.
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    /// The read's 2-bit codes (already strand-oriented).
    pub read: &'a [u8],
    /// The reference window verification would align against — for the
    /// standard engine, `read.len() + 2δ` bases (clamped at reference
    /// edges).
    pub window: &'a [u8],
    /// Absolute reference position of `window[0]`, for filters indexed
    /// by reference coordinate (q-gram bins).
    pub window_start: usize,
    /// The error budget δ the verifier will be run with.
    pub delta: u32,
}

/// A filter's answer for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// `true` to forward the candidate to verification.
    pub accept: bool,
    /// Work spent deciding, in word-operation units (the Myers
    /// word-update currency of `MapOutput.work`).
    pub cost_words: u64,
}

impl Verdict {
    /// An accepting verdict with the given cost.
    pub fn accept(cost_words: u64) -> Verdict {
        Verdict {
            accept: true,
            cost_words,
        }
    }

    /// A rejecting verdict with the given cost.
    pub fn reject(cost_words: u64) -> Verdict {
        Verdict {
            accept: false,
            cost_words,
        }
    }
}

/// A pre-alignment filter: decides, per candidate window, whether the
/// Myers verifier needs to run at all.
///
/// # Contract
///
/// Implementations MUST be sound — zero false negatives: if
/// `repute_align::verify(read, window, delta)` would return `Some`,
/// `examine` must accept. False positives are allowed (they cost one
/// verification and are accounted as false accepts by the engine).
/// `Debug + Sync` are required so engines stay derivable and shareable
/// across simulator worker threads.
pub trait PreFilter: fmt::Debug + Sync {
    /// Examines one candidate.
    fn examine(&self, candidate: &Candidate<'_>) -> Verdict;

    /// Examines a contiguous batch of candidates (all windows of one
    /// read, in the engine's structure-of-arrays candidate buffer),
    /// pushing one verdict per candidate onto `verdicts` in input
    /// order.
    ///
    /// The default delegates to [`PreFilter::examine`] per candidate,
    /// so every filter keeps identical verdicts and cost accounting on
    /// both entry points; filters with batch-amortisable setup may
    /// override.
    fn examine_batch(&self, candidates: &[Candidate<'_>], verdicts: &mut Vec<Verdict>) {
        for candidate in candidates {
            verdicts.push(self.examine(candidate));
        }
    }

    /// Short display name for reports (e.g. `"shd"`).
    fn name(&self) -> &'static str;
}

/// Applies filters in order, rejecting on the first rejection
/// (short-circuit) and summing costs. Sound whenever every part is:
/// a true candidate survives each filter individually, hence the chain.
#[derive(Debug, Default)]
pub struct Chain<'a> {
    parts: Vec<&'a dyn PreFilter>,
}

impl<'a> Chain<'a> {
    /// Builds a chain over `parts`, applied in order — put the cheapest
    /// filter first.
    pub fn new(parts: Vec<&'a dyn PreFilter>) -> Chain<'a> {
        Chain { parts }
    }

    /// Number of chained filters.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` when the chain has no filters (accepts everything at
    /// zero cost).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl PreFilter for Chain<'_> {
    fn examine(&self, candidate: &Candidate<'_>) -> Verdict {
        let mut cost = 0u64;
        for part in &self.parts {
            let verdict = part.examine(candidate);
            cost += verdict.cost_words;
            if !verdict.accept {
                return Verdict::reject(cost);
            }
        }
        Verdict::accept(cost)
    }

    fn name(&self) -> &'static str {
        "chain"
    }
}

/// Which pre-alignment filters to run, as selected by `--prefilter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefilterMode {
    /// No filtration: every merged candidate is verified (the seed
    /// pipeline's behaviour, and the default).
    #[default]
    None,
    /// Shifted Hamming Distance only.
    Shd,
    /// Q-gram bin existence only.
    Qgram,
    /// Q-gram bins first (cheaper), then SHD on survivors.
    Both,
}

impl PrefilterMode {
    /// All modes, in ablation-sweep order.
    pub const ALL: [PrefilterMode; 4] = [
        PrefilterMode::None,
        PrefilterMode::Shd,
        PrefilterMode::Qgram,
        PrefilterMode::Both,
    ];

    /// `true` when the mode runs the SHD filter.
    pub fn uses_shd(self) -> bool {
        matches!(self, PrefilterMode::Shd | PrefilterMode::Both)
    }

    /// `true` when the mode runs the q-gram bin filter.
    pub fn uses_qgram(self) -> bool {
        matches!(self, PrefilterMode::Qgram | PrefilterMode::Both)
    }
}

impl fmt::Display for PrefilterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrefilterMode::None => "none",
            PrefilterMode::Shd => "shd",
            PrefilterMode::Qgram => "qgram",
            PrefilterMode::Both => "both",
        })
    }
}

/// Error parsing a [`PrefilterMode`] from a CLI flag value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModeError(String);

impl fmt::Display for ParseModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown prefilter mode {:?} (expected none, shd, qgram or both)",
            self.0
        )
    }
}

impl std::error::Error for ParseModeError {}

impl FromStr for PrefilterMode {
    type Err = ParseModeError;

    fn from_str(s: &str) -> Result<PrefilterMode, ParseModeError> {
        match s {
            "none" => Ok(PrefilterMode::None),
            "shd" => Ok(PrefilterMode::Shd),
            "qgram" => Ok(PrefilterMode::Qgram),
            "both" => Ok(PrefilterMode::Both),
            other => Err(ParseModeError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Fixed(bool, u64);

    impl PreFilter for Fixed {
        fn examine(&self, _c: &Candidate<'_>) -> Verdict {
            Verdict {
                accept: self.0,
                cost_words: self.1,
            }
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn candidate<'a>(read: &'a [u8], window: &'a [u8]) -> Candidate<'a> {
        Candidate {
            read,
            window,
            window_start: 0,
            delta: 3,
        }
    }

    #[test]
    fn chain_sums_costs_and_short_circuits() {
        let yes = Fixed(true, 5);
        let no = Fixed(false, 7);
        let unreachable = Fixed(true, 1000);
        let c = candidate(&[0, 1], &[0, 1]);

        let chain = Chain::new(vec![&yes, &no, &unreachable]);
        assert_eq!(chain.examine(&c), Verdict::reject(12));

        let chain = Chain::new(vec![&yes, &yes]);
        assert_eq!(chain.examine(&c), Verdict::accept(10));

        let empty = Chain::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.examine(&c), Verdict::accept(0));
    }

    #[test]
    fn examine_batch_default_matches_per_candidate() {
        let yes = Fixed(true, 5);
        let no = Fixed(false, 7);
        let chain = Chain::new(vec![&yes, &no]);
        let c = candidate(&[0, 1], &[0, 1]);
        let batch = [c, c, c];
        let mut verdicts = Vec::new();
        chain.examine_batch(&batch, &mut verdicts);
        assert_eq!(verdicts.len(), 3);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, chain.examine(&batch[i]));
        }
    }

    #[test]
    fn mode_round_trips_through_strings() {
        for mode in PrefilterMode::ALL {
            assert_eq!(mode.to_string().parse::<PrefilterMode>(), Ok(mode));
        }
        assert!("fast".parse::<PrefilterMode>().is_err());
        assert!(PrefilterMode::Both.uses_shd() && PrefilterMode::Both.uses_qgram());
        assert!(!PrefilterMode::None.uses_shd() && !PrefilterMode::None.uses_qgram());
        assert_eq!(PrefilterMode::default(), PrefilterMode::None);
    }
}
