//! Shifted Hamming Distance pre-alignment filter (GateKeeper-style).
//!
//! GateKeeper (Alser et al.) rejects candidate windows in FPGA logic by
//! building Hamming masks of the read against the window at every
//! diagonal shift a ≤ δ-edit alignment could use, *amending* short
//! match runs (which are overwhelmingly coincidental), ANDing the
//! masks, and thresholding what survives. This module is the portable
//! bit-parallel reformulation: masks are `u64` words, one bit per read
//! base (1 = mismatch), and all mask arithmetic runs through
//! [`crate::bits`].
//!
//! # Deviations from the hardware formulation — and why
//!
//! The issue sketch (and GateKeeper itself, which assumes an
//! equal-length window) prescribes **2δ+1** shifts and rejection when
//! the surviving **mismatch count** exceeds δ. Both parts are unsound
//! against this pipeline's verifier and are adjusted here:
//!
//! * **Shift range.** `VerifyEngine` windows carry δ bases of slack on
//!   *both* sides (`window = read + 2δ`), and `repute_align::verify` is
//!   semi-global over that window. A read base `i` may therefore align
//!   at window offset `i + s` for any `s ∈ [−δ, wlen − m + δ]` — that
//!   is **4δ+1** shifts for the standard window, collapsing to
//!   GateKeeper's 2δ+1 exactly when `wlen == m`. Using fewer shifts
//!   rejects genuinely verifiable alignments near the window edges.
//! * **Acceptance rule.** Counting surviving 1s and comparing against δ
//!   admits false negatives: δ clustered substitutions spaced two apart
//!   leave length-1 match runs between them, amendment flips those to
//!   mismatches, and the count lands near 2δ > δ. Instead we convert
//!   the surviving 1-bits into a provable *lower bound on the edits any
//!   alignment must spend* and reject only when that bound exceeds δ.
//!   In a true ≤ δ-edit alignment every surviving 1 is an edit position
//!   (substitution/insertion) or part of an amended match segment of at
//!   most 2 bases (longer segments survive amendment); one edit can
//!   therefore extend a maximal 1-streak by at most 3 bits, so a streak
//!   of length ℓ witnesses `max(1, ⌈(ℓ−2)/3⌉)` edits, streaks claim
//!   disjoint edits (two segments split only by a deletion stay
//!   adjacent, hence in one streak), and the per-streak sum
//!   ([`crate::bits::streak_edit_bound`]) never exceeds the alignment's
//!   true edit count. The randomized and corpus tests in `tests/`
//!   check this against the verifier oracle.
//!
//! A cheap sound shortcut runs first: if the surviving mismatch
//! *popcount* is already ≤ δ the candidate is accepted without the
//! streak scan (the bound charges at most 1 per surviving bit).

use crate::bits::{clear_tail, popcount, shl1, shr1, streak_edit_bound};
use crate::{Candidate, PreFilter, Verdict};

/// Mask words kept on the stack: reads up to `8 × 64 = 512` bases (far
/// beyond the paper's 100–150bp) run with zero heap allocation.
const STACK_WORDS: usize = 8;

/// The SHD filter. Stateless aside from its amendment knob; build once
/// and share freely across threads.
#[derive(Debug, Clone, Copy)]
pub struct ShdFilter {
    amend_below: usize,
}

impl Default for ShdFilter {
    fn default() -> ShdFilter {
        ShdFilter::new()
    }
}

impl ShdFilter {
    /// Match runs shorter than this many bases are amended to
    /// mismatches before the AND — GateKeeper's "short streak" cutoff.
    /// Runs of 1–2 matching bases between random sequences occur with
    /// probability ~1/4 per base and carry almost no alignment signal.
    pub const DEFAULT_AMEND_BELOW: usize = 3;

    /// Creates the filter with the default amendment cutoff.
    pub fn new() -> ShdFilter {
        ShdFilter {
            amend_below: Self::DEFAULT_AMEND_BELOW,
        }
    }

    /// Overrides the amendment cutoff: match runs shorter than `below`
    /// bases are treated as mismatches. `below ≤ 1` disables amendment
    /// (maximum safety margin, minimal rejection power).
    ///
    /// # Panics
    ///
    /// Panics if `below == 0` (a zero-length run cannot exist; use 1 to
    /// disable amendment).
    pub fn with_amend_below(mut self, below: usize) -> ShdFilter {
        assert!(below > 0, "amendment cutoff must be at least 1");
        self.amend_below = below;
        self
    }

    /// Examines raw code slices (the [`PreFilter`] impl delegates
    /// here). `window` is the exact slice the verifier would align
    /// against; `delta` its error budget.
    pub fn examine_codes(&self, read: &[u8], window: &[u8], delta: u32) -> Verdict {
        let m = read.len();
        let wlen = window.len();
        if m < self.amend_below {
            // Degenerate: amendment could erase a 0-edit whole-read
            // match run, so the streak bound is not sound here. Reads
            // this short carry no signal anyway — accept.
            return Verdict::accept(u64::from(m > 0));
        }
        // A semi-global alignment consumes the whole read, so a read
        // overhanging the window by more than δ needs > δ deletions:
        // provably unverifiable, reject at unit cost.
        if m > wlen + delta as usize {
            return Verdict::reject(1);
        }
        let words = m.div_ceil(64);
        let pad = (words * 64 - m) as u32;
        let delta_i = delta as isize;
        // Window offsets a read base can occupy across all ≤ δ-edit
        // semi-global alignments (see module docs): [−δ, wlen − m + δ].
        let s_hi = (wlen + delta as usize - m) as isize;

        // Six mask-width working buffers, stack-backed for realistic
        // read lengths (one heap allocation for the whole call beyond
        // STACK_WORDS). The inner loop below is allocation-free either
        // way — amendment ping-pongs between the two scratch buffers
        // instead of copying the walker out per shift.
        let mut stack = [[0u64; STACK_WORDS]; 6];
        let mut heap: Vec<u64> = Vec::new();
        let [acc, mask, run_end, scratch_a, scratch_b, keep] = if words <= STACK_WORDS {
            let [a, b, c, d, e, f] = &mut stack;
            [
                &mut a[..words],
                &mut b[..words],
                &mut c[..words],
                &mut d[..words],
                &mut e[..words],
                &mut f[..words],
            ]
        } else {
            heap.resize(6 * words, 0u64);
            let (a, rest) = heap.split_at_mut(words);
            let (b, rest) = rest.split_at_mut(words);
            let (c, rest) = rest.split_at_mut(words);
            let (d, rest) = rest.split_at_mut(words);
            let (e, f) = rest.split_at_mut(words);
            [a, b, c, d, e, f]
        };
        acc.fill(u64::MAX);
        let mut masks_built = 0u64;
        let mut accepted_early = false;
        for s in -delta_i..=s_hi {
            build_shift_mask(read, window, s, mask);
            amend_short_runs(mask, self.amend_below, run_end, scratch_a, scratch_b, keep);
            for (a, &w) in acc.iter_mut().zip(mask.iter()) {
                *a &= w;
            }
            masks_built += 1;
            // Sound early accept: popcount only ever shrinks under AND.
            if popcount(acc) - pad <= delta {
                accepted_early = true;
                break;
            }
        }
        // One pipelined pass (XOR-build, amend, AND, count) per mask
        // word is charged one unit of the Myers word-update currency —
        // both are short fixed bundles of 64-lane bitwise ops — plus
        // one final counting pass.
        let cost = (masks_built + 1) * words as u64;
        if accepted_early {
            return Verdict::accept(cost);
        }
        clear_tail(acc, m);
        if streak_edit_bound(acc, m) <= u64::from(delta) {
            Verdict::accept(cost)
        } else {
            Verdict::reject(cost)
        }
    }
}

/// Builds the Hamming mask for diagonal shift `s`: bit `i` is set when
/// `read[i]` mismatches `window[i + s]` or falls outside the window.
/// Padding bits past the read length are set (mismatch) so they never
/// masquerade as match runs.
fn build_shift_mask(read: &[u8], window: &[u8], s: isize, mask: &mut [u64]) {
    let m = read.len();
    mask.fill(0);
    for (i, &base) in read.iter().enumerate() {
        let j = i as isize + s;
        let mismatch = j < 0 || j >= window.len() as isize || window[j as usize] != base;
        if mismatch {
            mask[i / 64] |= 1 << (i % 64);
        }
    }
    let tail = m % 64;
    if tail != 0 {
        if let Some(last) = mask.last_mut() {
            *last |= !((1u64 << tail) - 1);
        }
    }
}

/// Flips 0-runs (match runs) shorter than `below` bits to 1s, in
/// place. `below == 1` is a no-op. The classic two-shift trick,
/// generalised: a 0 survives only if it belongs to a run of ≥ `below`
/// consecutive 0s.
///
/// The successive shifts of the walker ping-pong between `scratch_a`
/// and `scratch_b` (shift reads one, writes the other, swap), so the
/// hot loop performs no allocation and no full-mask copies.
fn amend_short_runs<'w>(
    mask: &mut [u64],
    below: usize,
    z: &mut [u64],
    scratch_a: &'w mut [u64],
    scratch_b: &'w mut [u64],
    keep: &mut [u64],
) {
    if below <= 1 {
        return;
    }
    // z = match positions (out-of-read padding is already a mismatch).
    for (zw, &w) in z.iter_mut().zip(mask.iter()) {
        *zw = !w;
    }
    // keep starts as "ends of runs ≥ below": AND of z shifted up by
    // 0..below. `cur` walks the successive shifts of z.
    keep.copy_from_slice(z);
    let (mut cur, mut next) = (scratch_a, scratch_b);
    cur.copy_from_slice(z);
    for _ in 1..below {
        shl1(cur, next, false);
        for (k, &sh) in keep.iter_mut().zip(next.iter()) {
            *k &= sh;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // Smear run ends back over their `below`-wide tails so `keep`
    // covers every position of every qualifying run.
    cur.copy_from_slice(keep);
    for _ in 1..below {
        shr1(cur, next, false);
        for (k, &sh) in keep.iter_mut().zip(next.iter()) {
            *k |= sh;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // Matches not kept become mismatches.
    for (m_w, (&zw, &k)) in mask.iter_mut().zip(z.iter().zip(keep.iter())) {
        *m_w |= zw & !k;
    }
}

impl PreFilter for ShdFilter {
    fn examine(&self, candidate: &Candidate<'_>) -> Verdict {
        self.examine_codes(candidate.read, candidate.window, candidate.delta)
    }

    fn name(&self) -> &'static str {
        "shd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(read: &[u8], window: &[u8], delta: u32) -> Verdict {
        ShdFilter::new().examine_codes(read, window, delta)
    }

    #[test]
    fn exact_match_is_accepted() {
        let window: Vec<u8> = (0..110)
            .map(|i| (i % 4) as u8 ^ (i / 7 % 4) as u8)
            .collect();
        let read = window[5..105].to_vec();
        let v = verdict(&read, &window, 5);
        assert!(v.accept);
        assert!(v.cost_words > 0);
    }

    #[test]
    fn shifted_exact_match_is_accepted_at_every_offset() {
        // The read sits at every possible offset of the padded window —
        // all 4δ+1 diagonals must be covered.
        let delta = 4u32;
        let window: Vec<u8> = (0..48).map(|i| ((i * 7 + i / 3) % 4) as u8).collect();
        let m = window.len() - 2 * delta as usize;
        for offset in 0..=(2 * delta as usize) {
            let read = window[offset..offset + m].to_vec();
            assert!(
                verdict(&read, &window, delta).accept,
                "offset {offset} rejected"
            );
        }
    }

    #[test]
    fn scattered_substitutions_within_delta_are_accepted() {
        let window: Vec<u8> = (0..140).map(|i| ((i * 5 + 1) % 4) as u8).collect();
        let mut read = window[5..135].to_vec();
        for (k, pos) in [10usize, 40, 70, 100, 125].iter().enumerate() {
            read[*pos] = (read[*pos] + 1 + k as u8 % 3) % 4;
        }
        assert!(verdict(&read, &window, 5).accept);
    }

    #[test]
    fn clustered_substitutions_within_delta_are_accepted() {
        // The case that breaks naive popcount-vs-δ thresholds: edits
        // two apart amend every run between them.
        let window: Vec<u8> = (0..120).map(|i| ((i * 3 + i / 5) % 4) as u8).collect();
        let mut read = window[5..115].to_vec();
        for pos in [50usize, 52, 54, 56, 58] {
            read[pos] = (read[pos] + 2) % 4;
        }
        assert!(verdict(&read, &window, 5).accept);
    }

    #[test]
    fn random_junk_is_rejected() {
        // Deterministic pseudo-random read vs an unrelated window.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let read: Vec<u8> = (0..100).map(|_| (next() & 3) as u8).collect();
        let window: Vec<u8> = (0..110).map(|_| (next() & 3) as u8).collect();
        let v = verdict(&read, &window, 5);
        assert!(!v.accept, "random junk survived SHD");
    }

    #[test]
    fn read_overhanging_window_beyond_delta_is_rejected() {
        let read = vec![0u8; 50];
        assert!(!verdict(&read, &[0u8; 40], 5).accept);
        // ...but within δ deletions it must stay (poly-A aligns).
        assert!(verdict(&read, &[0u8; 46], 5).accept);
    }

    #[test]
    fn empty_read_accepted_at_zero_cost() {
        assert_eq!(verdict(&[], &[0, 1, 2], 3), Verdict::accept(0));
    }

    #[test]
    fn delta_zero_accepts_exact_and_rejects_noise() {
        let window: Vec<u8> = (0..64).map(|i| ((i * 11 + i / 2) % 4) as u8).collect();
        let read = window.clone();
        assert!(verdict(&read, &window, 0).accept);
        let mut noise = read.clone();
        for i in (0..64).step_by(4) {
            noise[i] = (noise[i] + 1) % 4;
        }
        assert!(!verdict(&noise, &window, 0).accept);
    }

    #[test]
    fn amendment_knob_validates() {
        let f = ShdFilter::new().with_amend_below(1); // amendment off
        let window: Vec<u8> = (0..80).map(|i| ((i * 13) % 4) as u8).collect();
        let read = window[2..78].to_vec();
        assert!(f.examine_codes(&read, &window, 2).accept);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_amendment_cutoff_panics() {
        let _ = ShdFilter::new().with_amend_below(0);
    }

    #[test]
    fn multiword_reads_work() {
        let window: Vec<u8> = (0..170).map(|i| ((i * 7 + i / 9) % 4) as u8).collect();
        let mut read = window[10..160].to_vec(); // 150 bases: 3 words
        read[75] = (read[75] + 1) % 4;
        assert!(verdict(&read, &window, 5).accept);
    }
}
