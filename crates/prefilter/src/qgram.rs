//! Q-gram bin existence filter (GRIM-Filter-style).
//!
//! GRIM-Filter (Kim et al.) divides the reference into fixed-width
//! *bins* and keeps, for each bin, one bitvector with a bit per
//! possible q-gram: bit `h` is set when the q-gram with 2-bit encoding
//! `h` starts inside the bin. The structure is built once at index
//! time (one linear pass) and answers "could this read possibly align
//! in this region?" with a handful of bit probes — in the paper the
//! probes run inside 3D-stacked memory; here they are plain `u64`
//! reads.
//!
//! # Acceptance threshold — deviation from the issue sketch
//!
//! The issue proposes accepting when at least `L − (q−1)(δ+1)` of the
//! read's `L = m − q + 1` q-grams exist in the window's bins. That
//! bound is *stricter than sound* whenever `q < δ + 1`: the q-gram
//! lemma (Jokinen–Ukkonen) only guarantees that an alignment with
//! `e ≤ δ` edits leaves `L − q·e` read q-grams intact, because each
//! edit can destroy up to `q` overlapping grams. We therefore accept
//! when the existence count reaches `L − q·δ` — the exact lemma bound
//! — and reject below it. Every intact read q-gram occurs contiguously
//! somewhere in the window, so its start position falls in one of the
//! window's bins and its existence bit is set: zero false negatives by
//! construction.

use crate::{Candidate, PreFilter, Verdict};

/// Default q-gram length. 4^5 = 1024 bits (16 words) per bin keeps the
/// whole structure cache-resident for multi-megabase references while
/// q·δ stays below typical gram counts (`L − 5δ > 0` for 100-base
/// reads at δ ≤ 7).
pub const DEFAULT_Q: usize = 5;

/// Default bin width in bases. Bins much wider than a candidate window
/// blur the existence signal; 512 keeps 1–2 bins per window at typical
/// read lengths while bounding the bin count on large references.
pub const DEFAULT_BIN_WIDTH: usize = 512;

/// Largest supported q: 4^8 bits = 8 KiB per bin.
pub const MAX_Q: usize = 8;

/// Per-bin q-gram existence bitvectors over one reference.
///
/// Build once (at index time) from the reference's 2-bit codes and
/// share read-only across mapper threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QgramBins {
    q: usize,
    bin_width: usize,
    ref_len: usize,
    words_per_bin: usize,
    bits: Vec<u64>,
}

impl QgramBins {
    /// Builds the bins with the default q and bin width.
    pub fn build_default(codes: &[u8]) -> QgramBins {
        QgramBins::build(codes, DEFAULT_Q, DEFAULT_BIN_WIDTH)
    }

    /// Builds the bins: bit `h` of bin `b` is set iff the q-gram with
    /// 2-bit code `h` *starts* at some reference position in
    /// `[b·width, (b+1)·width)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is 0 or exceeds [`MAX_Q`], or if `bin_width` is 0.
    pub fn build(codes: &[u8], q: usize, bin_width: usize) -> QgramBins {
        assert!((1..=MAX_Q).contains(&q), "q must be in 1..={MAX_Q}");
        assert!(bin_width > 0, "bin width must be positive");
        let words_per_bin = (1usize << (2 * q)).div_ceil(64);
        let bins = codes.len().div_ceil(bin_width).max(1);
        let mut bits = vec![0u64; bins * words_per_bin];
        let mask = (1u64 << (2 * q)) - 1;
        let mut hash = 0u64;
        for (i, &code) in codes.iter().enumerate() {
            hash = ((hash << 2) | u64::from(code & 3)) & mask;
            if i + 1 >= q {
                let start = i + 1 - q;
                let bin = start / bin_width;
                let word = bin * words_per_bin + (hash / 64) as usize;
                bits[word] |= 1 << (hash % 64);
            }
        }
        QgramBins {
            q,
            bin_width,
            ref_len: codes.len(),
            words_per_bin,
            bits,
        }
    }

    /// The q-gram length.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The bin width in bases.
    pub fn bin_width(&self) -> usize {
        self.bin_width
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bits.len() / self.words_per_bin
    }

    /// Heap bytes held by the bitvectors (an index-size statistic).
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Does the q-gram `hash` start in any bin of `lo..=hi`?
    fn present_in(&self, hash: u64, lo: usize, hi: usize) -> bool {
        let word = (hash / 64) as usize;
        let bit = 1u64 << (hash % 64);
        (lo..=hi).any(|b| self.bits[b * self.words_per_bin + word] & bit != 0)
    }

    /// The inclusive bin range containing every q-gram start of the
    /// window `[start, start + len)`, clamped to the reference.
    fn bin_range(&self, start: usize, len: usize) -> (usize, usize) {
        let last_bin = self.bins() - 1;
        let lo = (start / self.bin_width).min(last_bin);
        let last_start = (start + len.saturating_sub(self.q)).min(self.ref_len);
        let hi = (last_start / self.bin_width).min(last_bin);
        (lo, hi.max(lo))
    }
}

/// The GRIM-style candidate filter over prebuilt [`QgramBins`].
///
/// The candidate's `window_start` must be a position in the same
/// reference the bins were built over — the filter never looks at the
/// window's bases, only at its coordinates.
#[derive(Debug, Clone, Copy)]
pub struct QgramFilter<'a> {
    bins: &'a QgramBins,
}

impl<'a> QgramFilter<'a> {
    /// Creates the filter over shared bins.
    pub fn new(bins: &'a QgramBins) -> QgramFilter<'a> {
        QgramFilter { bins }
    }

    /// The underlying bins.
    pub fn bins(&self) -> &'a QgramBins {
        self.bins
    }
}

impl PreFilter for QgramFilter<'_> {
    fn examine(&self, candidate: &Candidate<'_>) -> Verdict {
        let q = self.bins.q;
        let m = candidate.read.len();
        if m < q {
            // No gram to test; the lemma gives no rejection power.
            return Verdict::accept(1);
        }
        let grams = (m - q + 1) as i64;
        let needed = grams - q as i64 * i64::from(candidate.delta);
        if needed <= 0 {
            // Lemma threshold degenerate: every candidate passes.
            return Verdict::accept(1);
        }
        let (lo, hi) = self
            .bins
            .bin_range(candidate.window_start, candidate.window.len());
        let spans = (hi - lo + 1) as u64;
        let mask = (1u64 << (2 * q)) - 1;
        let mut hash = 0u64;
        let mut found = 0i64;
        let mut missing = 0i64;
        let mut probes = 0u64;
        let budget = grams - needed; // misses allowed before rejection
        for (i, &code) in candidate.read.iter().enumerate() {
            hash = ((hash << 2) | u64::from(code & 3)) & mask;
            if i + 1 < q {
                continue;
            }
            probes += 1;
            if self.bins.present_in(hash, lo, hi) {
                found += 1;
                if found >= needed {
                    break; // sound early accept
                }
            } else {
                missing += 1;
                if missing > budget {
                    break; // cannot reach the threshold any more
                }
            }
        }
        // Cost calibration: one existence probe is a rolling-hash
        // update plus `spans` masked word reads — charge 8 probes per
        // word-unit of the Myers currency (a word update is itself a
        // dozen-op bundle).
        let cost = (probes * spans).div_ceil(8).max(1);
        if found >= needed {
            Verdict::accept(cost)
        } else {
            Verdict::reject(cost)
        }
    }

    fn name(&self) -> &'static str {
        "qgram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Vec<u8> {
        (0..4096u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
                x ^= x >> 31;
                (x & 3) as u8
            })
            .collect()
    }

    fn candidate<'a>(read: &'a [u8], window: &'a [u8], start: usize, delta: u32) -> Candidate<'a> {
        Candidate {
            read,
            window,
            window_start: start,
            delta,
        }
    }

    #[test]
    fn build_rejects_bad_params() {
        let r = reference();
        assert!(std::panic::catch_unwind(|| QgramBins::build(&r, 0, 512)).is_err());
        assert!(std::panic::catch_unwind(|| QgramBins::build(&r, MAX_Q + 1, 512)).is_err());
        assert!(std::panic::catch_unwind(|| QgramBins::build(&r, 5, 0)).is_err());
    }

    #[test]
    fn accessors_and_sizing() {
        let r = reference();
        let bins = QgramBins::build(&r, 5, 512);
        assert_eq!(bins.q(), 5);
        assert_eq!(bins.bin_width(), 512);
        assert_eq!(bins.bins(), 8);
        assert_eq!(bins.heap_bytes(), 8 * 16 * 8);
    }

    #[test]
    fn planted_read_is_accepted() {
        let r = reference();
        let bins = QgramBins::build_default(&r);
        let filter = QgramFilter::new(&bins);
        let delta = 5u32;
        let start = 1000 - delta as usize;
        let window = &r[start..1100 + delta as usize];
        let read = r[1000..1100].to_vec();
        let v = filter.examine(&candidate(&read, window, start, delta));
        assert!(v.accept);
        assert!(v.cost_words > 0);
    }

    #[test]
    fn planted_read_with_substitutions_is_accepted() {
        let r = reference();
        let bins = QgramBins::build_default(&r);
        let filter = QgramFilter::new(&bins);
        let mut read = r[2000..2100].to_vec();
        for pos in [5usize, 30, 55, 80, 95] {
            read[pos] = (read[pos] + 1) % 4;
        }
        let window = &r[1995..2105];
        assert!(filter.examine(&candidate(&read, window, 1995, 5)).accept);
    }

    #[test]
    fn foreign_read_is_rejected() {
        let r = reference();
        let bins = QgramBins::build_default(&r);
        let filter = QgramFilter::new(&bins);
        // A read of grams the reference bins almost surely lack: a
        // de-Bruijn-ish alternation absent from the hashed reference.
        let read: Vec<u8> = (0..100).map(|i| [0u8, 0, 1, 0, 0, 2][i % 6]).collect();
        let window = &r[500..610];
        let v = filter.examine(&candidate(&read, window, 500, 3));
        assert!(!v.accept, "foreign read passed the bin filter");
    }

    #[test]
    fn window_spanning_bins_is_covered() {
        let r = reference();
        let bins = QgramBins::build(&r, 5, 64); // narrow bins: windows span several
        let filter = QgramFilter::new(&bins);
        let read = r[300..400].to_vec(); // crosses bins 4..=6
        let window = &r[295..405];
        assert!(filter.examine(&candidate(&read, window, 295, 5)).accept);
    }

    #[test]
    fn window_at_reference_end_is_clamped() {
        let r = reference();
        let bins = QgramBins::build_default(&r);
        let filter = QgramFilter::new(&bins);
        let read = r[4000..4090].to_vec();
        let window = &r[3995..4096];
        assert!(filter.examine(&candidate(&read, window, 3995, 5)).accept);
    }

    #[test]
    fn short_read_and_degenerate_threshold_accept() {
        let r = reference();
        let bins = QgramBins::build_default(&r);
        let filter = QgramFilter::new(&bins);
        let read = r[10..13].to_vec(); // shorter than q
        assert!(filter.examine(&candidate(&read, &r[5..20], 5, 2)).accept);
        // 20-base read at δ=5: L = 16 ≤ qδ = 25 → lemma says nothing.
        let read = r[60..80].to_vec();
        assert!(filter.examine(&candidate(&read, &r[55..85], 55, 5)).accept);
    }
}
