//! Regression corpus of adversarial windows — long homopolymers,
//! tandem repeats, low-complexity reads — checked in at
//! `tests/corpus/adversarial.txt` and shared with the bench ablation
//! binary. Two invariants: every oracle-verifiable entry passes both
//! filters (zero false negatives even on pathological sequence), and
//! the SHD filter keeps nonzero rejection power over the corpus (the
//! CI canary against the filter silently degenerating to a no-op).

use repute_align::verify;
use repute_prefilter::{Candidate, PreFilter, QgramBins, QgramFilter, ShdFilter};

const CORPUS: &str = include_str!("corpus/adversarial.txt");

struct Entry {
    name: String,
    delta: u32,
    read: Vec<u8>,
    window: Vec<u8>,
}

fn codes(s: &str) -> Vec<u8> {
    s.bytes()
        .map(|b| match b {
            b'A' => 0u8,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            other => panic!("bad corpus base {:?}", other as char),
        })
        .collect()
}

fn entries() -> Vec<Entry> {
    CORPUS
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut parts = line.split('\t');
            let name = parts.next().expect("name").to_string();
            let delta = parts.next().expect("delta").parse().expect("delta int");
            let read = codes(parts.next().expect("read"));
            let window = codes(parts.next().expect("window"));
            Entry {
                name,
                delta,
                read,
                window,
            }
        })
        .collect()
}

/// Lays the corpus windows head-to-tail into one synthetic reference
/// so the q-gram bins see them as reference regions, returning the
/// bins and each window's start offset.
fn corpus_bins(entries: &[Entry]) -> (QgramBins, Vec<usize>) {
    let mut reference = Vec::new();
    let mut offsets = Vec::with_capacity(entries.len());
    for e in entries {
        offsets.push(reference.len());
        reference.extend_from_slice(&e.window);
    }
    // Narrow bins keep neighbouring corpus windows from leaking grams
    // into each other's bin ranges.
    (QgramBins::build(&reference, 5, 64), offsets)
}

#[test]
fn corpus_parses_and_exercises_both_oracle_outcomes() {
    let entries = entries();
    assert!(entries.len() >= 20, "corpus shrank to {}", entries.len());
    let verifiable = entries
        .iter()
        .filter(|e| verify(&e.read, &e.window, e.delta).is_some())
        .count();
    let rejected = entries.len() - verifiable;
    assert!(verifiable >= 5, "only {verifiable} verifiable entries");
    assert!(rejected >= 5, "only {rejected} unverifiable entries");
    // The planted entries must actually verify, or the zero-FN checks
    // below would pass vacuously.
    for e in &entries {
        if e.name.starts_with("planted-") || e.name.ends_with("-true-positive") {
            assert!(
                verify(&e.read, &e.window, e.delta).is_some(),
                "corpus entry {} no longer verifies",
                e.name
            );
        }
    }
}

#[test]
fn corpus_has_zero_false_negatives() {
    let entries = entries();
    let (bins, offsets) = corpus_bins(&entries);
    let shd = ShdFilter::new();
    let qgram = QgramFilter::new(&bins);
    for (e, &start) in entries.iter().zip(&offsets) {
        if verify(&e.read, &e.window, e.delta).is_none() {
            continue;
        }
        assert!(
            shd.examine_codes(&e.read, &e.window, e.delta).accept,
            "SHD false negative on corpus entry {}",
            e.name
        );
        let candidate = Candidate {
            read: &e.read,
            window: &e.window,
            window_start: start,
            delta: e.delta,
        };
        assert!(
            qgram.examine(&candidate).accept,
            "q-gram false negative on corpus entry {}",
            e.name
        );
    }
}

#[test]
fn shd_rejection_rate_on_corpus_is_nonzero() {
    let entries = entries();
    let shd = ShdFilter::new();
    let mut negatives = 0u32;
    let mut rejected = 0u32;
    for e in &entries {
        if verify(&e.read, &e.window, e.delta).is_some() {
            continue;
        }
        negatives += 1;
        if !shd.examine_codes(&e.read, &e.window, e.delta).accept {
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "SHD rejected 0 of {negatives} adversarial negatives — the filter \
         has silently become a no-op"
    );
}

#[test]
fn qgram_rejection_rate_on_corpus_is_nonzero() {
    let entries = entries();
    let (bins, offsets) = corpus_bins(&entries);
    let qgram = QgramFilter::new(&bins);
    let mut rejected = 0u32;
    for (e, &start) in entries.iter().zip(&offsets) {
        if verify(&e.read, &e.window, e.delta).is_some() {
            continue;
        }
        let candidate = Candidate {
            read: &e.read,
            window: &e.window,
            window_start: start,
            delta: e.delta,
        };
        if !qgram.examine(&candidate).accept {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "q-gram filter rejected nothing on the corpus");
}
