#![cfg(feature = "proptest")]
//! NOTE: gated behind the non-default `proptest` feature because the
//! external `proptest` crate cannot be resolved in the offline build
//! environment. Enabling the feature additionally requires restoring a
//! `proptest` dev-dependency where registry access exists. The
//! always-on randomized suite in `zero_false_negatives.rs` covers the
//! same invariants with the in-repo PRNG.

use proptest::prelude::*;

use repute_align::verify;
use repute_prefilter::{Candidate, PreFilter, QgramBins, QgramFilter, ShdFilter};

fn codes(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Zero false negatives, SHD: whatever the verifier accepts within
    /// δ, the filter must accept — over arbitrary reads, windows and
    /// δ ∈ 3..=7.
    #[test]
    fn shd_never_rejects_verifiable_windows(
        read in codes(40..160),
        window in codes(40..200),
        delta in 3u32..=7,
    ) {
        if verify(&read, &window, delta).is_some() {
            let verdict = ShdFilter::new().examine_codes(&read, &window, delta);
            prop_assert!(verdict.accept, "SHD rejected a verifiable window");
        }
    }

    /// Zero false negatives, q-gram bins: windows cut from a random
    /// reference, reads arbitrary.
    #[test]
    fn qgram_never_rejects_verifiable_windows(
        reference in codes(1024..2048),
        read in codes(40..160),
        start_frac in 0.0f64..1.0,
        wlen in 60usize..200,
        delta in 3u32..=7,
    ) {
        let start = ((reference.len() - 1) as f64 * start_frac) as usize;
        let end = (start + wlen).min(reference.len());
        let window = &reference[start..end];
        if verify(&read, window, delta).is_some() {
            let bins = QgramBins::build_default(&reference);
            let verdict = QgramFilter::new(&bins).examine(&Candidate {
                read: &read,
                window,
                window_start: start,
                delta,
            });
            prop_assert!(verdict.accept, "q-gram filter rejected a verifiable window");
        }
    }

    /// Planted mutants (≤ δ edits applied to the window core) must
    /// survive both filters — the high-yield true-positive generator.
    #[test]
    fn planted_mutants_survive_both_filters(
        reference in codes(2048..3072),
        pos_frac in 0.0f64..1.0,
        m in 70usize..140,
        delta in 3u32..=7,
        edit_positions in proptest::collection::vec(0usize..70, 0..7),
    ) {
        let slack = delta as usize;
        let span = m + 2 * slack;
        prop_assume!(reference.len() > span + 2);
        let wstart = ((reference.len() - span - 1) as f64 * pos_frac) as usize;
        let window = &reference[wstart..wstart + span];
        let mut read = reference[wstart + slack..wstart + slack + m].to_vec();
        for (k, &p) in edit_positions.iter().take(delta as usize).enumerate() {
            let i = (p * (k + 1)) % read.len();
            read[i] = (read[i] + 1) % 4;
        }
        prop_assume!(verify(&read, window, delta).is_some());
        prop_assert!(ShdFilter::new().examine_codes(&read, window, delta).accept);
        let bins = QgramBins::build_default(&reference);
        prop_assert!(QgramFilter::new(&bins).examine(&Candidate {
            read: &read,
            window,
            window_start: wstart,
            delta,
        }).accept);
    }
}
