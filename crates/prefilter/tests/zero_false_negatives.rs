//! The filters' load-bearing contract, checked against the verifier:
//! any candidate window `repute_align::verify` accepts within δ must
//! survive both pre-alignment filters. Runs with the in-repo PRNG so
//! it executes in the offline build; `props.rs` carries the
//! proptest-powered variant behind the `proptest` feature.

use repute_align::verify;
use repute_genome::rng::StdRng;
use repute_genome::synth::ReferenceBuilder;
use repute_prefilter::{Candidate, PreFilter, QgramBins, QgramFilter, ShdFilter};

const REF_LEN: usize = 8_192;

fn reference_codes() -> Vec<u8> {
    ReferenceBuilder::new(REF_LEN)
        .seed(0xC0FFEE)
        .build()
        .to_codes()
}

/// Applies up to `edits` random substitutions/insertions/deletions.
fn mutate(rng: &mut StdRng, segment: &[u8], edits: u32) -> Vec<u8> {
    let mut read = segment.to_vec();
    for _ in 0..edits {
        if read.len() < 2 {
            break;
        }
        let pos = rng.gen_range(0..read.len());
        match rng.gen_range(0u8..3) {
            0 => read[pos] = (read[pos] + rng.gen_range(1u8..4)) % 4,
            1 => read.insert(pos, rng.gen_range(0u8..4)),
            _ => {
                read.remove(pos);
            }
        }
    }
    read
}

fn check_zero_fn(
    codes: &[u8],
    bins: &QgramBins,
    delta: u32,
    seed: u64,
    trials: usize,
    read_lens: std::ops::RangeInclusive<usize>,
) -> (u64, u64) {
    let shd = ShdFilter::new();
    let qgram = QgramFilter::new(bins);
    let mut rng = StdRng::seed_from_u64(seed);
    let slack = delta as usize;
    let mut oracle_accepts = 0u64;
    let mut shd_rejects = 0u64;
    for trial in 0..trials {
        let m = rng.gen_range(read_lens.clone());
        let pos = rng.gen_range(slack..REF_LEN - m - 2 * slack);
        let wstart = pos - slack;
        let window = &codes[wstart..pos + m + slack];
        // Half the trials plant a ≤ δ-edit mutant of the window's
        // core; the other half throw unrelated reads at it.
        let read = if trial % 2 == 0 {
            let edits = rng.gen_range(0..=delta);
            mutate(&mut rng, &codes[pos..pos + m], edits)
        } else {
            (0..m).map(|_| rng.gen_range(0u8..4)).collect()
        };
        let candidate = Candidate {
            read: &read,
            window,
            window_start: wstart,
            delta,
        };
        let oracle = verify(&read, window, delta);
        let shd_verdict = shd.examine_codes(&read, window, delta);
        let qgram_verdict = qgram.examine(&candidate);
        if oracle.is_some() {
            oracle_accepts += 1;
            assert!(
                shd_verdict.accept,
                "SHD false negative: trial {trial}, δ={delta}, m={}, pos={pos}",
                read.len()
            );
            assert!(
                qgram_verdict.accept,
                "q-gram false negative: trial {trial}, δ={delta}, m={}, pos={pos}",
                read.len()
            );
        } else if !shd_verdict.accept {
            shd_rejects += 1;
        }
    }
    (oracle_accepts, shd_rejects)
}

#[test]
fn zero_false_negatives_across_delta_range() {
    let codes = reference_codes();
    let bins = QgramBins::build_default(&codes);
    for delta in 3..=7u32 {
        let (accepts, rejects) = check_zero_fn(
            &codes,
            &bins,
            delta,
            0x5EED + u64::from(delta),
            200,
            70..=150,
        );
        // The sweep must actually exercise both sides of the oracle.
        assert!(accepts > 20, "δ={delta}: only {accepts} verifiable trials");
        assert!(
            rejects > 20,
            "δ={delta}: SHD rejected only {rejects} junk windows"
        );
    }
}

#[test]
fn zero_false_negatives_with_narrow_bins_and_custom_q() {
    let codes = reference_codes();
    // Narrow bins + smaller q: the most aggressive (and most
    // contamination-free) q-gram configuration still may not reject a
    // verifiable window.
    let bins = QgramBins::build(&codes, 4, 128);
    for delta in 3..=5u32 {
        let (accepts, _) = check_zero_fn(
            &codes,
            &bins,
            delta,
            0xAB5 + u64::from(delta),
            120,
            80..=120,
        );
        assert!(accepts > 10, "δ={delta}: only {accepts} verifiable trials");
    }
}

#[test]
fn zero_false_negatives_on_multiword_reads() {
    let codes = reference_codes();
    let bins = QgramBins::build_default(&codes);
    // 129..=200-base reads span 3–4 mask words: exercises every
    // cross-word shift path in the SHD masks.
    let (accepts, _) = check_zero_fn(&codes, &bins, 6, 0xB16, 120, 129..=200);
    assert!(accepts > 10, "only {accepts} verifiable trials");
}

#[test]
fn shd_accepts_every_planted_offset_with_indel_drift() {
    // Alignments that start δ bases into the slack (pure offset, no
    // edits) are the cases the 2δ+1-shift formulation misses.
    let codes = reference_codes();
    let shd = ShdFilter::new();
    for delta in 1..=7u32 {
        let slack = delta as usize;
        for offset in 0..=2 * slack {
            let wstart = 3000;
            let m = 100;
            let window = &codes[wstart..wstart + m + 2 * slack];
            let read = &codes[wstart + offset..wstart + offset + m];
            assert!(
                verify(read, window, delta).is_some(),
                "oracle rejected exact offset {offset}"
            );
            assert!(
                shd.examine_codes(read, window, delta).accept,
                "SHD rejected exact match at offset {offset}, δ={delta}"
            );
        }
    }
}
