//! Thin binary wrapper over [`repute_cli`].
//!
//! Exit codes follow [`repute_cli::ReputeError::exit_code`]: `0` success,
//! `2` configuration (including malformed command lines), `3` input
//! parse, `4` i/o, `5` journal corrupt, `6` resume mismatch, `7` device
//! loss, `8` interrupted by a simulated host crash (resumable).

use std::process::ExitCode;

use repute_cli::ReputeError;

/// Exit code of malformed command lines (the configuration class).
const EXIT_USAGE: u8 = 2;

fn fail(err: &ReputeError) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::from(err.exit_code())
}

fn usage_error(err: &repute_cli::ParseArgsError) -> ExitCode {
    eprintln!("{err}");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("map") => match repute_cli::parse_map_args(args) {
            Ok(opts) => match repute_cli::run_map(&opts) {
                Ok((reads, mappings)) => {
                    eprintln!("done: {reads} reads mapped, {mappings} locations reported");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("index") => match repute_cli::parse_index_args(args) {
            Ok(opts) => match repute_cli::run_index(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("simulate") => match repute_cli::parse_simulate_args(args) {
            Ok(opts) => match repute_cli::run_simulate(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("serve") => match repute_cli::parse_serve_args(args) {
            Ok(opts) => match repute_cli::run_serve(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("submit") => match repute_cli::parse_submit_args(args) {
            Ok(opts) => match repute_cli::run_submit(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("stats") => match repute_cli::parse_stats_args(args) {
            Ok(opts) => match repute_cli::run_stats(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("trace") => match repute_cli::parse_trace_args(args) {
            Ok(opts) => match repute_cli::run_trace(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            },
            Err(e) => usage_error(&e),
        },
        Some("--help") | Some("-h") | None => {
            println!("{}", repute_cli::USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{}", repute_cli::USAGE);
            ExitCode::from(EXIT_USAGE)
        }
    }
}
