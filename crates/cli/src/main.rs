//! Thin binary wrapper over [`repute_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("map") => match repute_cli::parse_map_args(args) {
            Ok(opts) => match repute_cli::run_map(&opts) {
                Ok((reads, mappings)) => {
                    eprintln!("done: {reads} reads mapped, {mappings} locations reported");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("index") => match repute_cli::parse_index_args(args) {
            Ok(opts) => match repute_cli::run_index(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("simulate") => match repute_cli::parse_simulate_args(args) {
            Ok(opts) => match repute_cli::run_simulate(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("stats") => match repute_cli::parse_stats_args(args) {
            Ok(opts) => match repute_cli::run_stats(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("--help") | Some("-h") | None => {
            println!("{}", repute_cli::USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{}", repute_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
