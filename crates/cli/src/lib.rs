//! The `repute` command-line mapper.
//!
//! ```text
//! repute map --reference ref.fa --reads reads.fq --delta 5 [options] > out.sam
//! ```
//!
//! Reads a FASTA reference and a FASTQ read set, maps every read with the
//! REPUTE pipeline of [`repute_core`], and writes SAM (with CIGAR — the
//! §IV extension). The logic lives in this library so it can be tested;
//! `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::sync::Arc;

use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_eval::sam;
use repute_genome::fasta::{read_fasta, AmbiguityPolicy};
use repute_genome::fastq::FastqReader;
use repute_mappers::multiref::ReferenceSet;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like,
    razers3::Razers3Like, yara::YaraLike, Mapper,
};

/// Which mapping strategy `repute map` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapperChoice {
    /// The REPUTE mapper (default).
    #[default]
    Repute,
    /// The CORAL-style serial-heuristic baseline.
    Coral,
    /// The RazerS3-style SWIFT counting baseline.
    Razers3,
    /// The Hobbes3-style q-gram signature baseline.
    Hobbes3,
    /// The Yara-style best-mapper baseline.
    Yara,
    /// The GEM-style adaptive-filtration baseline.
    Gem,
    /// The BWA-MEM-style SMEM best-mapper baseline (ignores δ).
    BwaMem,
}

impl std::str::FromStr for MapperChoice {
    type Err = ParseArgsError;

    fn from_str(s: &str) -> Result<MapperChoice, ParseArgsError> {
        match s.to_ascii_lowercase().as_str() {
            "repute" => Ok(MapperChoice::Repute),
            "coral" => Ok(MapperChoice::Coral),
            "razers3" => Ok(MapperChoice::Razers3),
            "hobbes3" => Ok(MapperChoice::Hobbes3),
            "yara" => Ok(MapperChoice::Yara),
            "gem" => Ok(MapperChoice::Gem),
            "bwa-mem" | "bwamem" => Ok(MapperChoice::BwaMem),
            other => Err(ParseArgsError::new(format!(
                "unknown mapper {other:?} (repute, coral, razers3, hobbes3, yara, gem, bwa-mem)"
            ))),
        }
    }
}

/// Parsed command-line options for `repute map`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOptions {
    /// Path to the FASTA reference (exclusive with `index`).
    pub reference: String,
    /// Path to a prebuilt index from `repute index` (exclusive with
    /// `reference`).
    pub index: Option<String>,
    /// Path to the FASTQ reads.
    pub reads: String,
    /// Error budget δ.
    pub delta: u32,
    /// Minimum k-mer length `S_min`.
    pub s_min: usize,
    /// Output-slot limit per read.
    pub max_locations: usize,
    /// Output path; `None` writes to stdout.
    pub output: Option<String>,
    /// Emit CIGAR strings (slower; full DP traceback per mapping).
    pub cigar: bool,
    /// Which mapping strategy to run.
    pub mapper: MapperChoice,
    /// Simulated platform to report time/energy for (`system1`,
    /// `system1-cpu`, `hikey970`); `None` skips the simulation report.
    pub platform: Option<String>,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            reference: String::new(),
            index: None,
            reads: String::new(),
            delta: 5,
            s_min: 12,
            max_locations: 100,
            output: None,
            cigar: false,
            mapper: MapperChoice::default(),
            platform: None,
        }
    }
}

/// Error for malformed command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError {
    message: String,
}

impl ParseArgsError {
    fn new(message: impl Into<String>) -> ParseArgsError {
        ParseArgsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.message, USAGE)
    }
}

impl Error for ParseArgsError {}

/// Usage text shown on `--help` and argument errors.
pub const USAGE: &str = "\
repute — OpenCL-style heterogeneous short-read mapper (DATE 2020 reproduction)

USAGE:
    repute map      --reference <ref.fa> --reads <reads.fq> [OPTIONS]
    repute map      --index <ref.rpx>    --reads <reads.fq> [OPTIONS]
    repute index    --reference <ref.fa> --output <ref.rpx>
    repute simulate --out-dir <dir> [--length N] [--reads N] [--read-len N]
                    [--seed N] [--profile err012100|srr826460|perfect]

MAP OPTIONS:
    --reference <path>       FASTA reference (multi-record supported)
    --index <path>           prebuilt index from `repute index`
    --reads <path>           FASTQ reads (required)
    --delta <n>              error budget δ [default: 5]
    --s-min <n>              minimum k-mer length S_min [default: 12]
    --max-locations <n>      first-n output slots per read [default: 100]
    --output <path>          SAM output path [default: stdout]
    --cigar                  compute CIGAR strings (repute mapper only)
    --mapper <name>          repute | coral | razers3 | hobbes3 | yara |
                             gem | bwa-mem [default: repute]
    --platform <name>        also report simulated time/energy on
                             system1 | system1-cpu | hikey970
    --help                   print this text";

/// Parses `repute map` arguments (everything after the subcommand).
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags, missing values, or
/// missing required options.
pub fn parse_map_args<I: IntoIterator<Item = String>>(args: I) -> Result<MapOptions, ParseArgsError> {
    let mut opts = MapOptions::default();
    let mut args = args.into_iter();
    let mut have_reference = false;
    let mut have_reads = false;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--reference" => {
                opts.reference = value("--reference")?;
                have_reference = true;
            }
            "--index" => {
                opts.index = Some(value("--index")?);
                have_reference = true;
            }
            "--reads" => {
                opts.reads = value("--reads")?;
                have_reads = true;
            }
            "--delta" => {
                opts.delta = value("--delta")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--delta expects an integer"))?;
            }
            "--s-min" => {
                opts.s_min = value("--s-min")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--s-min expects an integer"))?;
            }
            "--max-locations" => {
                opts.max_locations = value("--max-locations")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-locations expects an integer"))?;
                if opts.max_locations == 0 {
                    return Err(ParseArgsError::new("--max-locations must be positive"));
                }
            }
            "--output" => opts.output = Some(value("--output")?),
            "--cigar" => opts.cigar = true,
            "--mapper" => opts.mapper = value("--mapper")?.parse()?,
            "--platform" => opts.platform = Some(value("--platform")?),
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if opts.cigar && opts.mapper != MapperChoice::Repute {
        return Err(ParseArgsError::new("--cigar requires the repute mapper"));
    }
    if !have_reference {
        return Err(ParseArgsError::new("--reference or --index is required"));
    }
    if opts.index.is_some() && !opts.reference.is_empty() {
        return Err(ParseArgsError::new(
            "--reference and --index are mutually exclusive",
        ));
    }
    if !have_reads {
        return Err(ParseArgsError::new("--reads is required"));
    }
    Ok(opts)
}

/// Parsed command-line options for `repute index`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexOptions {
    /// Path to the FASTA reference.
    pub reference: String,
    /// Output path for the binary index.
    pub output: String,
}

/// Parses `repute index` arguments.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags or missing options.
pub fn parse_index_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<IndexOptions, ParseArgsError> {
    let mut opts = IndexOptions::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--reference" => opts.reference = value("--reference")?,
            "--output" => opts.output = value("--output")?,
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if opts.reference.is_empty() {
        return Err(ParseArgsError::new("--reference is required"));
    }
    if opts.output.is_empty() {
        return Err(ParseArgsError::new("--output is required"));
    }
    Ok(opts)
}

/// Parsed command-line options for `repute simulate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateOptions {
    /// Directory the FASTA/FASTQ/truth files are written into.
    pub out_dir: String,
    /// Reference length in bases.
    pub length: usize,
    /// Number of reads.
    pub reads: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Error profile name.
    pub profile: String,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            out_dir: String::new(),
            length: 1_000_000,
            reads: 10_000,
            read_len: 100,
            seed: 42,
            profile: "err012100".into(),
        }
    }
}

/// Parses `repute simulate` arguments.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags or missing options.
pub fn parse_simulate_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<SimulateOptions, ParseArgsError> {
    let mut opts = SimulateOptions::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        let int = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| ParseArgsError::new(format!("{name} expects an integer")))
        };
        match arg.as_str() {
            "--out-dir" => opts.out_dir = value("--out-dir")?,
            "--length" => opts.length = int("--length", value("--length")?)? as usize,
            "--reads" => opts.reads = int("--reads", value("--reads")?)? as usize,
            "--read-len" => opts.read_len = int("--read-len", value("--read-len")?)? as usize,
            "--seed" => opts.seed = int("--seed", value("--seed")?)?,
            "--profile" => opts.profile = value("--profile")?,
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if opts.out_dir.is_empty() {
        return Err(ParseArgsError::new("--out-dir is required"));
    }
    if !matches!(opts.profile.as_str(), "err012100" | "srr826460" | "perfect") {
        return Err(ParseArgsError::new(format!(
            "unknown profile {:?} (err012100, srr826460, perfect)",
            opts.profile
        )));
    }
    Ok(opts)
}

/// Runs `repute simulate`: writes `reference.fa`, `reads.fq` and
/// `truth.tsv` into the output directory.
///
/// # Errors
///
/// Propagates I/O and generation errors.
pub fn run_simulate(opts: &SimulateOptions) -> Result<(), Box<dyn Error>> {
    use repute_genome::fasta::{write_fasta, FastaRecord};
    use repute_genome::fastq::write_fastq;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    let dir = std::path::Path::new(&opts.out_dir);
    std::fs::create_dir_all(dir)?;
    eprintln!("generating a {} bp reference…", opts.length);
    let reference = ReferenceBuilder::new(opts.length).seed(opts.seed).build();
    let profile = match opts.profile.as_str() {
        "err012100" => ErrorProfile::err012100(),
        "srr826460" => ErrorProfile::srr826460(),
        _ => ErrorProfile::perfect(),
    };
    let sim = ReadSimulator::new(opts.read_len, opts.reads)
        .profile(profile)
        .seed(opts.seed ^ 0x5EED);
    let records = sim.simulate_fastq(&reference);

    let fa = File::create(dir.join("reference.fa"))?;
    write_fasta(
        BufWriter::new(fa),
        &[FastaRecord::new("chrSim", reference)],
        70,
    )?;
    let fq = File::create(dir.join("reads.fq"))?;
    write_fastq(
        BufWriter::new(fq),
        &records.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>(),
    )?;
    let mut truth = BufWriter::new(File::create(dir.join("truth.tsv"))?);
    writeln!(truth, "read	strand	position	edits")?;
    for (record, origin) in &records {
        match origin {
            Some(o) => writeln!(
                truth,
                "{}	{}	{}	{}",
                record.id,
                o.strand.symbol(),
                o.position,
                o.edits
            )?,
            None => writeln!(truth, "{}	*	*	*", record.id)?,
        }
    }
    truth.flush()?;
    eprintln!(
        "wrote reference.fa ({} bp), reads.fq ({} reads), truth.tsv into {:?}",
        opts.length, opts.reads, opts.out_dir
    );
    Ok(())
}

fn load_reference_set(opts: &MapOptions) -> Result<ReferenceSet, Box<dyn Error>> {
    if let Some(index_path) = &opts.index {
        let file = File::open(index_path)
            .map_err(|e| format!("cannot open index {index_path:?}: {e}"))?;
        eprintln!("loading prebuilt index {index_path:?}…");
        return Ok(ReferenceSet::read_from(BufReader::new(file))?);
    }
    let file = File::open(&opts.reference)
        .map_err(|e| format!("cannot open reference {:?}: {e}", opts.reference))?;
    let records = read_fasta(BufReader::new(file), AmbiguityPolicy::Randomize(0))?;
    if records.is_empty() {
        return Err("reference FASTA contains no sequence".into());
    }
    let total: usize = records.iter().map(|r| r.seq.len()).sum();
    eprintln!("indexing {} record(s), {total} bp…", records.len());
    Ok(ReferenceSet::build(
        records.into_iter().map(|r| (r.id, r.seq)).collect(),
    ))
}

/// Runs `repute index`: builds the reference set and writes the binary
/// index.
///
/// # Errors
///
/// Propagates I/O, format and construction errors.
pub fn run_index(opts: &IndexOptions) -> Result<(), Box<dyn Error>> {
    let set = load_reference_set(&MapOptions {
        reference: opts.reference.clone(),
        ..MapOptions::default()
    })?;
    let out = File::create(&opts.output)
        .map_err(|e| format!("cannot create {:?}: {e}", opts.output))?;
    set.write_to(BufWriter::new(out))?;
    eprintln!(
        "wrote index for {} record(s) to {:?}",
        set.records().len(),
        opts.output
    );
    Ok(())
}

/// Runs `repute map`, writing SAM to the configured output.
///
/// Returns `(reads_mapped, mappings_reported)`.
///
/// # Errors
///
/// Propagates I/O, format and configuration errors.
pub fn run_map(opts: &MapOptions) -> Result<(usize, usize), Box<dyn Error>> {
    let set = load_reference_set(opts)?;
    let names: Vec<&str> = set.records().iter().map(|(n, _)| n.as_str()).collect();
    let header: Vec<(&str, usize)> = set
        .records()
        .iter()
        .map(|(n, l)| (n.as_str(), *l))
        .collect();
    let config = ReputeConfig::new(opts.delta, opts.s_min)?.with_max_locations(opts.max_locations);
    let repute = ReputeMapper::new(Arc::clone(set.indexed()), config);
    let baseline: Option<Box<dyn Mapper>> = match opts.mapper {
        MapperChoice::Repute => None,
        MapperChoice::Coral => Some(Box::new(
            CoralLike::new(Arc::clone(set.indexed()), opts.delta)
                .with_s_min(opts.s_min)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Razers3 => Some(Box::new(
            Razers3Like::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Hobbes3 => Some(Box::new(
            Hobbes3Like::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Yara => Some(Box::new(
            YaraLike::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Gem => Some(Box::new(
            GemLike::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::BwaMem => Some(Box::new(
            BwaMemLike::new(Arc::clone(set.indexed())).with_max_locations(opts.max_locations),
        )),
    };

    let reads_file =
        File::open(&opts.reads).map_err(|e| format!("cannot open reads {:?}: {e}", opts.reads))?;
    let mut out: Box<dyn Write> = match &opts.output {
        Some(path) => Box::new(BufWriter::new(File::create(path)?)),
        None => Box::new(BufWriter::new(std::io::stdout())),
    };
    sam::write_header_multi(&mut out, &header)?;

    let mut reads_mapped = 0usize;
    let mut total_mappings = 0usize;
    let mut per_read_for_stats: Vec<Vec<repute_mappers::Mapping>> = Vec::new();
    for record in FastqReader::new(BufReader::new(reads_file)) {
        let record = record?;
        let (raw, cigar) = if opts.cigar {
            let (_, detailed) = repute.map_read_with_cigars(&record.seq);
            let raw: Vec<_> = detailed.iter().map(|d| d.mapping).collect();
            let cigar = detailed.into_iter().next().map(|d| d.cigar);
            (raw, cigar)
        } else {
            let mappings = match &baseline {
                Some(mapper) => mapper.map_read(&record.seq).mappings,
                None => repute.map_read(&record.seq).mappings,
            };
            (mappings, None)
        };
        let resolved = set.resolve_mappings(record.seq.len(), &raw);
        if !resolved.is_empty() {
            reads_mapped += 1;
            total_mappings += resolved.len();
        }
        per_read_for_stats.push(
            resolved
                .iter()
                .map(|r| repute_mappers::Mapping {
                    position: r.position,
                    strand: r.strand,
                    distance: r.distance,
                })
                .collect(),
        );
        sam::write_resolved_record(
            &mut out,
            &names,
            &record.id,
            &record.seq,
            &resolved,
            cigar.as_ref(),
        )?;
    }
    out.flush()?;
    let stats = repute_eval::stats::MappingStats::collect(
        per_read_for_stats.iter().map(|v| v.as_slice()),
    );
    eprint!("{stats}");

    if let Some(platform_name) = &opts.platform {
        report_platform_simulation(platform_name, opts, &repute, baseline.as_deref())?;
    }
    Ok((reads_mapped, total_mappings))
}

/// Re-runs the mapping through the heterogeneous platform simulator and
/// prints the §III-D style time/energy summary.
fn report_platform_simulation(
    platform_name: &str,
    opts: &MapOptions,
    repute: &ReputeMapper,
    baseline: Option<&dyn Mapper>,
) -> Result<(), Box<dyn Error>> {
    use repute_hetsim::profiles;
    let platform = match platform_name {
        "system1" => profiles::system1(),
        "system1-cpu" => profiles::system1_cpu_only(),
        "hikey970" => profiles::system2_hikey970(),
        other => return Err(format!("unknown platform {other:?}").into()),
    };
    // Reload the reads (the SAM pass consumed the reader).
    let reads_file = File::open(&opts.reads)?;
    let mut reads = Vec::new();
    for record in FastqReader::new(BufReader::new(reads_file)) {
        reads.push(record?.seq);
    }
    let shares = platform.even_shares(reads.len());
    let run = match baseline {
        Some(mapper) => map_on_platform(&mapper, &platform, &shares, &reads)?,
        None => map_on_platform(repute, &platform, &shares, &reads)?,
    };
    eprintln!(
        "simulated on {}: {:.3} s | {:.1} W avg | {:.3} J above idle",
        platform.name(),
        run.simulated_seconds,
        run.energy.average_power_w,
        run.energy.energy_j
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --delta 4 --s-min 14 --max-locations 50 --output o.sam --cigar",
        ))
        .unwrap();
        assert_eq!(opts.reference, "r.fa");
        assert_eq!(opts.reads, "q.fq");
        assert_eq!(opts.delta, 4);
        assert_eq!(opts.s_min, 14);
        assert_eq!(opts.max_locations, 50);
        assert_eq!(opts.output.as_deref(), Some("o.sam"));
        assert!(opts.cigar);
    }

    #[test]
    fn defaults_apply() {
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.delta, 5);
        assert_eq!(opts.s_min, 12);
        assert_eq!(opts.max_locations, 100);
        assert_eq!(opts.output, None);
        assert!(!opts.cigar);
    }

    #[test]
    fn missing_required_rejected() {
        assert!(parse_map_args(args("--reads q.fq")).is_err());
        assert!(parse_map_args(args("--reference r.fa")).is_err());
    }

    #[test]
    fn malformed_values_rejected() {
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --delta x")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --max-locations 0")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --bogus")).is_err());
        assert!(parse_map_args(args("--reference")).is_err());
    }

    #[test]
    fn end_to_end_maps_reads_to_sam() {
        use repute_genome::fasta::{write_fasta, FastaRecord};
        use repute_genome::fastq::{write_fastq, FastqRecord};
        use repute_genome::synth::ReferenceBuilder;

        let dir = std::env::temp_dir().join("repute-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let reference = ReferenceBuilder::new(100_000).seed(5).build();
        let ref_path = dir.join("ref.fa");
        let reads_path = dir.join("reads.fq");
        let out_path = dir.join("out.sam");

        let mut f = Vec::new();
        write_fasta(
            &mut f,
            &[FastaRecord::new("chrT", reference.clone())],
            70,
        )
        .unwrap();
        std::fs::write(&ref_path, f).unwrap();

        let reads: Vec<FastqRecord> = (0..5)
            .map(|i| {
                let start = 10_000 + i * 7_000;
                FastqRecord::with_uniform_quality(
                    format!("r{i}"),
                    reference.subseq(start..start + 100),
                    40,
                )
            })
            .collect();
        let mut f = Vec::new();
        write_fastq(&mut f, &reads).unwrap();
        std::fs::write(&reads_path, f).unwrap();

        let opts = MapOptions {
            reference: ref_path.to_string_lossy().into_owned(),
            index: None,
            reads: reads_path.to_string_lossy().into_owned(),
            delta: 3,
            s_min: 15,
            max_locations: 10,
            output: Some(out_path.to_string_lossy().into_owned()),
            cigar: true,
            mapper: MapperChoice::Repute,
            platform: None,
        };
        let (mapped, mappings) = run_map(&opts).unwrap();
        assert_eq!(mapped, 5);
        assert!(mappings >= 5);
        let sam = std::fs::read_to_string(&out_path).unwrap();
        assert!(sam.starts_with("@HD"));
        assert!(sam.contains("@SQ\tSN:chrT\tLN:100000"));
        // Exact reads: primary lines carry perfect-match CIGARs.
        assert!(sam.contains("100="));
        for i in 0..5 {
            assert!(sam.contains(&format!("r{i}\t")));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_subcommand_round_trips_and_multi_ref_maps() {
        use repute_genome::fasta::{write_fasta, FastaRecord};
        use repute_genome::fastq::{write_fastq, FastqRecord};
        use repute_genome::synth::ReferenceBuilder;

        let dir = std::env::temp_dir().join("repute-cli-index-test");
        std::fs::create_dir_all(&dir).unwrap();
        let chr_a = ReferenceBuilder::new(60_000).seed(15).build();
        let chr_b = ReferenceBuilder::new(40_000).seed(16).build();
        let ref_path = dir.join("ref.fa");
        let index_path = dir.join("ref.rpx");
        let reads_path = dir.join("reads.fq");
        let out_path = dir.join("out.sam");

        let mut f = Vec::new();
        write_fasta(
            &mut f,
            &[
                FastaRecord::new("chrA", chr_a.clone()),
                FastaRecord::new("chrB", chr_b.clone()),
            ],
            70,
        )
        .unwrap();
        std::fs::write(&ref_path, f).unwrap();

        // Build the index once.
        run_index(&IndexOptions {
            reference: ref_path.to_string_lossy().into_owned(),
            output: index_path.to_string_lossy().into_owned(),
        })
        .unwrap();

        // One read from each chromosome.
        let reads = vec![
            FastqRecord::with_uniform_quality("fromA", chr_a.subseq(20_000..20_100), 40),
            FastqRecord::with_uniform_quality("fromB", chr_b.subseq(5_000..5_100), 40),
        ];
        let mut f = Vec::new();
        write_fastq(&mut f, &reads).unwrap();
        std::fs::write(&reads_path, f).unwrap();

        // Map via the prebuilt index.
        let opts = parse_map_args(
            format!(
                "--index {} --reads {} --delta 3 --s-min 15 --output {}",
                index_path.display(),
                reads_path.display(),
                out_path.display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        let (mapped, _) = run_map(&opts).unwrap();
        assert_eq!(mapped, 2);
        let sam = std::fs::read_to_string(&out_path).unwrap();
        assert!(sam.contains("@SQ\tSN:chrA\tLN:60000"));
        assert!(sam.contains("@SQ\tSN:chrB\tLN:40000"));
        // Each read resolves to its own chromosome with a local position.
        let line_a = sam.lines().find(|l| l.starts_with("fromA\t")).unwrap();
        assert!(line_a.contains("\tchrA\t"), "{line_a}");
        let line_b = sam.lines().find(|l| l.starts_with("fromB\t")).unwrap();
        assert!(line_b.contains("\tchrB\t5001\t") || line_b.contains("\tchrB\t"), "{line_b}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_args_validation() {
        let opts = parse_simulate_args(args(
            "--out-dir d --length 5000 --reads 10 --read-len 80 --seed 7 --profile perfect",
        ))
        .unwrap();
        assert_eq!(opts.length, 5000);
        assert_eq!(opts.profile, "perfect");
        assert!(parse_simulate_args(args("--length 100")).is_err());
        assert!(parse_simulate_args(args("--out-dir d --profile nope")).is_err());
    }

    #[test]
    fn simulate_then_map_end_to_end() {
        let dir = std::env::temp_dir().join("repute-cli-simulate-test");
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 80_000,
            reads: 25,
            read_len: 100,
            seed: 11,
            profile: "err012100".into(),
        })
        .unwrap();
        assert!(dir.join("reference.fa").exists());
        assert!(dir.join("truth.tsv").exists());
        let truth = std::fs::read_to_string(dir.join("truth.tsv")).unwrap();
        assert_eq!(truth.lines().count(), 26); // header + 25 reads

        let out_path = dir.join("out.sam");
        let opts = parse_map_args(
            format!(
                "--reference {}/reference.fa --reads {}/reads.fq --delta 5 --output {}",
                dir_s,
                dir_s,
                out_path.display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        let (mapped, _) = run_map(&opts).unwrap();
        assert!(mapped >= 23, "only {mapped}/25 simulated reads mapped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_args_validation() {
        assert!(parse_index_args(args("--reference r.fa --output o.rpx")).is_ok());
        assert!(parse_index_args(args("--reference r.fa")).is_err());
        assert!(parse_index_args(args("--output o.rpx")).is_err());
        assert!(parse_index_args(args("--wat")).is_err());
    }

    #[test]
    fn mapper_choice_parses() {
        let opts = parse_map_args(args("--reference r.fa --reads q.fq --mapper coral")).unwrap();
        assert_eq!(opts.mapper, MapperChoice::Coral);
        let opts = parse_map_args(args("--reference r.fa --reads q.fq --mapper bwa-mem")).unwrap();
        assert_eq!(opts.mapper, MapperChoice::BwaMem);
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --mapper nope")).is_err());
        // --cigar only works with the repute mapper.
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --mapper gem --cigar")).is_err());
    }

    #[test]
    fn platform_flag_parses() {
        let opts =
            parse_map_args(args("--reference r.fa --reads q.fq --platform hikey970")).unwrap();
        assert_eq!(opts.platform.as_deref(), Some("hikey970"));
    }

    #[test]
    fn reference_and_index_are_exclusive() {
        assert!(parse_map_args(args("--reference r.fa --index i.rpx --reads q.fq")).is_err());
        assert!(parse_map_args(args("--index i.rpx --reads q.fq")).is_ok());
    }
}
