//! The `repute` command-line mapper.
//!
//! ```text
//! repute map --reference ref.fa --reads reads.fq --delta 5 [options] > out.sam
//! ```
//!
//! Reads a FASTA reference and a FASTQ read set, maps every read with the
//! REPUTE pipeline of [`repute_core`], and writes SAM (with CIGAR — the
//! §IV extension). The logic lives in this library so it can be tested;
//! `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use repute_core::journal::Fnv64;
use repute_core::{
    map_resumable_traced, map_scheduled_with_faults_traced, write_atomic, ReputeConfig,
    ReputeMapper, RunFingerprint, Schedule, ScheduleMode, DEFAULT_MAX_RETRIES,
};
use repute_genome::DnaSeq;

pub use repute_core::ReputeError;
use repute_eval::sam;
use repute_genome::fasta::{read_fasta, AmbiguityPolicy};
use repute_genome::fastq::FastqReader;
use repute_mappers::multiref::ReferenceSet;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like,
    yara::YaraLike, Mapper,
};
use repute_obs::{MapMetrics, RunReport, StageTimer};
use repute_prefilter::{qgram, PrefilterMode};

/// Which mapping strategy `repute map` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapperChoice {
    /// The REPUTE mapper (default).
    #[default]
    Repute,
    /// The CORAL-style serial-heuristic baseline.
    Coral,
    /// The RazerS3-style SWIFT counting baseline.
    Razers3,
    /// The Hobbes3-style q-gram signature baseline.
    Hobbes3,
    /// The Yara-style best-mapper baseline.
    Yara,
    /// The GEM-style adaptive-filtration baseline.
    Gem,
    /// The BWA-MEM-style SMEM best-mapper baseline (ignores δ).
    BwaMem,
}

impl std::str::FromStr for MapperChoice {
    type Err = ParseArgsError;

    fn from_str(s: &str) -> Result<MapperChoice, ParseArgsError> {
        match s.to_ascii_lowercase().as_str() {
            "repute" => Ok(MapperChoice::Repute),
            "coral" => Ok(MapperChoice::Coral),
            "razers3" => Ok(MapperChoice::Razers3),
            "hobbes3" => Ok(MapperChoice::Hobbes3),
            "yara" => Ok(MapperChoice::Yara),
            "gem" => Ok(MapperChoice::Gem),
            "bwa-mem" | "bwamem" => Ok(MapperChoice::BwaMem),
            other => Err(ParseArgsError::new(format!(
                "unknown mapper {other:?} (repute, coral, razers3, hobbes3, yara, gem, bwa-mem)"
            ))),
        }
    }
}

/// Parsed command-line options for `repute map`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOptions {
    /// Path to the FASTA reference (exclusive with `index`).
    pub reference: String,
    /// Path to a prebuilt index from `repute index` (exclusive with
    /// `reference`).
    pub index: Option<String>,
    /// Path of a fingerprint-validated serialized-index cache: load the
    /// FM-index from here when the stored fingerprint matches the
    /// reference FASTA bytes, else build it and save it back (requires
    /// `reference`; meaningless with `index`).
    pub index_cache: Option<String>,
    /// Path to the FASTQ reads.
    pub reads: String,
    /// Error budget δ.
    pub delta: u32,
    /// Minimum k-mer length `S_min`.
    pub s_min: usize,
    /// Output-slot limit per read.
    pub max_locations: usize,
    /// Output path; `None` writes to stdout.
    pub output: Option<String>,
    /// Emit CIGAR strings (slower; full DP traceback per mapping).
    pub cigar: bool,
    /// Which mapping strategy to run.
    pub mapper: MapperChoice,
    /// Pre-alignment filter stage of the repute mapper (sound: changes
    /// cost only, never output).
    pub prefilter: PrefilterMode,
    /// Q-gram length of the bin prefilter.
    pub prefilter_q: usize,
    /// Reference bin width (bases) of the bin prefilter.
    pub prefilter_bin: usize,
    /// Simulated platform to report time/energy for (`system1`,
    /// `system1-cpu`, `hikey970`); `None` skips the simulation report.
    pub platform: Option<String>,
    /// Multi-device scheduling policy of the platform simulation.
    pub schedule: ScheduleMode,
    /// Host-thread cap of the task-parallel executor (`0` = automatic).
    pub host_threads: usize,
    /// Fault-injection plan for the platform simulation (the
    /// [`repute_hetsim::FaultPlan`] spec syntax, e.g.
    /// `"transient:d0@0.1,loss:d2@0.5"`); requires `--platform`.
    pub fault_plan: Option<String>,
    /// Transient-fault retry budget per launch of the simulation.
    pub max_retries: usize,
    /// Path the telemetry JSON-lines are written to; `None` disables the
    /// export.
    pub metrics_out: Option<String>,
    /// Path the Chrome-tracing JSON (`chrome://tracing` /
    /// <https://ui.perfetto.dev>) span file is written to; requires
    /// `--platform` (spans live on the simulated timeline). `None`
    /// disables tracing entirely — the executor allocates nothing.
    pub trace_out: Option<String>,
    /// Per-read trace lines and the full run report on stderr.
    pub verbose: bool,
    /// Path of the crash-safe checkpoint journal (requires
    /// `--platform`); the run commits every finished batch durably and
    /// can be continued with `--resume` after an interruption.
    pub checkpoint: Option<String>,
    /// Replay the completed batches of an existing checkpoint journal
    /// instead of starting over.
    pub resume: bool,
    /// Manifest commit cadence of the checkpointed run, in batches.
    pub checkpoint_every: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            reference: String::new(),
            index: None,
            index_cache: None,
            reads: String::new(),
            delta: 5,
            s_min: 12,
            max_locations: 100,
            output: None,
            cigar: false,
            mapper: MapperChoice::default(),
            prefilter: PrefilterMode::None,
            prefilter_q: qgram::DEFAULT_Q,
            prefilter_bin: qgram::DEFAULT_BIN_WIDTH,
            platform: None,
            schedule: ScheduleMode::Static,
            host_threads: 0,
            fault_plan: None,
            max_retries: DEFAULT_MAX_RETRIES,
            metrics_out: None,
            trace_out: None,
            verbose: false,
            checkpoint: None,
            resume: false,
            checkpoint_every: 1,
        }
    }
}

/// Error for malformed command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError {
    message: String,
}

impl ParseArgsError {
    fn new(message: impl Into<String>) -> ParseArgsError {
        ParseArgsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.message, USAGE)
    }
}

impl Error for ParseArgsError {}

/// Usage text shown on `--help` and argument errors.
pub const USAGE: &str = "\
repute — OpenCL-style heterogeneous short-read mapper (DATE 2020 reproduction)

USAGE:
    repute map      --reference <ref.fa> --reads <reads.fq> [OPTIONS]
    repute map      --index <ref.rpx>    --reads <reads.fq> [OPTIONS]
    repute index    --reference <ref.fa> --output <ref.rpx>
    repute simulate --out-dir <dir> [--length N] [--reads N] [--read-len N]
                    [--seed N] [--profile err012100|srr826460|perfect]
    repute serve    --reference <ref.fa> --socket <sock> [OPTIONS]
    repute serve    --reference <ref.fa> --spool <dir> --once [OPTIONS]
    repute submit   --socket <sock> --reads <reads.fq> [OPTIONS]
    repute stats    <metrics.jsonl> [more.jsonl ...] [--dir <dir>]
    repute trace    <trace.json>

MAP OPTIONS:
    --reference <path>       FASTA reference (multi-record supported)
    --index <path>           prebuilt index from `repute index`
    --index-cache <path>     fingerprint-validated serialized-index
                             cache: load the FM-index from here when it
                             matches the reference, else build and save
                             it back (requires --reference)
    --reads <path>           FASTQ reads (required)
    --delta <n>              error budget δ [default: 5]
    --s-min <n>              minimum k-mer length S_min [default: 12]
    --max-locations <n>      first-n output slots per read [default: 100]
    --output <path>          SAM output path [default: stdout]
    --cigar                  compute CIGAR strings (repute mapper only)
    --mapper <name>          repute | coral | razers3 | hobbes3 | yara |
                             gem | bwa-mem [default: repute]
    --prefilter <mode>       pre-alignment filtration before Myers
                             verification (repute mapper only):
                             none | shd | qgram | both [default: none]
    --prefilter-q <n>        q-gram length of the bin prefilter
                             [default: 5, max 8]
    --prefilter-bin <n>      reference bin width (bases) of the bin
                             prefilter [default: 512]
    --platform <name>        also report simulated time/energy on
                             system1 | system1-cpu | hikey970
    --schedule <mode>        multi-device scheduling of the platform
                             simulation: static (fixed per-device shares)
                             | dynamic (devices greedily pull batches)
                             [default: static]
    --host-threads <n>       cap the executor's host threads (1 = the
                             sequential host of earlier releases)
                             [default: automatic]
    --fault-plan <spec>      inject faults into the platform simulation
                             (requires --platform); comma-separated
                             events: loss:d<dev>@<t> |
                             transient:d<dev>@<t>[x<count>] |
                             slow:d<dev>@<t>x<factor> |
                             correlated:d<a>+d<b>+...@<t> |
                             crash:@<t> (host crash; requires
                             --checkpoint)  (times are simulated seconds)
    --max-retries <n>        transient-fault retry budget per launch of
                             the simulation [default: 2]
    --checkpoint <path>      crash-safe run journal (requires
                             --platform): every finished batch is
                             committed durably; an interrupted run is
                             continued with --resume, bit-identical to an
                             uninterrupted one
    --resume                 replay the completed batches of an existing
                             checkpoint journal and finish the rest
    --checkpoint-every <n>   manifest commit cadence of the checkpointed
                             run, in batches [default: 1]
    --metrics-out <path>     write per-read and run-level telemetry as
                             JSON-lines (inspect with `repute stats`)
    --trace-out <path>       write the simulated run's spans as Chrome
                             trace JSON (requires --platform); open in
                             chrome://tracing / ui.perfetto.dev or
                             summarize with `repute trace`
    -v, --verbose, --trace   per-read trace lines and the full run report
                             on stderr
    --help                   print this text

SERVE OPTIONS:
    --socket <path>          listen on a Unix-domain socket (newline-
                             delimited JSON job envelopes in, typed
                             responses out)
    --spool <dir>            watch a directory of *.json job files
                             instead; --once processes one pass and
                             exits (deterministic, for tests/CI)
    --journal <path>         crash-safe job journal: every accepted job
                             and every finished batch is committed
                             durably; restart with --resume to lose at
                             most one in-flight batch
    --resume                 replay a daemon journal: committed job
                             responses are served from the journal,
                             uncommitted jobs are requeued
    --queue-capacity <n>     admission-queue bound; a full queue answers
                             RETRY_LATER [default: 64]
    --max-reads-per-job <n>  reject jobs above this read count [default:
                             the platform's quarter-RAM batch cap]
    --max-delta <n>          reject per-job delta overrides above this
                             [default: 16]
    --tenant-weight <n=w>    weighted-fair dequeue weight of tenant n
                             (repeatable; unlisted tenants weigh 1.0)
    --tenant-quota <n=r>     sliding-window read budget of tenant n; an
                             exceeded budget answers QUOTA_EXCEEDED
                             (repeatable; unlisted tenants unbudgeted)
    --quota-window <s>       quota window length in simulated seconds
                             [default: 60]
    --journal-compact-threshold <n>
                             rewrite the journal down to live records
                             once n dead records accumulate (requires
                             --journal; 0 disables) [default: 0]
    --fault-plan <spec>      inject device faults into the daemon's
                             simulated platform (loss: | transient: |
                             slow: | correlated: events; crash:@<t> is
                             rejected — use --journal/--resume); lost
                             devices shrink the queue bound and read
                             cap, all-lost drains SERVICE_UNAVAILABLE
    --max-retries <n>        transient-fault retry budget of every
                             batch execution [default: 2]
    --shed-overdue           shed queued jobs whose deadline already
                             passed with DEADLINE_EXCEEDED instead of
                             running them late
    --serial-batches         run one batch at a time (disable the
                             concurrent same-config batch groups)
    --metrics-dir <dir>      per-job telemetry spool (one *.jsonl per
                             job; inspect with `repute stats --dir`)
    plus the map options: --index-cache, --delta, --s-min,
    --max-locations, --prefilter[-q|-bin], --schedule [default:
    dynamic], --host-threads, --metrics-out, --trace-out

SUBMIT OPTIONS:
    --socket <path>          the daemon's socket (required)
    --reads <path>           FASTQ reads, loaded client-side
    --id <name> / --tenant <name> / --delta <n> / --prefilter <mode> /
    --mapper <name>          job envelope fields
    --deadline <s>           relative deadline in simulated seconds;
                             deadline jobs dequeue earliest-first
    --priority <n>           intra-tenant priority (higher first)
    --output <path>          SAM output path [default: stdout]
    --retry <n>              resubmit up to n times on RETRY_LATER with
                             exponential backoff [default: 0]
    --retry-base-ms <ms>     base backoff delay, doubled per attempt
                             [default: 100]
    --shutdown               drain the daemon and stop it

STATS OPTIONS:
    --dir <dir>              also read every *.jsonl file in <dir>
                             (name-sorted); counters merge and latency
                             samples pool across all inputs
    --strict                 error on the first malformed JSON line
                             instead of skipping it with a warning

TRACE OPTIONS:
    (none)                   `repute trace <trace.json>` summarizes a
                             --trace-out file: events, per-process span
                             totals, per-category latency percentiles

EXIT CODES:
    0 success | 2 configuration | 3 input parse | 4 i/o
    5 journal corrupt | 6 resume mismatch | 7 device loss
    8 interrupted by a simulated host crash (continue with --resume)";

/// Parses `repute map` arguments (everything after the subcommand).
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags, missing values, or
/// missing required options.
pub fn parse_map_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<MapOptions, ParseArgsError> {
    let mut opts = MapOptions::default();
    let mut args = args.into_iter();
    let mut have_reference = false;
    let mut have_reads = false;
    let mut have_checkpoint_every = false;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--reference" => {
                opts.reference = value("--reference")?;
                have_reference = true;
            }
            "--index" => {
                opts.index = Some(value("--index")?);
                have_reference = true;
            }
            "--index-cache" => opts.index_cache = Some(value("--index-cache")?),
            "--reads" => {
                opts.reads = value("--reads")?;
                have_reads = true;
            }
            "--delta" => {
                opts.delta = value("--delta")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--delta expects an integer"))?;
            }
            "--s-min" => {
                opts.s_min = value("--s-min")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--s-min expects an integer"))?;
            }
            "--max-locations" => {
                opts.max_locations = value("--max-locations")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-locations expects an integer"))?;
                if opts.max_locations == 0 {
                    return Err(ParseArgsError::new("--max-locations must be positive"));
                }
            }
            "--output" => opts.output = Some(value("--output")?),
            "--cigar" => opts.cigar = true,
            "--mapper" => opts.mapper = value("--mapper")?.parse()?,
            "--prefilter" => {
                opts.prefilter = value("--prefilter")?
                    .parse()
                    .map_err(|e| ParseArgsError::new(format!("--prefilter: {e}")))?;
            }
            "--prefilter-q" => {
                opts.prefilter_q = value("--prefilter-q")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--prefilter-q expects an integer"))?;
                if opts.prefilter_q == 0 || opts.prefilter_q > qgram::MAX_Q {
                    return Err(ParseArgsError::new(format!(
                        "--prefilter-q must be in 1..={}",
                        qgram::MAX_Q
                    )));
                }
            }
            "--prefilter-bin" => {
                opts.prefilter_bin = value("--prefilter-bin")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--prefilter-bin expects an integer"))?;
                if opts.prefilter_bin == 0 {
                    return Err(ParseArgsError::new("--prefilter-bin must be positive"));
                }
            }
            "--platform" => opts.platform = Some(value("--platform")?),
            "--schedule" => {
                let mode = value("--schedule")?;
                opts.schedule = ScheduleMode::parse(&mode).ok_or_else(|| {
                    ParseArgsError::new(format!("unknown schedule {mode:?} (static, dynamic)"))
                })?;
            }
            "--host-threads" => {
                opts.host_threads = value("--host-threads")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--host-threads expects an integer"))?;
                if opts.host_threads == 0 {
                    return Err(ParseArgsError::new(
                        "--host-threads must be positive (omit the flag for automatic)",
                    ));
                }
            }
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                repute_hetsim::FaultPlan::parse(&spec)
                    .map_err(|e| ParseArgsError::new(format!("--fault-plan: {e}")))?;
                opts.fault_plan = Some(spec);
            }
            "--max-retries" => {
                opts.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-retries expects an integer"))?;
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?),
            "--resume" => opts.resume = true,
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--checkpoint-every expects an integer"))?;
                if opts.checkpoint_every == 0 {
                    return Err(ParseArgsError::new("--checkpoint-every must be positive"));
                }
                have_checkpoint_every = true;
            }
            "-v" | "--verbose" | "--trace" => opts.verbose = true,
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if opts.fault_plan.is_some() && opts.platform.is_none() {
        return Err(ParseArgsError::new(
            "--fault-plan requires --platform (faults live in the simulation)",
        ));
    }
    if opts.trace_out.is_some() && opts.platform.is_none() {
        return Err(ParseArgsError::new(
            "--trace-out requires --platform (spans live on the simulated timeline)",
        ));
    }
    if opts.checkpoint.is_some() && opts.platform.is_none() {
        return Err(ParseArgsError::new(
            "--checkpoint requires --platform (the journal is batch-granular \
             over the simulated schedule)",
        ));
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err(ParseArgsError::new("--resume requires --checkpoint"));
    }
    if have_checkpoint_every && opts.checkpoint.is_none() {
        return Err(ParseArgsError::new(
            "--checkpoint-every requires --checkpoint",
        ));
    }
    if opts.checkpoint.is_some() && opts.cigar {
        return Err(ParseArgsError::new(
            "--cigar is incompatible with --checkpoint (CIGAR traceback is \
             per-read, the journal is per-batch)",
        ));
    }
    if let Some(spec) = &opts.fault_plan {
        // The spec already parsed above; re-parse to classify its events.
        if let Ok(plan) = repute_hetsim::FaultPlan::parse(spec) {
            if plan.host_crash_at().is_some() && opts.checkpoint.is_none() {
                return Err(ParseArgsError::new(
                    "crash:@<t> events require --checkpoint (only a journaled \
                     run can survive a host crash)",
                ));
            }
            if opts.checkpoint.is_some() && plan.has_device_events() {
                return Err(ParseArgsError::new(
                    "checkpointed runs accept crash:@<t> fault events only \
                     (device faults would make the journaled timeline \
                     irreproducible)",
                ));
            }
        }
    }
    if opts.cigar && opts.mapper != MapperChoice::Repute {
        return Err(ParseArgsError::new("--cigar requires the repute mapper"));
    }
    if opts.prefilter != PrefilterMode::None && opts.mapper != MapperChoice::Repute {
        return Err(ParseArgsError::new(
            "--prefilter requires the repute mapper",
        ));
    }
    if !have_reference {
        return Err(ParseArgsError::new("--reference or --index is required"));
    }
    if opts.index.is_some() && !opts.reference.is_empty() {
        return Err(ParseArgsError::new(
            "--reference and --index are mutually exclusive",
        ));
    }
    if opts.index_cache.is_some() && opts.index.is_some() {
        return Err(ParseArgsError::new(
            "--index-cache requires --reference (a prebuilt --index is \
             already the cache)",
        ));
    }
    if !have_reads {
        return Err(ParseArgsError::new("--reads is required"));
    }
    Ok(opts)
}

/// Parsed command-line options for `repute index`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexOptions {
    /// Path to the FASTA reference.
    pub reference: String,
    /// Output path for the binary index.
    pub output: String,
}

/// Parses `repute index` arguments.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags or missing options.
pub fn parse_index_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<IndexOptions, ParseArgsError> {
    let mut opts = IndexOptions::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--reference" => opts.reference = value("--reference")?,
            "--output" => opts.output = value("--output")?,
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if opts.reference.is_empty() {
        return Err(ParseArgsError::new("--reference is required"));
    }
    if opts.output.is_empty() {
        return Err(ParseArgsError::new("--output is required"));
    }
    Ok(opts)
}

/// Parsed command-line options for `repute simulate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateOptions {
    /// Directory the FASTA/FASTQ/truth files are written into.
    pub out_dir: String,
    /// Reference length in bases.
    pub length: usize,
    /// Number of reads.
    pub reads: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Error profile name.
    pub profile: String,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            out_dir: String::new(),
            length: 1_000_000,
            reads: 10_000,
            read_len: 100,
            seed: 42,
            profile: "err012100".into(),
        }
    }
}

/// Parses `repute simulate` arguments.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags or missing options.
pub fn parse_simulate_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<SimulateOptions, ParseArgsError> {
    let mut opts = SimulateOptions::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        let int = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| ParseArgsError::new(format!("{name} expects an integer")))
        };
        match arg.as_str() {
            "--out-dir" => opts.out_dir = value("--out-dir")?,
            "--length" => opts.length = int("--length", value("--length")?)? as usize,
            "--reads" => opts.reads = int("--reads", value("--reads")?)? as usize,
            "--read-len" => opts.read_len = int("--read-len", value("--read-len")?)? as usize,
            "--seed" => opts.seed = int("--seed", value("--seed")?)?,
            "--profile" => opts.profile = value("--profile")?,
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if opts.out_dir.is_empty() {
        return Err(ParseArgsError::new("--out-dir is required"));
    }
    if !matches!(opts.profile.as_str(), "err012100" | "srr826460" | "perfect") {
        return Err(ParseArgsError::new(format!(
            "unknown profile {:?} (err012100, srr826460, perfect)",
            opts.profile
        )));
    }
    Ok(opts)
}

/// Runs `repute simulate`: writes `reference.fa`, `reads.fq` and
/// `truth.tsv` into the output directory.
///
/// # Errors
///
/// Propagates I/O and generation errors.
pub fn run_simulate(opts: &SimulateOptions) -> Result<(), ReputeError> {
    use repute_genome::fasta::{write_fasta, FastaRecord};
    use repute_genome::fastq::write_fastq;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    let dir = std::path::Path::new(&opts.out_dir);
    std::fs::create_dir_all(dir).map_err(|e| ReputeError::io_at(dir, e))?;
    eprintln!("generating a {} bp reference…", opts.length);
    let reference = ReferenceBuilder::new(opts.length).seed(opts.seed).build();
    let profile = match opts.profile.as_str() {
        "err012100" => ErrorProfile::err012100(),
        "srr826460" => ErrorProfile::srr826460(),
        _ => ErrorProfile::perfect(),
    };
    let sim = ReadSimulator::new(opts.read_len, opts.reads)
        .profile(profile)
        .seed(opts.seed ^ 0x5EED);
    let records = sim.simulate_fastq(&reference);

    let fa = File::create(dir.join("reference.fa"))?;
    write_fasta(
        BufWriter::new(fa),
        &[FastaRecord::new("chrSim", reference)],
        70,
    )?;
    let fq = File::create(dir.join("reads.fq"))?;
    write_fastq(
        BufWriter::new(fq),
        &records.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>(),
    )?;
    let mut truth = BufWriter::new(File::create(dir.join("truth.tsv"))?);
    writeln!(truth, "read	strand	position	edits")?;
    for (record, origin) in &records {
        match origin {
            Some(o) => writeln!(
                truth,
                "{}	{}	{}	{}",
                record.id,
                o.strand.symbol(),
                o.position,
                o.edits
            )?,
            None => writeln!(truth, "{}	*	*	*", record.id)?,
        }
    }
    truth.flush()?;
    eprintln!(
        "wrote reference.fa ({} bp), reads.fq ({} reads), truth.tsv into {:?}",
        opts.length, opts.reads, opts.out_dir
    );
    Ok(())
}

fn load_reference_set(opts: &MapOptions) -> Result<ReferenceSet, ReputeError> {
    if let Some(index_path) = &opts.index {
        let path = Path::new(index_path);
        let file = File::open(path).map_err(|e| ReputeError::io_at(path, e))?;
        eprintln!("loading prebuilt index {index_path:?}…");
        return ReferenceSet::read_from(BufReader::new(file)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                ReputeError::InputParse(format!("index {index_path:?}: {e}"))
            } else {
                ReputeError::io_at(path, e)
            }
        });
    }
    let path = Path::new(&opts.reference);
    let source = std::fs::read(path).map_err(|e| ReputeError::io_at(path, e))?;
    if let Some(cache) = &opts.index_cache {
        if let Some(set) = try_load_index_cache(cache, &source) {
            eprintln!("index cache hit: loaded {cache:?} (fingerprint matches the reference)");
            return Ok(set);
        }
    }
    let records = read_fasta(source.as_slice(), AmbiguityPolicy::Randomize(0))?;
    if records.is_empty() {
        return Err(ReputeError::InputParse(
            "reference FASTA contains no sequence".into(),
        ));
    }
    let total: usize = records.iter().map(|r| r.seq.len()).sum();
    eprintln!("indexing {} record(s), {total} bp…", records.len());
    let set = ReferenceSet::build(records.into_iter().map(|r| (r.id, r.seq)).collect());
    if let Some(cache) = &opts.index_cache {
        save_index_cache(cache, &source, &set)?;
        eprintln!("index cache miss: rebuilt the index and saved it to {cache:?}");
    }
    Ok(set)
}

/// Magic prefix of an `--index-cache` file; followed by the FNV-64
/// fingerprint of the reference FASTA bytes (little-endian) and the
/// serialized [`ReferenceSet`].
const INDEX_CACHE_MAGIC: &[u8; 4] = b"RPXC";

/// FNV-64 over the raw reference FASTA bytes — the validity condition of
/// a cached index.
fn index_cache_fingerprint(source: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(source);
    h.finish()
}

/// Loads a cached index when the magic and fingerprint match `source`.
/// Any mismatch, corruption, or absence returns `None`: a stale cache is
/// never an error, just a rebuild.
fn try_load_index_cache(cache: &str, source: &[u8]) -> Option<ReferenceSet> {
    let bytes = std::fs::read(cache).ok()?;
    if bytes.len() < 12 || &bytes[..4] != INDEX_CACHE_MAGIC {
        return None;
    }
    let stored = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    if stored != index_cache_fingerprint(source) {
        return None;
    }
    ReferenceSet::read_from(&bytes[12..]).ok()
}

/// Atomically writes `set` to the cache path, stamped with the
/// fingerprint of the reference bytes it was built from.
fn save_index_cache(cache: &str, source: &[u8], set: &ReferenceSet) -> Result<(), ReputeError> {
    let cache_path = Path::new(cache);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(INDEX_CACHE_MAGIC);
    bytes.extend_from_slice(&index_cache_fingerprint(source).to_le_bytes());
    set.write_to(&mut bytes)
        .map_err(|e| ReputeError::io_at(cache_path, e))?;
    write_atomic(cache_path, &bytes)
}

/// Runs `repute index`: builds the reference set and writes the binary
/// index.
///
/// # Errors
///
/// Propagates I/O, format and construction errors.
pub fn run_index(opts: &IndexOptions) -> Result<(), ReputeError> {
    let set = load_reference_set(&MapOptions {
        reference: opts.reference.clone(),
        ..MapOptions::default()
    })?;
    let out_path = Path::new(&opts.output);
    let out = File::create(out_path).map_err(|e| ReputeError::io_at(out_path, e))?;
    set.write_to(BufWriter::new(out))
        .map_err(|e| ReputeError::io_at(out_path, e))?;
    eprintln!(
        "wrote index for {} record(s) to {:?}",
        set.records().len(),
        opts.output
    );
    Ok(())
}

/// The mapping configuration an option set selects.
fn build_config(opts: &MapOptions) -> Result<ReputeConfig, ReputeError> {
    Ok(ReputeConfig::new(opts.delta, opts.s_min)
        .map_err(|e| ReputeError::Config(e.to_string()))?
        .with_max_locations(opts.max_locations)
        .with_prefilter(opts.prefilter)
        .with_prefilter_qgram(opts.prefilter_q, opts.prefilter_bin)
        .with_schedule(opts.schedule)
        .with_host_threads(opts.host_threads)
        .with_max_retries(opts.max_retries))
}

/// The baseline mapper an option set selects (`None` = repute itself).
fn build_baseline(opts: &MapOptions, set: &ReferenceSet) -> Option<Box<dyn Mapper>> {
    match opts.mapper {
        MapperChoice::Repute => None,
        MapperChoice::Coral => Some(Box::new(
            CoralLike::new(Arc::clone(set.indexed()), opts.delta)
                .with_s_min(opts.s_min)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Razers3 => Some(Box::new(
            Razers3Like::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Hobbes3 => Some(Box::new(
            Hobbes3Like::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Yara => Some(Box::new(
            YaraLike::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::Gem => Some(Box::new(
            GemLike::new(Arc::clone(set.indexed()), opts.delta)
                .with_max_locations(opts.max_locations),
        )),
        MapperChoice::BwaMem => Some(Box::new(
            BwaMemLike::new(Arc::clone(set.indexed())).with_max_locations(opts.max_locations),
        )),
    }
}

/// Routes assembled SAM bytes to their destination: an atomic
/// write-then-rename for a file path, a plain stream for stdout.
fn write_sam_output(path: Option<&str>, sam: &[u8]) -> Result<(), ReputeError> {
    match path {
        Some(p) => write_atomic(Path::new(p), sam),
        None => {
            let mut out = std::io::stdout().lock();
            out.write_all(sam)?;
            out.flush()?;
            Ok(())
        }
    }
}

/// Runs `repute map`, writing SAM to the configured output.
///
/// Returns `(reads_mapped, mappings_reported)`.
///
/// # Errors
///
/// Propagates I/O, format and configuration errors, each carrying the
/// distinct exit code of its [`ReputeError`] class.
pub fn run_map(opts: &MapOptions) -> Result<(usize, usize), ReputeError> {
    if opts.checkpoint.is_some() {
        return run_map_checkpointed(opts);
    }
    // Fail fast on an unknown platform: the simulated replay only runs
    // after mapping, and a late configuration error must not come after
    // SAM has already been emitted.
    if let Some(name) = opts.platform.as_deref() {
        platform_by_name(name)?;
    }
    let run_started = std::time::Instant::now();
    let mut timer = StageTimer::new();
    timer.start("load");
    let set = load_reference_set(opts)?;
    timer.stop();
    let names: Vec<&str> = set.records().iter().map(|(n, _)| n.as_str()).collect();
    let header: Vec<(&str, usize)> = set
        .records()
        .iter()
        .map(|(n, l)| (n.as_str(), *l))
        .collect();
    let config = build_config(opts)?;
    let repute = ReputeMapper::new(Arc::clone(set.indexed()), config);
    let baseline = build_baseline(opts, &set);

    let reads_path = Path::new(&opts.reads);
    let reads_file = File::open(reads_path).map_err(|e| ReputeError::io_at(reads_path, e))?;
    // SAM is assembled in memory and committed in one atomic rename so
    // an interrupted run never leaves a torn output file behind.
    let mut out: Vec<u8> = Vec::new();
    sam::write_header_multi(&mut out, &header)?;

    let mut reads_mapped = 0usize;
    let mut total_mappings = 0usize;
    let mut per_read_for_stats: Vec<Vec<repute_mappers::Mapping>> = Vec::new();
    let mut per_read_metrics: Vec<MapMetrics> = Vec::new();
    timer.start("map");
    for record in FastqReader::new(BufReader::new(reads_file)) {
        let record = record?;
        let mut read_metrics = MapMetrics::new();
        let (raw, cigar) = if opts.cigar {
            // The CIGAR path only backfills the coarse counters
            // observable from its output (the traceback re-runs the
            // kernel internally, so full metering would double-count).
            let (out, detailed) = repute.map_read_with_cigars(&record.seq);
            read_metrics.candidates_merged += out.candidates;
            read_metrics.hits += out.mappings.len() as u64;
            let raw: Vec<_> = detailed.iter().map(|d| d.mapping).collect();
            let cigar = detailed.into_iter().next().map(|d| d.cigar);
            (raw, cigar)
        } else {
            let mappings = match &baseline {
                Some(mapper) => {
                    mapper
                        .map_read_metered(&record.seq, &mut read_metrics)
                        .mappings
                }
                None => {
                    repute
                        .map_read_metered(&record.seq, &mut read_metrics)
                        .mappings
                }
            };
            (mappings, None)
        };
        if opts.verbose {
            eprintln!(
                "trace {}: {} mappings | {} seeds | {} candidates ({} raw) | {} DP cells | {} word updates",
                record.id,
                raw.len(),
                read_metrics.seeds_selected,
                read_metrics.candidates_merged,
                read_metrics.candidates_raw,
                read_metrics.dp_cells,
                read_metrics.word_updates,
            );
        }
        per_read_metrics.push(read_metrics);
        let resolved = set.resolve_mappings(record.seq.len(), &raw);
        if !resolved.is_empty() {
            reads_mapped += 1;
            total_mappings += resolved.len();
        }
        per_read_for_stats.push(
            resolved
                .iter()
                .map(|r| repute_mappers::Mapping {
                    position: r.position,
                    strand: r.strand,
                    distance: r.distance,
                })
                .collect(),
        );
        sam::write_resolved_record(
            &mut out,
            &names,
            &record.id,
            &record.seq,
            &resolved,
            cigar.as_ref(),
        )?;
    }
    write_sam_output(opts.output.as_deref(), &out)?;
    timer.stop();
    let stats =
        repute_eval::stats::MappingStats::collect(per_read_for_stats.iter().map(|v| v.as_slice()));
    eprint!("{stats}");

    let sim = match &opts.platform {
        Some(platform_name) => {
            timer.start("simulate");
            let sim = simulate_platform(platform_name, opts, &repute, baseline.as_deref());
            timer.stop();
            Some(sim?)
        }
        None => None,
    };
    if opts.verbose {
        if let Some((report, _)) = &sim {
            eprint!("{}", report.render());
        }
    }
    if let Some(path) = &opts.metrics_out {
        write_metrics_file(
            path,
            timer.stages(),
            run_started.elapsed().as_secs_f64(),
            &per_read_metrics,
            sim,
        )?;
        eprintln!("wrote telemetry to {path:?} (inspect with `repute stats`)");
    }
    Ok((reads_mapped, total_mappings))
}

/// Resolves a `--platform` name to its simulated device profile.
fn platform_by_name(name: &str) -> Result<repute_hetsim::Platform, ReputeError> {
    use repute_hetsim::profiles;
    match name {
        "system1" => Ok(profiles::system1()),
        "system1-cpu" => Ok(profiles::system1_cpu_only()),
        "hikey970" => Ok(profiles::system2_hikey970()),
        other => Err(ReputeError::Config(format!("unknown platform {other:?}"))),
    }
}

/// Parses the `--fault-plan` spec (empty plan when absent).
fn parse_fault_plan(opts: &MapOptions) -> Result<repute_hetsim::FaultPlan, ReputeError> {
    match &opts.fault_plan {
        Some(spec) => repute_hetsim::FaultPlan::parse(spec)
            .map_err(|e| ReputeError::Config(format!("--fault-plan: {e}"))),
        None => Ok(repute_hetsim::FaultPlan::new()),
    }
}

/// The config/workload identity of a checkpointed run.
///
/// The config half folds every option that can change mapping output or
/// batch shape; the workload half folds the reference source bytes, the
/// indexed record table, and every read id and sequence. A `--resume`
/// under any difference is refused with [`ReputeError::ResumeMismatch`]
/// before any mapping work happens (the batch *shape* is fingerprinted
/// separately by the resumable executor itself).
fn run_fingerprint(
    opts: &MapOptions,
    platform_name: &str,
    set: &ReferenceSet,
    ids: &[String],
    reads: &[DnaSeq],
) -> Result<RunFingerprint, ReputeError> {
    let mut cfg = Fnv64::new();
    cfg.write_u64(u64::from(opts.delta));
    cfg.write_u64(opts.s_min as u64);
    cfg.write_u64(opts.max_locations as u64);
    cfg.write_u64(match opts.prefilter {
        PrefilterMode::None => 0,
        PrefilterMode::Shd => 1,
        PrefilterMode::Qgram => 2,
        PrefilterMode::Both => 3,
    });
    cfg.write_u64(opts.prefilter_q as u64);
    cfg.write_u64(opts.prefilter_bin as u64);
    cfg.write_u64(match opts.schedule {
        ScheduleMode::Static => 0,
        ScheduleMode::Dynamic => 1,
    });
    cfg.write_u64(opts.mapper as u64);
    cfg.write(platform_name.as_bytes());

    let mut wl = Fnv64::new();
    let ref_source = opts.index.as_ref().unwrap_or(&opts.reference);
    let source_path = Path::new(ref_source.as_str());
    let source_bytes =
        std::fs::read(source_path).map_err(|e| ReputeError::io_at(source_path, e))?;
    wl.write(&source_bytes);
    for (name, len) in set.records() {
        wl.write(name.as_bytes());
        wl.write_u64(*len as u64);
    }
    wl.write_u64(reads.len() as u64);
    for (id, seq) in ids.iter().zip(reads) {
        wl.write(id.as_bytes());
        wl.write(seq.to_string().as_bytes());
    }
    Ok(RunFingerprint::new(cfg.finish(), wl.finish()))
}

/// Runs `repute map --checkpoint`: the platform simulation goes through
/// the crash-safe resumable executor, which commits every finished batch
/// to the journal; SAM and telemetry are then assembled from the
/// (possibly partially replayed) run, bit-identical to an uninterrupted
/// `--platform` run.
fn run_map_checkpointed(opts: &MapOptions) -> Result<(usize, usize), ReputeError> {
    let journal = opts.checkpoint.as_deref().ok_or_else(|| {
        ReputeError::Config("checkpointed mapping requires a journal path".into())
    })?;
    let platform_name = opts
        .platform
        .as_deref()
        .ok_or_else(|| ReputeError::Config("--checkpoint requires --platform".into()))?;
    if opts.cigar {
        return Err(ReputeError::Config(
            "--cigar is incompatible with --checkpoint (CIGAR traceback is \
             per-read, the journal is per-batch)"
                .into(),
        ));
    }
    let platform = platform_by_name(platform_name)?;
    let run_started = std::time::Instant::now();
    let mut timer = StageTimer::new();
    timer.start("load");
    let set = load_reference_set(opts)?;
    let reads_path = Path::new(&opts.reads);
    let reads_file = File::open(reads_path).map_err(|e| ReputeError::io_at(reads_path, e))?;
    let mut ids: Vec<String> = Vec::new();
    let mut reads: Vec<DnaSeq> = Vec::new();
    for record in FastqReader::new(BufReader::new(reads_file)) {
        let record = record?;
        ids.push(record.id);
        reads.push(record.seq);
    }
    timer.stop();

    let config = build_config(opts)?;
    let repute = ReputeMapper::new(Arc::clone(set.indexed()), config);
    let baseline = build_baseline(opts, &set);
    let config = repute.config();
    let schedule = Schedule::for_config(config, &platform, reads.len());
    let plan = parse_fault_plan(opts)?;
    if plan.has_device_events() {
        return Err(ReputeError::Config(
            "checkpointed runs accept crash:@<t> fault events only (device \
             faults would make the journaled timeline irreproducible)"
                .into(),
        ));
    }

    let fingerprint = run_fingerprint(opts, platform_name, &set, &ids, &reads)?;
    let journal_path = Path::new(journal);
    if journal_path.exists() && !opts.resume {
        return Err(ReputeError::Config(format!(
            "checkpoint journal {journal:?} already exists; pass --resume to \
             continue it, or delete it to start over"
        )));
    }
    if !journal_path.exists() && opts.resume {
        return Err(ReputeError::Config(format!(
            "cannot resume: checkpoint journal {journal:?} does not exist"
        )));
    }

    timer.start("map");
    let threads = config.host_threads();
    let tracing = opts.trace_out.is_some();
    let outcome = match baseline.as_deref() {
        Some(mapper) => map_resumable_traced(
            &mapper,
            &platform,
            &schedule,
            threads,
            &plan,
            journal_path,
            fingerprint,
            opts.checkpoint_every,
            tracing,
            &reads,
        )?,
        None => map_resumable_traced(
            &repute,
            &platform,
            &schedule,
            threads,
            &plan,
            journal_path,
            fingerprint,
            opts.checkpoint_every,
            tracing,
            &reads,
        )?,
    };
    timer.stop();
    if let Some(path) = &opts.trace_out {
        write_trace_file(path, &platform, &outcome.run.trace)?;
        eprintln!("wrote span trace to {path:?} (open in chrome://tracing, or `repute trace`)");
    }
    eprintln!(
        "simulated on {} ({} schedule): {:.3} s | {:.1} W avg | {:.3} J above idle",
        platform.name(),
        config.schedule(),
        outcome.run.simulated_seconds,
        outcome.run.energy.average_power_w,
        outcome.run.energy.energy_j
    );
    if outcome.resumed_batches > 0 {
        eprintln!(
            "resumed from checkpoint: {}/{} batch(es) replayed from the journal",
            outcome.resumed_batches, outcome.total_batches
        );
    }

    // Assemble the SAM exactly as the streaming path would have: the
    // resumable executor returns outputs in read order.
    let names: Vec<&str> = set.records().iter().map(|(n, _)| n.as_str()).collect();
    let header: Vec<(&str, usize)> = set
        .records()
        .iter()
        .map(|(n, l)| (n.as_str(), *l))
        .collect();
    let mut out: Vec<u8> = Vec::new();
    sam::write_header_multi(&mut out, &header)?;
    let mut reads_mapped = 0usize;
    let mut total_mappings = 0usize;
    let mut per_read_for_stats: Vec<Vec<repute_mappers::Mapping>> = Vec::new();
    for ((id, seq), mapped) in ids.iter().zip(&reads).zip(&outcome.run.outputs) {
        let resolved = set.resolve_mappings(seq.len(), &mapped.mappings);
        if !resolved.is_empty() {
            reads_mapped += 1;
            total_mappings += resolved.len();
        }
        per_read_for_stats.push(
            resolved
                .iter()
                .map(|r| repute_mappers::Mapping {
                    position: r.position,
                    strand: r.strand,
                    distance: r.distance,
                })
                .collect(),
        );
        sam::write_resolved_record(&mut out, &names, id, seq, &resolved, None)?;
    }
    write_sam_output(opts.output.as_deref(), &out)?;
    let stats =
        repute_eval::stats::MappingStats::collect(per_read_for_stats.iter().map(|v| v.as_slice()));
    eprint!("{stats}");

    let mut report = outcome.run.report(&platform, &outcome.metrics);
    report.resumed_batches = outcome.resumed_batches as u64;
    if opts.verbose {
        eprint!("{}", report.render());
    }
    if let Some(path) = &opts.metrics_out {
        write_metrics_file(
            path,
            timer.stages(),
            run_started.elapsed().as_secs_f64(),
            &outcome.metrics,
            Some((report, outcome.metrics.clone())),
        )?;
        eprintln!("wrote telemetry to {path:?} (inspect with `repute stats`)");
    }
    Ok((reads_mapped, total_mappings))
}

/// Re-runs the mapping through the heterogeneous platform simulator,
/// prints the §III-D style time/energy summary, and returns the run-level
/// report with the per-read records of the simulated run.
fn simulate_platform(
    platform_name: &str,
    opts: &MapOptions,
    repute: &ReputeMapper,
    baseline: Option<&dyn Mapper>,
) -> Result<(RunReport, Vec<MapMetrics>), ReputeError> {
    let platform = platform_by_name(platform_name)?;
    // Reload the reads (the SAM pass consumed the reader).
    let reads_path = Path::new(&opts.reads);
    let reads_file = File::open(reads_path).map_err(|e| ReputeError::io_at(reads_path, e))?;
    let mut reads = Vec::new();
    for record in FastqReader::new(BufReader::new(reads_file)) {
        reads.push(record?.seq);
    }
    // The schedule and host-thread cap travel in the mapper's config
    // (`--schedule` / `--host-threads`); output is identical across
    // schedules, only the simulated timeline differs. A `--fault-plan`
    // routes through the fault-aware executor: whenever at least one
    // device survives, the mapping output is still bit-identical.
    let config = repute.config();
    let schedule = Schedule::for_config(config, &platform, reads.len());
    let plan = parse_fault_plan(opts)?;
    let threads = config.host_threads();
    let tracing = opts.trace_out.is_some();
    let (run, metrics) = match baseline {
        Some(mapper) => map_scheduled_with_faults_traced(
            &mapper,
            &platform,
            &schedule,
            threads,
            &plan,
            config.max_retries(),
            tracing,
            &reads,
        )?,
        None => map_scheduled_with_faults_traced(
            repute,
            &platform,
            &schedule,
            threads,
            &plan,
            config.max_retries(),
            tracing,
            &reads,
        )?,
    };
    if let Some(path) = &opts.trace_out {
        write_trace_file(path, &platform, &run.trace)?;
        eprintln!("wrote span trace to {path:?} (open in chrome://tracing, or `repute trace`)");
    }
    eprintln!(
        "simulated on {} ({} schedule): {:.3} s | {:.1} W avg | {:.3} J above idle",
        platform.name(),
        config.schedule(),
        run.simulated_seconds,
        run.energy.average_power_w,
        run.energy.energy_j
    );
    if !plan.is_empty() {
        let faults: u64 = run.fault_counters.iter().map(|c| c.faults).sum();
        let retries: u64 = run.fault_counters.iter().map(|c| c.retries).sum();
        let migrated: u64 = run.fault_counters.iter().map(|c| c.migrated_batches).sum();
        eprintln!(
            "fault injection: {faults} fault(s) struck | {retries} retried launch(es) | \
             {migrated} migrated batch(es) (output unaffected)"
        );
    }
    Ok((run.report(&platform, &metrics), metrics))
}

/// Writes the telemetry JSON-lines file: one `read` record per read, then
/// the [`RunReport`] records. With a platform simulation the report and
/// per-read records come from the simulated run (which carries device
/// timelines and energy); otherwise they are rolled up from the host
/// mapping pass.
fn write_metrics_file(
    path: &str,
    stages: &[(String, f64, u64)],
    wall_seconds: f64,
    host_metrics: &[MapMetrics],
    sim: Option<(RunReport, Vec<MapMetrics>)>,
) -> Result<(), ReputeError> {
    let (mut report, per_read) = match sim {
        Some((report, metrics)) => (report, metrics),
        None => {
            let mut report = RunReport {
                reads: host_metrics.len() as u64,
                ..RunReport::default()
            };
            for m in host_metrics {
                report.totals.merge(m);
            }
            (report, host_metrics.to_vec())
        }
    };
    // Host stage clocks first (load/map/simulate), then whatever stage
    // breakdown the run report derived from the merged metrics.
    let mut all_stages = stages.to_vec();
    all_stages.append(&mut report.stages);
    report.stages = all_stages;
    report.wall_seconds = wall_seconds;
    // Assembled in memory, committed by atomic rename: a crash mid-write
    // never leaves a half-written telemetry file for `repute stats`.
    let mut out: Vec<u8> = Vec::new();
    for (id, m) in per_read.iter().enumerate() {
        writeln!(out, "{}", m.to_json_line(id as u64))?;
    }
    report.write_json_lines(&mut out)?;
    write_atomic(Path::new(path), &out)
}

/// Writes a run's spans as Chrome trace JSON (atomic rename): pid 0 is
/// the scheduler, each device gets its own pid named after its profile.
/// The writer sorts spans into a canonical order, so identical runs
/// produce byte-identical files regardless of host-thread interleaving.
fn write_trace_file(
    path: &str,
    platform: &repute_hetsim::Platform,
    trace: &[repute_obs::Span],
) -> Result<(), ReputeError> {
    use repute_obs::trace::{device_pid, write_chrome_trace, SCHEDULER_PID};
    let mut processes = vec![(SCHEDULER_PID, "scheduler".to_string())];
    for (i, device) in platform.devices().iter().enumerate() {
        processes.push((
            device_pid(i),
            format!("{} [{}]", device.name(), device.kind().as_str()),
        ));
    }
    write_atomic(
        Path::new(path),
        write_chrome_trace(&processes, trace).as_bytes(),
    )
}

/// Parsed command-line options for `repute stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsOptions {
    /// Telemetry JSON-lines files written by `--metrics-out` (or the
    /// bench harness's `REPUTE_METRICS_OUT`, or a daemon's
    /// `--metrics-out`). Several files are merged: counters are summed
    /// and latency samples pooled before percentiles are taken.
    pub inputs: Vec<String>,
    /// A spool of per-job JSON-lines files (a daemon's `--metrics-dir`):
    /// every `*.jsonl` file in the directory is read, name-sorted, as if
    /// appended to `inputs`.
    pub dir: Option<String>,
    /// Error on the first malformed line instead of skipping it with a
    /// warning (the lenient default tolerates truncated or mixed files).
    pub strict: bool,
}

/// Parses `repute stats` arguments: one or more file paths and/or
/// `--dir`, plus flags.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags or when neither a path
/// nor `--dir` is given.
pub fn parse_stats_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<StatsOptions, ParseArgsError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut dir: Option<String> = None;
    let mut strict = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--dir" => {
                let value = args
                    .next()
                    .ok_or_else(|| ParseArgsError::new("--dir expects a value"))?;
                if dir.is_some() {
                    return Err(ParseArgsError::new("--dir given twice"));
                }
                dir = Some(value);
            }
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other if other.starts_with('-') => {
                return Err(ParseArgsError::new(format!("unknown option {other:?}")))
            }
            path => inputs.push(path.to_string()),
        }
    }
    if inputs.is_empty() && dir.is_none() {
        return Err(ParseArgsError::new(
            "stats expects at least one metrics JSON-lines file (or --dir)",
        ));
    }
    Ok(StatsOptions {
        inputs,
        dir,
        strict,
    })
}

/// Pretty-prints a telemetry JSON-lines stream (the inverse of
/// `--metrics-out`): per-read records are rolled up into totals, run /
/// stage / device / event / energy records are rendered in file order.
///
/// Lenient: malformed lines are skipped and counted, with a trailing
/// `warning: skipped N malformed line(s)` note — telemetry files are
/// often truncated by interrupted runs or concatenated from several
/// sources, and the intact records are still worth rendering. Use
/// [`render_stats_strict`] (CLI: `--strict`) to fail on the first bad
/// line instead.
///
/// # Errors
///
/// This lenient form only errors via future I/O-style extensions; today
/// it always succeeds.
pub fn render_stats(text: &str) -> Result<String, ReputeError> {
    render_stats_inner(text, false)
}

/// Strict variant of [`render_stats`]: any malformed line is an error.
///
/// # Errors
///
/// Returns [`ReputeError::InputParse`] naming the first line that fails
/// to parse.
pub fn render_stats_strict(text: &str) -> Result<String, ReputeError> {
    render_stats_inner(text, true)
}

fn render_stats_inner(text: &str, strict: bool) -> Result<String, ReputeError> {
    use repute_obs::json::{field, parse_flat_object, JsonValue};
    use std::fmt::Write as _;

    let get_str = |fields: &[(String, JsonValue)], key: &str| -> String {
        field(fields, key)
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let get_f64 =
        |fields: &[(String, JsonValue)], key: &str| field(fields, key).and_then(JsonValue::as_f64);
    let get_u64 =
        |fields: &[(String, JsonValue)], key: &str| field(fields, key).and_then(JsonValue::as_u64);

    let mut reads = 0u64;
    let mut sums: Vec<(String, u64)> = Vec::new();
    let mut body = String::new();
    let mut skipped = 0u64;
    let mut latency_header = false;
    // Service telemetry merges across every input file: per-job records
    // pool their latency samples, `serve` snapshot counters sum.
    let mut jobs = 0u64;
    let mut jobs_replayed = 0u64;
    let mut job_reads = 0u64;
    let mut job_mappings = 0u64;
    let mut job_latency: Vec<f64> = Vec::new();
    let mut tenants: Vec<(String, u64)> = Vec::new();
    let mut serve_records = 0u64;
    let mut serve_sums = [0u64; 15];
    const SERVE_COUNTERS: [&str; 15] = [
        "accepted",
        "rejected",
        "retry_later",
        "quota_exceeded",
        "completed",
        "replayed",
        "batches",
        "compactions",
        "connection_errors",
        "spool_skipped",
        "shed",
        "unavailable",
        "faults",
        "retries",
        "migrated",
    ];
    let mut serve_queue_depth_max = 0u64;
    let mut serve_simulated = 0.0f64;
    let mut serve_devices_live: Option<(u64, u64)> = None;
    // Per-tenant SLO records merge by summation across inputs.
    let mut slo_rows: Vec<(String, u64, u64)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields = match parse_flat_object(line) {
            Some(fields) => fields,
            None if strict => {
                return Err(ReputeError::InputParse(format!(
                    "line {}: not a flat JSON object",
                    idx + 1
                )))
            }
            None => {
                skipped += 1;
                continue;
            }
        };
        let kind = get_str(&fields, "type");
        match kind.as_str() {
            "read" => {
                reads += 1;
                for (key, value) in &fields {
                    if key == "type" || key == "id" {
                        continue;
                    }
                    if let Some(n) = value.as_u64() {
                        match sums.iter_mut().find(|(name, _)| name == key) {
                            Some((_, sum)) => *sum += n,
                            None => sums.push((key.clone(), n)),
                        }
                    }
                }
            }
            "cell" => {
                let _ = writeln!(body, "cell {}", get_str(&fields, "label"));
            }
            "run" => {
                let _ = writeln!(
                    body,
                    "run: {} reads | simulated {:.6} s | wall {:.3} s",
                    get_u64(&fields, "reads").unwrap_or(0),
                    get_f64(&fields, "simulated_seconds").unwrap_or(0.0),
                    get_f64(&fields, "wall_seconds").unwrap_or(0.0),
                );
                // Resumed runs carry the replayed-batch count as
                // provenance; the per-read totals above already cover the
                // whole run once, so nothing is double-counted here.
                let resumed = get_u64(&fields, "resumed_batches").unwrap_or(0);
                if resumed > 0 {
                    let _ = writeln!(
                        body,
                        "  resumed from checkpoint: {resumed} batch(es) \
                         replayed from the journal (not re-executed)",
                    );
                }
            }
            "stage" => {
                let _ = writeln!(
                    body,
                    "  stage {:<24} {:>10.6} s  x{}",
                    get_str(&fields, "path"),
                    get_f64(&fields, "seconds").unwrap_or(0.0),
                    get_u64(&fields, "count").unwrap_or(0),
                );
            }
            "latency" => {
                // Legacy telemetry files simply have no latency records;
                // the header appears once, before the first row.
                if !latency_header {
                    let _ = writeln!(
                        body,
                        "  latency percentiles (simulated seconds)\n  {:<24} {:>8} {:>12} {:>12} {:>12}",
                        "population", "n", "p50", "p90", "p99",
                    );
                    latency_header = true;
                }
                let _ = writeln!(
                    body,
                    "  {:<24} {:>8} {:>12.9} {:>12.9} {:>12.9}",
                    get_str(&fields, "stage"),
                    get_u64(&fields, "count").unwrap_or(0),
                    get_f64(&fields, "p50_s").unwrap_or(0.0),
                    get_f64(&fields, "p90_s").unwrap_or(0.0),
                    get_f64(&fields, "p99_s").unwrap_or(0.0),
                );
            }
            "device" => {
                let _ = writeln!(
                    body,
                    "  device {:<20} {:>3} launches | busy {:.6} s | util {:>5.1}%",
                    get_str(&fields, "device"),
                    get_u64(&fields, "launches").unwrap_or(0),
                    get_f64(&fields, "busy_seconds").unwrap_or(0.0),
                    get_f64(&fields, "utilization").unwrap_or(0.0) * 100.0,
                );
                let faults = get_u64(&fields, "faults").unwrap_or(0);
                let retries = get_u64(&fields, "retries").unwrap_or(0);
                let migrated = get_u64(&fields, "migrated_batches").unwrap_or(0);
                if faults > 0 || retries > 0 || migrated > 0 {
                    let _ = writeln!(
                        body,
                        "    faults {faults} | retries {retries} | migrated batches {migrated}",
                    );
                }
            }
            "event" => {
                let _ = writeln!(
                    body,
                    "    {:<14} {:>8} items | queued {:.6} start {:.6} end {:.6}",
                    get_str(&fields, "label"),
                    get_u64(&fields, "items").unwrap_or(0),
                    get_f64(&fields, "queued_s").unwrap_or(0.0),
                    get_f64(&fields, "start_s").unwrap_or(0.0),
                    get_f64(&fields, "end_s").unwrap_or(0.0),
                );
            }
            "energy" => {
                let _ = writeln!(
                    body,
                    "  energy: {:.3} J above idle | avg {:.1} W (idle {:.1} W) over {:.6} s",
                    get_f64(&fields, "energy_j").unwrap_or(0.0),
                    get_f64(&fields, "average_power_w").unwrap_or(0.0),
                    get_f64(&fields, "idle_power_w").unwrap_or(0.0),
                    get_f64(&fields, "mapping_seconds").unwrap_or(0.0),
                );
            }
            "job" => {
                jobs += 1;
                job_reads += get_u64(&fields, "reads").unwrap_or(0);
                job_mappings += get_u64(&fields, "mappings").unwrap_or(0);
                if let Some(latency) = get_f64(&fields, "latency_s") {
                    job_latency.push(latency);
                }
                if matches!(field(&fields, "replayed"), Some(JsonValue::Bool(true))) {
                    jobs_replayed += 1;
                }
                let tenant = get_str(&fields, "tenant");
                match tenants.iter_mut().find(|(name, _)| *name == tenant) {
                    Some((_, n)) => *n += 1,
                    None => tenants.push((tenant, 1)),
                }
            }
            "serve" => {
                serve_records += 1;
                for (slot, name) in serve_sums.iter_mut().zip(SERVE_COUNTERS) {
                    *slot += get_u64(&fields, name).unwrap_or(0);
                }
                serve_queue_depth_max =
                    serve_queue_depth_max.max(get_u64(&fields, "queue_depth_max").unwrap_or(0));
                serve_simulated += get_f64(&fields, "simulated_seconds").unwrap_or(0.0);
                // Health is a point-in-time snapshot, not a counter:
                // the latest record wins instead of summing.
                if let (Some(live), Some(lost)) = (
                    get_u64(&fields, "devices_live"),
                    get_u64(&fields, "devices_lost"),
                ) {
                    serve_devices_live = Some((live, lost));
                }
            }
            "slo" => {
                let tenant = get_str(&fields, "tenant");
                let met = get_u64(&fields, "met").unwrap_or(0);
                let missed = get_u64(&fields, "missed").unwrap_or(0);
                match slo_rows.iter_mut().find(|(name, _, _)| *name == tenant) {
                    Some((_, m, x)) => {
                        *m += met;
                        *x += missed;
                    }
                    None => slo_rows.push((tenant, met, missed)),
                }
            }
            other => {
                let _ = writeln!(body, "({other} record)");
            }
        }
    }

    let mut out = String::new();
    if reads > 0 {
        let _ = writeln!(out, "{reads} read records; totals:");
        for (name, sum) in &sums {
            let _ = writeln!(
                out,
                "  {name:<18} {sum:>12}  ({:.1}/read)",
                *sum as f64 / reads as f64
            );
        }
        // Derived prefilter summary. Older telemetry files predate the
        // prefilter counters; their sums simply lack the fields and the
        // summary is skipped.
        let sum_of = |name: &str| sums.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
        let tested = sum_of("prefilter_tested");
        if tested > 0 {
            let rejected = sum_of("prefilter_rejected");
            let accepted = tested.saturating_sub(rejected);
            let false_accepts = sum_of("prefilter_false_accepts");
            let _ = writeln!(
                out,
                "  prefilter: {rejected}/{tested} candidates rejected ({:.1}%), \
                 {false_accepts} false accepts ({:.1}% of accepts)",
                rejected as f64 / tested as f64 * 100.0,
                false_accepts as f64 / (accepted.max(1)) as f64 * 100.0,
            );
        }
    }
    out.push_str(&body);
    if serve_records > 0 {
        let _ = writeln!(
            out,
            "serve ({serve_records} snapshot(s)): accepted {} | rejected {} | \
             retry-later {} | quota-exceeded {} | completed {} ({} replayed) | {} batch(es)",
            serve_sums[0],
            serve_sums[1],
            serve_sums[2],
            serve_sums[3],
            serve_sums[4],
            serve_sums[5],
            serve_sums[6],
        );
        let _ = writeln!(
            out,
            "  compactions {} | connection errors {} | spool skipped {}",
            serve_sums[7], serve_sums[8], serve_sums[9],
        );
        if serve_sums[10..].iter().any(|&n| n > 0) {
            let _ = writeln!(
                out,
                "  shed {} | unavailable {} | faults {} | retries {} | migrated batches {}",
                serve_sums[10], serve_sums[11], serve_sums[12], serve_sums[13], serve_sums[14],
            );
        }
        if let Some((live, lost)) = serve_devices_live {
            if lost > 0 {
                let _ = writeln!(out, "  devices live {live} ({lost} lost)");
            }
        }
        let _ = writeln!(
            out,
            "  queue depth high-water {serve_queue_depth_max} | simulated {serve_simulated:.6} s",
        );
    }
    if !slo_rows.is_empty() {
        let _ = writeln!(
            out,
            "deadline SLO (trailing window):\n  {:<16} {:>6} {:>6} {:>9}",
            "tenant", "met", "missed", "hit-rate",
        );
        slo_rows.sort_by(|a, b| a.0.cmp(&b.0));
        for (tenant, met, missed) in &slo_rows {
            let total = met + missed;
            let rate = if total == 0 {
                1.0
            } else {
                *met as f64 / total as f64
            };
            let _ = writeln!(out, "  {tenant:<16} {met:>6} {missed:>6} {rate:>9.3}");
        }
    }
    if jobs > 0 {
        let _ = writeln!(
            out,
            "jobs: {jobs} completed ({jobs_replayed} replayed) | \
             {job_reads} reads | {job_mappings} mappings",
        );
        for (tenant, n) in &tenants {
            let _ = writeln!(out, "  tenant {tenant:<16} {n:>6} job(s)");
        }
        if !job_latency.is_empty() {
            let samples = repute_obs::Samples::from_values(&job_latency);
            let (p50, p90, p99) = samples.p50_p90_p99();
            let _ = writeln!(
                out,
                "  job latency (merged, simulated seconds): n={} \
                 p50 {p50:.9} p90 {p90:.9} p99 {p99:.9}",
                samples.count(),
            );
        }
    }
    if out.is_empty() && skipped == 0 {
        out.push_str("no telemetry records\n");
    }
    if skipped > 0 {
        let _ = writeln!(out, "warning: skipped {skipped} malformed line(s)");
    }
    Ok(out)
}

/// Runs `repute stats`: reads every input file (and every `*.jsonl`
/// file of `--dir`, name-sorted), concatenates them, and pretty-prints
/// the merged telemetry to stdout. Counters from several files sum and
/// latency samples pool before percentiles are taken, so a spool of
/// per-job files renders one coherent summary.
///
/// # Errors
///
/// Propagates I/O errors and, under `--strict`, malformed-line errors
/// from [`render_stats_strict`].
pub fn run_stats(opts: &StatsOptions) -> Result<(), ReputeError> {
    let mut text = String::new();
    let mut append = |path: &Path| -> Result<(), ReputeError> {
        let chunk = std::fs::read_to_string(path).map_err(|e| ReputeError::io_at(path, e))?;
        text.push_str(&chunk);
        if !chunk.ends_with('\n') {
            text.push('\n');
        }
        Ok(())
    };
    for input in &opts.inputs {
        append(Path::new(input))?;
    }
    if let Some(dir) = &opts.dir {
        let dir_path = Path::new(dir);
        let entries = std::fs::read_dir(dir_path).map_err(|e| ReputeError::io_at(dir_path, e))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| ReputeError::io_at(dir_path, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                files.push(path);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(ReputeError::InputParse(format!(
                "--dir {dir:?} contains no *.jsonl telemetry files"
            )));
        }
        for path in &files {
            append(path)?;
        }
    }
    let rendered = if opts.strict {
        render_stats_strict(&text)?
    } else {
        render_stats(&text)?
    };
    print!("{rendered}");
    Ok(())
}

/// Parsed command-line options for `repute trace`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOptions {
    /// Path to a Chrome-tracing JSON file written by `--trace-out`.
    pub input: String,
}

/// Parses `repute trace` arguments: one file path.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags or a missing/duplicate
/// path.
pub fn parse_trace_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<TraceOptions, ParseArgsError> {
    let mut input: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other if other.starts_with('-') => {
                return Err(ParseArgsError::new(format!("unknown option {other:?}")))
            }
            path => {
                if input.is_some() {
                    return Err(ParseArgsError::new("trace expects exactly one file"));
                }
                input = Some(path.to_string());
            }
        }
    }
    input
        .map(|input| TraceOptions { input })
        .ok_or_else(|| ParseArgsError::new("trace expects a Chrome-tracing JSON file"))
}

/// Summarizes a `--trace-out` file: event count, total span time, a
/// per-process (scheduler + devices) span table, and per-category
/// duration percentiles.
///
/// # Errors
///
/// Returns [`ReputeError::InputParse`] when the text is not a Chrome
/// trace event array.
pub fn render_trace_summary(text: &str) -> Result<String, ReputeError> {
    use repute_obs::trace::summarize_chrome_trace;
    use std::fmt::Write as _;

    let summary = summarize_chrome_trace(text).ok_or_else(|| {
        ReputeError::InputParse(
            "not a Chrome trace event array (expected the JSON written by --trace-out)".into(),
        )
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} span event(s) | {:.6} s total span time",
        summary.events, summary.span_seconds
    );
    if !summary.processes.is_empty() {
        let _ = writeln!(out, "processes:");
        for p in &summary.processes {
            let _ = writeln!(
                out,
                "  pid {:<3} {:<28} {:>6} span(s) {:>12.6} s",
                p.pid, p.name, p.count, p.total_seconds
            );
        }
    }
    if !summary.categories.is_empty() {
        let _ = writeln!(
            out,
            "categories (duration percentiles, simulated seconds):\n  {:<12} {:>6} {:>12} {:>12} {:>12} {:>12}",
            "cat", "n", "total", "p50", "p90", "p99",
        );
        for c in &summary.categories {
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>12.6} {:>12.9} {:>12.9} {:>12.9}",
                c.cat, c.count, c.total_seconds, c.p50_seconds, c.p90_seconds, c.p99_seconds,
            );
        }
    }
    Ok(out)
}

/// Runs `repute trace`: summarizes a `--trace-out` file to stdout.
///
/// # Errors
///
/// Propagates I/O errors and malformed-input errors from
/// [`render_trace_summary`].
pub fn run_trace(opts: &TraceOptions) -> Result<(), ReputeError> {
    let input_path = Path::new(&opts.input);
    let text =
        std::fs::read_to_string(input_path).map_err(|e| ReputeError::io_at(input_path, e))?;
    print!("{}", render_trace_summary(&text)?);
    Ok(())
}

/// Parsed command-line options for `repute serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCliOptions {
    /// Path to the FASTA reference (exclusive with `index`).
    pub reference: String,
    /// Path to a prebuilt index from `repute index`.
    pub index: Option<String>,
    /// Fingerprint-validated serialized-index cache (see
    /// [`MapOptions::index_cache`]).
    pub index_cache: Option<String>,
    /// Simulated platform the daemon schedules batches on.
    pub platform: String,
    /// Unix-domain socket path to listen on (exclusive with `spool`).
    pub socket: Option<String>,
    /// Spool directory of `*.json` job files to watch (exclusive with
    /// `socket`).
    pub spool: Option<String>,
    /// Process the spool exactly once and exit (deterministic; for
    /// tests and CI) instead of polling forever.
    pub once: bool,
    /// Crash-safe job-journal path; restart with `resume` to replay
    /// committed responses and requeue uncommitted jobs.
    pub journal: Option<String>,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Default error budget δ for jobs without an override.
    pub delta: u32,
    /// Minimum k-mer length `S_min` (server-pinned).
    pub s_min: usize,
    /// Output-slot limit per read (server-pinned).
    pub max_locations: usize,
    /// Default prefilter mode for jobs without an override.
    pub prefilter: PrefilterMode,
    /// Q-gram length of the bin prefilter.
    pub prefilter_q: usize,
    /// Reference bin width (bases) of the bin prefilter.
    pub prefilter_bin: usize,
    /// Multi-device scheduling policy of every batch.
    pub schedule: ScheduleMode,
    /// Host-thread cap of the executor (`0` = automatic).
    pub host_threads: usize,
    /// Fault-plan spec injected into the daemon's simulated platform
    /// (validated at parse time; host-crash events are rejected).
    pub fault_plan: Option<String>,
    /// Transient-fault retry budget of every batch execution.
    pub max_retries: usize,
    /// Shed queued jobs whose deadline has already passed with a typed
    /// `DEADLINE_EXCEEDED` instead of running them late.
    pub shed_overdue: bool,
    /// Serialize batches (disable concurrent same-config batch groups).
    pub serial_batches: bool,
    /// Admission-queue capacity; a full queue answers `RETRY_LATER`.
    pub queue_capacity: usize,
    /// Largest per-job read count accepted (`None` = the platform's
    /// quarter-RAM batch cap).
    pub max_reads_per_job: Option<usize>,
    /// Largest per-job δ override accepted.
    pub max_delta: u32,
    /// Weighted-fair tenant weights (`--tenant-weight name=w`,
    /// repeatable; unlisted tenants weigh 1.0).
    pub tenant_weights: Vec<(String, f64)>,
    /// Sliding-window read budgets (`--tenant-quota name=reads`,
    /// repeatable; unlisted tenants are unbudgeted).
    pub tenant_quotas: Vec<(String, u64)>,
    /// Quota sliding-window length in simulated seconds.
    pub quota_window_s: f64,
    /// Compact the journal after this many dead records (`0` disables).
    pub journal_compact_threshold: usize,
    /// Merged telemetry JSON-lines export path (written at exit, and
    /// after every spool pass).
    pub metrics_out: Option<String>,
    /// Per-job telemetry spool directory (one `*.jsonl` file per job;
    /// inspect with `repute stats --dir`).
    pub metrics_dir: Option<String>,
    /// Chrome-trace span export path (enables tracing).
    pub trace_out: Option<String>,
}

impl Default for ServeCliOptions {
    fn default() -> ServeCliOptions {
        let defaults = repute_serve::ServeOptions::default();
        ServeCliOptions {
            reference: String::new(),
            index: None,
            index_cache: None,
            platform: "system1".to_string(),
            socket: None,
            spool: None,
            once: false,
            journal: None,
            resume: false,
            delta: defaults.delta,
            s_min: defaults.s_min,
            max_locations: defaults.max_locations,
            prefilter: defaults.prefilter,
            prefilter_q: defaults.prefilter_q,
            prefilter_bin: defaults.prefilter_bin,
            schedule: defaults.schedule,
            host_threads: defaults.host_threads,
            fault_plan: None,
            max_retries: defaults.max_retries,
            shed_overdue: defaults.shed_overdue,
            serial_batches: !defaults.concurrent_batches,
            queue_capacity: defaults.limits.queue_capacity,
            max_reads_per_job: None,
            max_delta: defaults.limits.max_delta,
            tenant_weights: Vec::new(),
            tenant_quotas: Vec::new(),
            quota_window_s: defaults.quota_window_s,
            journal_compact_threshold: defaults.journal_compact_threshold,
            metrics_out: None,
            metrics_dir: None,
            trace_out: None,
        }
    }
}

/// Parses `repute serve` arguments (everything after the subcommand).
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags, missing values, or
/// inconsistent combinations.
pub fn parse_serve_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<ServeCliOptions, ParseArgsError> {
    let mut opts = ServeCliOptions::default();
    let mut args = args.into_iter();
    let mut have_reference = false;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--reference" => {
                opts.reference = value("--reference")?;
                have_reference = true;
            }
            "--index" => {
                opts.index = Some(value("--index")?);
                have_reference = true;
            }
            "--index-cache" => opts.index_cache = Some(value("--index-cache")?),
            "--platform" => opts.platform = value("--platform")?,
            "--socket" => opts.socket = Some(value("--socket")?),
            "--spool" => opts.spool = Some(value("--spool")?),
            "--once" => opts.once = true,
            "--journal" => opts.journal = Some(value("--journal")?),
            "--resume" => opts.resume = true,
            "--delta" => {
                opts.delta = value("--delta")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--delta expects an integer"))?;
            }
            "--s-min" => {
                opts.s_min = value("--s-min")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--s-min expects an integer"))?;
            }
            "--max-locations" => {
                opts.max_locations = value("--max-locations")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-locations expects an integer"))?;
                if opts.max_locations == 0 {
                    return Err(ParseArgsError::new("--max-locations must be positive"));
                }
            }
            "--prefilter" => {
                opts.prefilter = value("--prefilter")?
                    .parse()
                    .map_err(|e| ParseArgsError::new(format!("--prefilter: {e}")))?;
            }
            "--prefilter-q" => {
                opts.prefilter_q = value("--prefilter-q")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--prefilter-q expects an integer"))?;
                if opts.prefilter_q == 0 || opts.prefilter_q > qgram::MAX_Q {
                    return Err(ParseArgsError::new(format!(
                        "--prefilter-q must be in 1..={}",
                        qgram::MAX_Q
                    )));
                }
            }
            "--prefilter-bin" => {
                opts.prefilter_bin = value("--prefilter-bin")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--prefilter-bin expects an integer"))?;
                if opts.prefilter_bin == 0 {
                    return Err(ParseArgsError::new("--prefilter-bin must be positive"));
                }
            }
            "--schedule" => {
                let mode = value("--schedule")?;
                opts.schedule = ScheduleMode::parse(&mode).ok_or_else(|| {
                    ParseArgsError::new(format!("unknown schedule {mode:?} (static, dynamic)"))
                })?;
            }
            "--host-threads" => {
                opts.host_threads = value("--host-threads")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--host-threads expects an integer"))?;
                if opts.host_threads == 0 {
                    return Err(ParseArgsError::new(
                        "--host-threads must be positive (omit the flag for automatic)",
                    ));
                }
            }
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                let plan = repute_hetsim::FaultPlan::parse(&spec)
                    .map_err(|e| ParseArgsError::new(format!("--fault-plan: {e}")))?;
                if plan.host_crash_at().is_some() {
                    return Err(ParseArgsError::new(
                        "serve accepts device fault events only (crash-resume \
                         is --journal/--resume territory, not crash:@<t>)",
                    ));
                }
                opts.fault_plan = Some(spec);
            }
            "--max-retries" => {
                opts.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-retries expects an integer"))?;
            }
            "--shed-overdue" => opts.shed_overdue = true,
            "--serial-batches" => opts.serial_batches = true,
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--queue-capacity expects an integer"))?;
                if opts.queue_capacity == 0 {
                    return Err(ParseArgsError::new("--queue-capacity must be positive"));
                }
            }
            "--max-reads-per-job" => {
                let n: usize = value("--max-reads-per-job")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-reads-per-job expects an integer"))?;
                if n == 0 {
                    return Err(ParseArgsError::new("--max-reads-per-job must be positive"));
                }
                opts.max_reads_per_job = Some(n);
            }
            "--max-delta" => {
                opts.max_delta = value("--max-delta")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--max-delta expects an integer"))?;
            }
            "--tenant-weight" => {
                let spec = value("--tenant-weight")?;
                let (name, weight) = spec
                    .split_once('=')
                    .ok_or_else(|| ParseArgsError::new("--tenant-weight expects name=<weight>"))?;
                let weight: f64 = weight
                    .parse()
                    .map_err(|_| ParseArgsError::new("--tenant-weight expects a numeric weight"))?;
                if weight.is_nan() || weight <= 0.0 {
                    return Err(ParseArgsError::new("--tenant-weight must be positive"));
                }
                opts.tenant_weights.push((name.to_string(), weight));
            }
            "--tenant-quota" => {
                let spec = value("--tenant-quota")?;
                let (name, budget) = spec
                    .split_once('=')
                    .ok_or_else(|| ParseArgsError::new("--tenant-quota expects name=<reads>"))?;
                let budget: u64 = budget.parse().map_err(|_| {
                    ParseArgsError::new("--tenant-quota expects an integer read budget")
                })?;
                if budget == 0 {
                    return Err(ParseArgsError::new("--tenant-quota must be positive"));
                }
                opts.tenant_quotas.push((name.to_string(), budget));
            }
            "--quota-window" => {
                opts.quota_window_s = value("--quota-window")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--quota-window expects seconds"))?;
                if !opts.quota_window_s.is_finite() || opts.quota_window_s <= 0.0 {
                    return Err(ParseArgsError::new("--quota-window must be positive"));
                }
            }
            "--journal-compact-threshold" => {
                opts.journal_compact_threshold =
                    value("--journal-compact-threshold")?.parse().map_err(|_| {
                        ParseArgsError::new("--journal-compact-threshold expects an integer")
                    })?;
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--metrics-dir" => opts.metrics_dir = Some(value("--metrics-dir")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if !have_reference {
        return Err(ParseArgsError::new("--reference or --index is required"));
    }
    if opts.index.is_some() && !opts.reference.is_empty() {
        return Err(ParseArgsError::new(
            "--reference and --index are mutually exclusive",
        ));
    }
    if opts.index_cache.is_some() && opts.index.is_some() {
        return Err(ParseArgsError::new(
            "--index-cache requires --reference (a prebuilt --index is \
             already the cache)",
        ));
    }
    if opts.socket.is_none() && opts.spool.is_none() {
        return Err(ParseArgsError::new(
            "serve needs a transport: --socket <path> or --spool <dir>",
        ));
    }
    if opts.socket.is_some() && opts.spool.is_some() {
        return Err(ParseArgsError::new(
            "--socket and --spool are mutually exclusive",
        ));
    }
    if opts.once && opts.spool.is_none() {
        return Err(ParseArgsError::new("--once requires --spool"));
    }
    if opts.resume && opts.journal.is_none() {
        return Err(ParseArgsError::new("--resume requires --journal"));
    }
    if opts.journal_compact_threshold > 0 && opts.journal.is_none() {
        return Err(ParseArgsError::new(
            "--journal-compact-threshold requires --journal",
        ));
    }
    Ok(opts)
}

/// Builds the daemon-core configuration a CLI option set selects.
fn build_serve_options(opts: &ServeCliOptions) -> Result<repute_serve::ServeOptions, ReputeError> {
    let fault_plan = match &opts.fault_plan {
        Some(spec) => repute_hetsim::FaultPlan::parse(spec)
            .map_err(|e| ReputeError::Config(format!("--fault-plan: {e}")))?,
        None => repute_hetsim::FaultPlan::new(),
    };
    Ok(repute_serve::ServeOptions {
        delta: opts.delta,
        s_min: opts.s_min,
        max_locations: opts.max_locations,
        prefilter: opts.prefilter,
        prefilter_q: opts.prefilter_q,
        prefilter_bin: opts.prefilter_bin,
        schedule: opts.schedule,
        host_threads: opts.host_threads,
        max_retries: opts.max_retries,
        fault_plan,
        shed_overdue: opts.shed_overdue,
        concurrent_batches: !opts.serial_batches,
        tracing: opts.trace_out.is_some(),
        limits: repute_serve::ServeLimits {
            max_reads_per_job: opts.max_reads_per_job.unwrap_or(usize::MAX),
            max_delta: opts.max_delta,
            queue_capacity: opts.queue_capacity,
        },
        tenant_weights: opts.tenant_weights.clone(),
        tenant_quotas: opts.tenant_quotas.clone(),
        quota_window_s: opts.quota_window_s,
        journal_compact_threshold: opts.journal_compact_threshold,
    })
}

/// Runs `repute serve`: loads the reference once, then serves mapping
/// jobs over the configured transport until shutdown (socket) or until
/// the spool pass completes (`--spool --once`).
///
/// # Errors
///
/// Propagates configuration, journal, transport, and executor errors,
/// each carrying the distinct exit code of its [`ReputeError`] class.
#[cfg(unix)]
pub fn run_serve(opts: &ServeCliOptions) -> Result<(), ReputeError> {
    use repute_serve::transport;

    let platform = platform_by_name(&opts.platform)?;
    let load_started = std::time::Instant::now();
    let set = load_reference_set(&MapOptions {
        reference: opts.reference.clone(),
        index: opts.index.clone(),
        index_cache: opts.index_cache.clone(),
        ..MapOptions::default()
    })?;
    eprintln!(
        "reference ready in {:.3} s (loaded once for the daemon's life)",
        load_started.elapsed().as_secs_f64()
    );
    let mut core = repute_serve::ServeCore::new(set, platform, build_serve_options(opts)?)?;
    if let Some(journal) = &opts.journal {
        let path = Path::new(journal);
        if path.exists() && !opts.resume {
            return Err(ReputeError::Config(format!(
                "journal {journal:?} already exists; pass --resume to \
                 continue it or remove it to start over"
            )));
        }
        if !path.exists() && opts.resume {
            return Err(ReputeError::Config(format!(
                "--resume needs an existing journal, but {journal:?} does not exist"
            )));
        }
        let replayed = core.attach_journal(path, opts.resume)?;
        if !replayed.is_empty() {
            eprintln!(
                "resume: {} committed job response(s) replayed from the journal",
                replayed.len()
            );
        }
    }
    let export = |core: &repute_serve::ServeCore| -> Result<(), ReputeError> {
        if let Some(path) = &opts.metrics_out {
            core.write_telemetry(Path::new(path))?;
        }
        if let Some(dir) = &opts.metrics_dir {
            core.write_job_telemetry_dir(Path::new(dir))?;
        }
        Ok(())
    };
    if let Some(spool) = &opts.spool {
        let dir = Path::new(spool);
        loop {
            let n = transport::process_spool_once(&mut core, dir)?;
            if n > 0 {
                eprintln!("spool: processed {n} job file(s)");
                export(&core)?;
            }
            if opts.once {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    } else if let Some(socket) = &opts.socket {
        eprintln!(
            "listening on {socket:?} (stop with `repute submit --socket {socket} --shutdown`)"
        );
        transport::serve_socket(&mut core, Path::new(socket))?;
    }
    export(&core)?;
    if let Some(path) = &opts.trace_out {
        core.write_trace(Path::new(path))?;
    }
    let c = core.counters();
    eprintln!(
        "serve: accepted {} | rejected {} | retry-later {} | quota-exceeded {} | \
         completed {} ({} replayed) in {} batch(es) | queue high-water {} | simulated {:.6} s",
        c.accepted,
        c.rejected,
        c.retry_later,
        c.quota_exceeded,
        c.completed,
        c.replayed,
        c.batches,
        core.queue_depth_high_water(),
        core.simulated_seconds(),
    );
    if c.compactions + c.connection_errors + c.spool_skipped > 0 {
        eprintln!(
            "serve: compactions {} | connection errors {} | spool skipped {}",
            c.compactions, c.connection_errors, c.spool_skipped,
        );
    }
    if c.shed + c.unavailable + c.faults + c.retries + c.migrated > 0 {
        eprintln!(
            "serve: shed {} | unavailable {} | faults {} | retries {} | migrated batches {}",
            c.shed, c.unavailable, c.faults, c.retries, c.migrated,
        );
    }
    let health = core.health();
    if health.lost_count() > 0 || core.is_unavailable() {
        eprintln!(
            "serve: devices live {}/{} ({} lost){}",
            health.live_count(),
            health.len(),
            health.lost_count(),
            if core.is_unavailable() {
                " — drained as SERVICE_UNAVAILABLE"
            } else {
                ""
            },
        );
    }
    for report in core.slo_reports() {
        eprintln!(
            "slo: tenant {:<16} met {:>5} missed {:>5} hit-rate {:.3}",
            report.tenant,
            report.met,
            report.missed,
            report.hit_rate(),
        );
    }
    let (n, p50, p90, p99) = core.latency_percentiles();
    if n > 0 {
        eprintln!("job latency (simulated): n={n} p50 {p50:.6} p90 {p90:.6} p99 {p99:.6}");
    }
    Ok(())
}

/// Non-Unix stub: the daemon's transports need Unix-domain sockets.
///
/// # Errors
///
/// Always returns [`ReputeError::Config`].
#[cfg(not(unix))]
pub fn run_serve(_opts: &ServeCliOptions) -> Result<(), ReputeError> {
    Err(ReputeError::Config(
        "repute serve requires a Unix platform (Unix-domain sockets)".into(),
    ))
}

/// Parsed command-line options for `repute submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOptions {
    /// Unix-domain socket of the running daemon.
    pub socket: String,
    /// FASTQ reads to submit (loaded client-side and inlined).
    pub reads: Option<String>,
    /// Job id (defaults to the reads file name).
    pub id: Option<String>,
    /// Tenant the job is accounted to.
    pub tenant: Option<String>,
    /// Per-job δ override (within the server's `--max-delta`).
    pub delta: Option<u32>,
    /// Per-job prefilter override.
    pub prefilter: Option<String>,
    /// Per-job mapper override.
    pub mapper: Option<String>,
    /// Relative deadline in simulated seconds (EDF lane).
    pub deadline: Option<f64>,
    /// Intra-tenant priority (higher dequeues first).
    pub priority: Option<u32>,
    /// SAM output path; `None` writes to stdout.
    pub output: Option<String>,
    /// Bounded client-side retry budget on `RETRY_LATER` answers.
    pub retry: u32,
    /// Base backoff delay in milliseconds; attempt `k` sleeps
    /// `retry_base_ms << k` before resubmitting.
    pub retry_base_ms: u64,
    /// Ask the daemon to drain and shut down instead of submitting.
    pub shutdown: bool,
}

impl Default for SubmitOptions {
    fn default() -> SubmitOptions {
        SubmitOptions {
            socket: String::new(),
            reads: None,
            id: None,
            tenant: None,
            delta: None,
            prefilter: None,
            mapper: None,
            deadline: None,
            priority: None,
            output: None,
            retry: 0,
            retry_base_ms: 100,
            shutdown: false,
        }
    }
}

/// Parses `repute submit` arguments.
///
/// # Errors
///
/// Returns [`ParseArgsError`] for unknown flags, missing values, or
/// missing required options.
pub fn parse_submit_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<SubmitOptions, ParseArgsError> {
    let mut opts = SubmitOptions::default();
    let mut have_socket = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| ParseArgsError::new(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--socket" => {
                opts.socket = value("--socket")?;
                have_socket = true;
            }
            "--reads" => opts.reads = Some(value("--reads")?),
            "--id" => opts.id = Some(value("--id")?),
            "--tenant" => opts.tenant = Some(value("--tenant")?),
            "--delta" => {
                opts.delta = Some(
                    value("--delta")?
                        .parse()
                        .map_err(|_| ParseArgsError::new("--delta expects an integer"))?,
                );
            }
            "--prefilter" => opts.prefilter = Some(value("--prefilter")?),
            "--mapper" => opts.mapper = Some(value("--mapper")?),
            "--deadline" => {
                let deadline: f64 = value("--deadline")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--deadline expects seconds"))?;
                if !deadline.is_finite() || deadline < 0.0 {
                    return Err(ParseArgsError::new("--deadline must be non-negative"));
                }
                opts.deadline = Some(deadline);
            }
            "--priority" => {
                opts.priority = Some(
                    value("--priority")?
                        .parse()
                        .map_err(|_| ParseArgsError::new("--priority expects an integer"))?,
                );
            }
            "--output" => opts.output = Some(value("--output")?),
            "--retry" => {
                opts.retry = value("--retry")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--retry expects an integer"))?;
            }
            "--retry-base-ms" => {
                opts.retry_base_ms = value("--retry-base-ms")?
                    .parse()
                    .map_err(|_| ParseArgsError::new("--retry-base-ms expects milliseconds"))?;
            }
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => return Err(ParseArgsError::new("help requested")),
            other => return Err(ParseArgsError::new(format!("unknown option {other:?}"))),
        }
    }
    if !have_socket {
        return Err(ParseArgsError::new("--socket is required"));
    }
    if !opts.shutdown && opts.reads.is_none() {
        return Err(ParseArgsError::new("--reads is required (or --shutdown)"));
    }
    Ok(opts)
}

/// Runs `repute submit`: builds a job envelope from the FASTQ file,
/// sends it to a running daemon, and writes the returned SAM.
///
/// # Errors
///
/// [`ReputeError::Io`] when the daemon is unreachable;
/// [`ReputeError::Config`] (exit 2) when the daemon answers `REJECTED`
/// or `RETRY_LATER`, carrying the server's reason.
#[cfg(unix)]
pub fn run_submit(opts: &SubmitOptions) -> Result<(), ReputeError> {
    use repute_serve::transport;

    let socket = Path::new(&opts.socket);
    if opts.shutdown {
        transport::shutdown_over_socket(socket)?;
        eprintln!("shutdown requested on {:?}", opts.socket);
        return Ok(());
    }
    let reads_path = opts
        .reads
        .as_deref()
        .ok_or_else(|| ReputeError::Config("submit needs --reads (or --shutdown)".into()))?;
    let id = match &opts.id {
        Some(id) => id.clone(),
        None => Path::new(reads_path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("job")
            .to_string(),
    };
    let mut envelope = repute_serve::JobEnvelope::new(id, Vec::new());
    envelope.reads_path = Some(reads_path.to_string());
    if let Some(tenant) = &opts.tenant {
        envelope.tenant = tenant.clone();
    }
    envelope.delta = opts.delta;
    if let Some(prefilter) = &opts.prefilter {
        envelope.prefilter = Some(
            prefilter
                .parse()
                .map_err(|e| ReputeError::Config(format!("--prefilter: {e}")))?,
        );
    }
    if let Some(mapper) = &opts.mapper {
        envelope.mapper = Some(
            mapper
                .parse()
                .map_err(|e| ReputeError::Config(format!("--mapper: {e}")))?,
        );
    }
    envelope.deadline_s = opts.deadline;
    envelope.priority = opts.priority.unwrap_or(0);
    // Load the reads client-side so the daemon never depends on the
    // client's filesystem.
    repute_serve::resolve_reads(&mut envelope)?;
    let line = envelope.to_json_line();
    let mut attempt = 0u32;
    let response = loop {
        let responses = transport::submit_over_socket(socket, std::slice::from_ref(&line))?;
        let response = responses.into_iter().next().ok_or_else(|| {
            ReputeError::InputParse("server closed the connection without a response".into())
        })?;
        // RETRY_LATER is the daemon's back-pressure answer: the queue
        // was full at admission time. Bounded exponential backoff gives
        // the queue time to drain without hammering the socket.
        if response.status != repute_serve::JobStatus::RetryLater || attempt >= opts.retry {
            break response;
        }
        let delay_ms = opts.retry_base_ms.saturating_mul(1u64 << attempt.min(16));
        attempt += 1;
        eprintln!(
            "job {:?}: RETRY_LATER — retrying in {delay_ms} ms (attempt {attempt}/{})",
            response.id, opts.retry,
        );
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    };
    match response.status {
        repute_serve::JobStatus::Ok => {
            eprintln!(
                "job {:?}: OK | {} read(s) | {} mapping(s) | batch {} | latency {:.6} s",
                response.id,
                response.reads,
                response.mappings,
                response.batch.unwrap_or(0),
                response.latency_s.unwrap_or(0.0),
            );
            let sam = response.sam.unwrap_or_default();
            write_sam_output(opts.output.as_deref(), sam.as_bytes())
        }
        status => Err(ReputeError::Config(format!(
            "job {:?} answered {}: {}",
            response.id,
            status.as_str(),
            response.reason.unwrap_or_else(|| "no reason given".into()),
        ))),
    }
}

/// Non-Unix stub: the submit client needs Unix-domain sockets.
///
/// # Errors
///
/// Always returns [`ReputeError::Config`].
#[cfg(not(unix))]
pub fn run_submit(_opts: &SubmitOptions) -> Result<(), ReputeError> {
    Err(ReputeError::Config(
        "repute submit requires a Unix platform (Unix-domain sockets)".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --delta 4 --s-min 14 --max-locations 50 --output o.sam --cigar",
        ))
        .unwrap();
        assert_eq!(opts.reference, "r.fa");
        assert_eq!(opts.reads, "q.fq");
        assert_eq!(opts.delta, 4);
        assert_eq!(opts.s_min, 14);
        assert_eq!(opts.max_locations, 50);
        assert_eq!(opts.output.as_deref(), Some("o.sam"));
        assert!(opts.cigar);
    }

    #[test]
    fn defaults_apply() {
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.delta, 5);
        assert_eq!(opts.s_min, 12);
        assert_eq!(opts.max_locations, 100);
        assert_eq!(opts.output, None);
        assert!(!opts.cigar);
    }

    #[test]
    fn missing_required_rejected() {
        assert!(parse_map_args(args("--reads q.fq")).is_err());
        assert!(parse_map_args(args("--reference r.fa")).is_err());
    }

    #[test]
    fn malformed_values_rejected() {
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --delta x")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --max-locations 0")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --bogus")).is_err());
        assert!(parse_map_args(args("--reference")).is_err());
    }

    #[test]
    fn end_to_end_maps_reads_to_sam() {
        use repute_genome::fasta::{write_fasta, FastaRecord};
        use repute_genome::fastq::{write_fastq, FastqRecord};
        use repute_genome::synth::ReferenceBuilder;

        let dir = std::env::temp_dir().join("repute-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let reference = ReferenceBuilder::new(100_000).seed(5).build();
        let ref_path = dir.join("ref.fa");
        let reads_path = dir.join("reads.fq");
        let out_path = dir.join("out.sam");

        let mut f = Vec::new();
        write_fasta(&mut f, &[FastaRecord::new("chrT", reference.clone())], 70).unwrap();
        std::fs::write(&ref_path, f).unwrap();

        let reads: Vec<FastqRecord> = (0..5)
            .map(|i| {
                let start = 10_000 + i * 7_000;
                FastqRecord::with_uniform_quality(
                    format!("r{i}"),
                    reference.subseq(start..start + 100),
                    40,
                )
            })
            .collect();
        let mut f = Vec::new();
        write_fastq(&mut f, &reads).unwrap();
        std::fs::write(&reads_path, f).unwrap();

        let opts = MapOptions {
            reference: ref_path.to_string_lossy().into_owned(),
            index: None,
            index_cache: None,
            reads: reads_path.to_string_lossy().into_owned(),
            delta: 3,
            s_min: 15,
            max_locations: 10,
            output: Some(out_path.to_string_lossy().into_owned()),
            cigar: true,
            mapper: MapperChoice::Repute,
            prefilter: PrefilterMode::None,
            prefilter_q: qgram::DEFAULT_Q,
            prefilter_bin: qgram::DEFAULT_BIN_WIDTH,
            platform: None,
            schedule: ScheduleMode::Static,
            host_threads: 0,
            fault_plan: None,
            max_retries: DEFAULT_MAX_RETRIES,
            metrics_out: None,
            trace_out: None,
            verbose: false,
            checkpoint: None,
            resume: false,
            checkpoint_every: 1,
        };
        let (mapped, mappings) = run_map(&opts).unwrap();
        assert_eq!(mapped, 5);
        assert!(mappings >= 5);
        let sam = std::fs::read_to_string(&out_path).unwrap();
        assert!(sam.starts_with("@HD"));
        assert!(sam.contains("@SQ\tSN:chrT\tLN:100000"));
        // Exact reads: primary lines carry perfect-match CIGARs.
        assert!(sam.contains("100="));
        for i in 0..5 {
            assert!(sam.contains(&format!("r{i}\t")));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_subcommand_round_trips_and_multi_ref_maps() {
        use repute_genome::fasta::{write_fasta, FastaRecord};
        use repute_genome::fastq::{write_fastq, FastqRecord};
        use repute_genome::synth::ReferenceBuilder;

        let dir = std::env::temp_dir().join("repute-cli-index-test");
        std::fs::create_dir_all(&dir).unwrap();
        let chr_a = ReferenceBuilder::new(60_000).seed(15).build();
        let chr_b = ReferenceBuilder::new(40_000).seed(16).build();
        let ref_path = dir.join("ref.fa");
        let index_path = dir.join("ref.rpx");
        let reads_path = dir.join("reads.fq");
        let out_path = dir.join("out.sam");

        let mut f = Vec::new();
        write_fasta(
            &mut f,
            &[
                FastaRecord::new("chrA", chr_a.clone()),
                FastaRecord::new("chrB", chr_b.clone()),
            ],
            70,
        )
        .unwrap();
        std::fs::write(&ref_path, f).unwrap();

        // Build the index once.
        run_index(&IndexOptions {
            reference: ref_path.to_string_lossy().into_owned(),
            output: index_path.to_string_lossy().into_owned(),
        })
        .unwrap();

        // One read from each chromosome.
        let reads = vec![
            FastqRecord::with_uniform_quality("fromA", chr_a.subseq(20_000..20_100), 40),
            FastqRecord::with_uniform_quality("fromB", chr_b.subseq(5_000..5_100), 40),
        ];
        let mut f = Vec::new();
        write_fastq(&mut f, &reads).unwrap();
        std::fs::write(&reads_path, f).unwrap();

        // Map via the prebuilt index.
        let opts = parse_map_args(
            format!(
                "--index {} --reads {} --delta 3 --s-min 15 --output {}",
                index_path.display(),
                reads_path.display(),
                out_path.display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        let (mapped, _) = run_map(&opts).unwrap();
        assert_eq!(mapped, 2);
        let sam = std::fs::read_to_string(&out_path).unwrap();
        assert!(sam.contains("@SQ\tSN:chrA\tLN:60000"));
        assert!(sam.contains("@SQ\tSN:chrB\tLN:40000"));
        // Each read resolves to its own chromosome with a local position.
        let line_a = sam.lines().find(|l| l.starts_with("fromA\t")).unwrap();
        assert!(line_a.contains("\tchrA\t"), "{line_a}");
        let line_b = sam.lines().find(|l| l.starts_with("fromB\t")).unwrap();
        assert!(
            line_b.contains("\tchrB\t5001\t") || line_b.contains("\tchrB\t"),
            "{line_b}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_cache_hits_validates_and_rebuilds_on_stale() {
        use repute_genome::fasta::{write_fasta, FastaRecord};
        use repute_genome::fastq::{write_fastq, FastqRecord};
        use repute_genome::synth::ReferenceBuilder;

        let dir = std::env::temp_dir().join("repute-cli-index-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let reference = ReferenceBuilder::new(50_000).seed(21).build();
        let ref_path = dir.join("ref.fa");
        let cache_path = dir.join("ref.rpxc");
        let reads_path = dir.join("reads.fq");
        let out_a = dir.join("a.sam");
        let out_b = dir.join("b.sam");

        let mut f = Vec::new();
        write_fasta(&mut f, &[FastaRecord::new("chrC", reference.clone())], 70).unwrap();
        std::fs::write(&ref_path, f).unwrap();
        let reads = vec![FastqRecord::with_uniform_quality(
            "r0",
            reference.subseq(30_000..30_100),
            40,
        )];
        let mut f = Vec::new();
        write_fastq(&mut f, &reads).unwrap();
        std::fs::write(&reads_path, f).unwrap();

        let map_with_cache = |out: &Path| {
            let opts = parse_map_args(
                format!(
                    "--reference {} --index-cache {} --reads {} --delta 3 --s-min 15 --output {}",
                    ref_path.display(),
                    cache_path.display(),
                    reads_path.display(),
                    out.display()
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap();
            run_map(&opts).unwrap()
        };

        // First run: cache miss, builds and saves.
        assert!(!cache_path.exists());
        map_with_cache(&out_a);
        assert!(cache_path.exists());
        let cached = std::fs::read(&cache_path).unwrap();
        assert_eq!(&cached[..4], b"RPXC");

        // Second run: cache hit; output is byte-identical.
        map_with_cache(&out_b);
        assert_eq!(
            std::fs::read(&out_a).unwrap(),
            std::fs::read(&out_b).unwrap()
        );

        // A stale cache (reference changed) is rebuilt, not trusted: the
        // run still resolves against the *new* reference.
        let other = ReferenceBuilder::new(50_000).seed(22).build();
        let mut f = Vec::new();
        write_fasta(&mut f, &[FastaRecord::new("chrD", other)], 70).unwrap();
        std::fs::write(&ref_path, f).unwrap();
        map_with_cache(&out_b);
        let sam = std::fs::read_to_string(&out_b).unwrap();
        assert!(sam.contains("SN:chrD"), "{sam}");
        let rebuilt = std::fs::read(&cache_path).unwrap();
        assert_ne!(cached, rebuilt, "stale cache must be replaced");

        // Corruption is also a silent rebuild, never an error.
        std::fs::write(&cache_path, b"RPXCgarbage").unwrap();
        map_with_cache(&out_b);
        assert!(std::fs::read(&cache_path).unwrap().len() > 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_args_validation() {
        let opts = parse_simulate_args(args(
            "--out-dir d --length 5000 --reads 10 --read-len 80 --seed 7 --profile perfect",
        ))
        .unwrap();
        assert_eq!(opts.length, 5000);
        assert_eq!(opts.profile, "perfect");
        assert!(parse_simulate_args(args("--length 100")).is_err());
        assert!(parse_simulate_args(args("--out-dir d --profile nope")).is_err());
    }

    #[test]
    fn simulate_then_map_end_to_end() {
        let dir = std::env::temp_dir().join("repute-cli-simulate-test");
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 80_000,
            reads: 25,
            read_len: 100,
            seed: 11,
            profile: "err012100".into(),
        })
        .unwrap();
        assert!(dir.join("reference.fa").exists());
        assert!(dir.join("truth.tsv").exists());
        let truth = std::fs::read_to_string(dir.join("truth.tsv")).unwrap();
        assert_eq!(truth.lines().count(), 26); // header + 25 reads

        let out_path = dir.join("out.sam");
        let opts = parse_map_args(
            format!(
                "--reference {}/reference.fa --reads {}/reads.fq --delta 5 --output {}",
                dir_s,
                dir_s,
                out_path.display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        let (mapped, _) = run_map(&opts).unwrap();
        assert!(mapped >= 23, "only {mapped}/25 simulated reads mapped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_args_validation() {
        assert!(parse_index_args(args("--reference r.fa --output o.rpx")).is_ok());
        assert!(parse_index_args(args("--reference r.fa")).is_err());
        assert!(parse_index_args(args("--output o.rpx")).is_err());
        assert!(parse_index_args(args("--wat")).is_err());
    }

    #[test]
    fn mapper_choice_parses() {
        let opts = parse_map_args(args("--reference r.fa --reads q.fq --mapper coral")).unwrap();
        assert_eq!(opts.mapper, MapperChoice::Coral);
        let opts = parse_map_args(args("--reference r.fa --reads q.fq --mapper bwa-mem")).unwrap();
        assert_eq!(opts.mapper, MapperChoice::BwaMem);
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --mapper nope")).is_err());
        // --cigar only works with the repute mapper.
        assert!(
            parse_map_args(args("--reference r.fa --reads q.fq --mapper gem --cigar")).is_err()
        );
    }

    #[test]
    fn prefilter_flags_parse_and_validate() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --prefilter both --prefilter-q 4 --prefilter-bin 256",
        ))
        .unwrap();
        assert_eq!(opts.prefilter, PrefilterMode::Both);
        assert_eq!(opts.prefilter_q, 4);
        assert_eq!(opts.prefilter_bin, 256);
        // Defaults: filtration off, crate-default q-gram parameters.
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.prefilter, PrefilterMode::None);
        assert_eq!(opts.prefilter_q, qgram::DEFAULT_Q);
        assert_eq!(opts.prefilter_bin, qgram::DEFAULT_BIN_WIDTH);
        // Bad mode, out-of-range q, zero bin width.
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --prefilter fast")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --prefilter-q 9")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --prefilter-bin 0")).is_err());
        // The prefilter stage lives inside the repute pipeline only.
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --mapper coral --prefilter shd"
        ))
        .is_err());
    }

    #[test]
    fn prefiltered_map_run_matches_plain_and_reports_counters() {
        let dir = std::env::temp_dir().join("repute-cli-prefilter-test");
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 20,
            read_len: 100,
            seed: 23,
            profile: "err012100".into(),
        })
        .unwrap();
        let run = |extra: &str, sam: &str, metrics: &str| {
            let opts = parse_map_args(
                format!(
                    "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                     --output {dir_s}/{sam} --metrics-out {dir_s}/{metrics} {extra}"
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap();
            run_map(&opts).unwrap()
        };
        let plain = run("", "plain.sam", "plain.jsonl");
        let filtered = run("--prefilter both", "filtered.sam", "filtered.jsonl");
        // Sound filtration: identical SAM output, reduced verification.
        assert_eq!(plain, filtered);
        assert_eq!(
            std::fs::read_to_string(dir.join("plain.sam")).unwrap(),
            std::fs::read_to_string(dir.join("filtered.sam")).unwrap()
        );
        let rendered =
            render_stats(&std::fs::read_to_string(dir.join("filtered.jsonl")).unwrap()).unwrap();
        assert!(
            rendered.contains("prefilter:") && rendered.contains("candidates rejected"),
            "missing prefilter summary in:\n{rendered}"
        );
        // The unfiltered run's telemetry renders without the summary —
        // and so do pre-prefilter files, which simply lack the fields.
        let plain_rendered =
            render_stats(&std::fs::read_to_string(dir.join("plain.jsonl")).unwrap()).unwrap();
        assert!(!plain_rendered.contains("prefilter:"));
        let legacy = "{\"type\":\"read\",\"id\":0,\"word_updates\":7,\"hits\":1}\n";
        assert!(render_stats(legacy).unwrap().contains("word_updates"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn platform_flag_parses() {
        let opts =
            parse_map_args(args("--reference r.fa --reads q.fq --platform hikey970")).unwrap();
        assert_eq!(opts.platform.as_deref(), Some("hikey970"));
    }

    #[test]
    fn schedule_flags_parse_and_validate() {
        // Defaults: static schedule, automatic host threads.
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.schedule, ScheduleMode::Static);
        assert_eq!(opts.host_threads, 0);
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --schedule dynamic --host-threads 3",
        ))
        .unwrap();
        assert_eq!(opts.schedule, ScheduleMode::Dynamic);
        assert_eq!(opts.host_threads, 3);
        let opts = parse_map_args(args("--reference r.fa --reads q.fq --schedule static")).unwrap();
        assert_eq!(opts.schedule, ScheduleMode::Static);
        // Bad mode, non-integer and zero thread counts.
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --schedule greedy")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --host-threads x")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --host-threads 0")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --schedule")).is_err());
    }

    #[test]
    fn dynamic_schedule_run_matches_static_sam_output() {
        let dir = std::env::temp_dir().join("repute-cli-schedule-test");
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 16,
            read_len: 100,
            seed: 29,
            profile: "err012100".into(),
        })
        .unwrap();
        let run = |extra: &str, sam: &str| {
            let opts = parse_map_args(
                format!(
                    "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                     --platform system1 --output {dir_s}/{sam} {extra}"
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap();
            run_map(&opts).unwrap()
        };
        let static_counts = run("--schedule static", "static.sam");
        let dynamic_counts = run("--schedule dynamic --host-threads 2", "dynamic.sam");
        let sequential_counts = run("--host-threads 1", "sequential.sam");
        // Schedule and thread count change the simulated timeline only:
        // the SAM output is byte-identical.
        assert_eq!(static_counts, dynamic_counts);
        assert_eq!(static_counts, sequential_counts);
        let static_sam = std::fs::read_to_string(dir.join("static.sam")).unwrap();
        assert_eq!(
            static_sam,
            std::fs::read_to_string(dir.join("dynamic.sam")).unwrap()
        );
        assert_eq!(
            static_sam,
            std::fs::read_to_string(dir.join("sequential.sam")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_and_verbose_flags_parse() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --metrics-out m.jsonl -v",
        ))
        .unwrap();
        assert_eq!(opts.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(opts.verbose);
        for alias in ["--verbose", "--trace"] {
            let opts =
                parse_map_args(args(&format!("--reference r.fa --reads q.fq {alias}"))).unwrap();
            assert!(opts.verbose, "{alias} should enable verbose");
        }
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --metrics-out")).is_err());
    }

    #[test]
    fn stats_args_validation() {
        assert_eq!(
            parse_stats_args(args("m.jsonl")).unwrap(),
            StatsOptions {
                inputs: vec!["m.jsonl".into()],
                dir: None,
                strict: false,
            }
        );
        assert_eq!(
            parse_stats_args(args("--strict m.jsonl")).unwrap(),
            StatsOptions {
                inputs: vec!["m.jsonl".into()],
                dir: None,
                strict: true,
            }
        );
        // Several files merge; --dir alone is enough.
        assert_eq!(
            parse_stats_args(args("a.jsonl b.jsonl")).unwrap().inputs,
            vec!["a.jsonl".to_string(), "b.jsonl".to_string()],
        );
        assert_eq!(
            parse_stats_args(args("--dir spool")).unwrap(),
            StatsOptions {
                inputs: Vec::new(),
                dir: Some("spool".into()),
                strict: false,
            }
        );
        assert!(parse_stats_args(args("")).is_err());
        assert!(parse_stats_args(args("--dir")).is_err());
        assert!(parse_stats_args(args("--dir a --dir b")).is_err());
        assert!(parse_stats_args(args("--wat m.jsonl")).is_err());
    }

    #[test]
    fn serve_and_submit_args_validation() {
        let opts =
            parse_serve_args(args("--reference r.fa --socket s.sock --queue-capacity 8")).unwrap();
        assert_eq!(opts.queue_capacity, 8);
        assert_eq!(opts.schedule, ScheduleMode::Dynamic);
        let opts = parse_serve_args(args(
            "--reference r.fa --spool jobs --once --tenant-weight acme=3 --tenant-weight lab=0.5",
        ))
        .unwrap();
        assert!(opts.once);
        assert_eq!(
            opts.tenant_weights,
            vec![("acme".to_string(), 3.0), ("lab".to_string(), 0.5)]
        );
        // Transport is required, --once needs --spool, --resume needs
        // --journal, weights must be positive.
        assert!(parse_serve_args(args("--reference r.fa")).is_err());
        assert!(parse_serve_args(args("--reference r.fa --socket s --spool d")).is_err());
        assert!(parse_serve_args(args("--reference r.fa --socket s --once")).is_err());
        assert!(parse_serve_args(args("--reference r.fa --socket s --resume")).is_err());
        assert!(parse_serve_args(args("--reference r.fa --socket s --tenant-weight a=0")).is_err());
        assert!(parse_serve_args(args("--index i.rpx --index-cache c --socket s")).is_err());

        // Quota and compaction flags.
        let opts = parse_serve_args(args(
            "--reference r.fa --socket s.sock --tenant-quota acme=500 \
             --quota-window 30 --journal j.jnl --journal-compact-threshold 16",
        ))
        .unwrap();
        assert_eq!(opts.tenant_quotas, vec![("acme".to_string(), 500)]);
        assert!((opts.quota_window_s - 30.0).abs() < f64::EPSILON);
        assert_eq!(opts.journal_compact_threshold, 16);
        assert!(parse_serve_args(args("--reference r.fa --socket s --tenant-quota a=0")).is_err());
        assert!(parse_serve_args(args("--reference r.fa --socket s --tenant-quota a")).is_err());
        assert!(parse_serve_args(args("--reference r.fa --socket s --quota-window -1")).is_err());
        // The compaction threshold is meaningless without a journal.
        assert!(parse_serve_args(args(
            "--reference r.fa --socket s --journal-compact-threshold 8"
        ))
        .is_err());

        let opts = parse_submit_args(args("--socket s.sock --reads r.fq --tenant acme")).unwrap();
        assert_eq!(opts.tenant.as_deref(), Some("acme"));
        let opts = parse_submit_args(args(
            "--socket s.sock --reads r.fq --deadline 2.5 --priority 7",
        ))
        .unwrap();
        assert_eq!(opts.deadline, Some(2.5));
        assert_eq!(opts.priority, Some(7));
        assert!(parse_submit_args(args("--socket s --reads r.fq --deadline -1")).is_err());
        assert!(parse_submit_args(args("--socket s --reads r.fq --priority x")).is_err());
        let opts = parse_submit_args(args("--socket s.sock --shutdown")).unwrap();
        assert!(opts.shutdown);
        assert!(parse_submit_args(args("--reads r.fq")).is_err());
        assert!(parse_submit_args(args("--socket s.sock")).is_err());
    }

    #[test]
    fn stats_renders_merged_serve_and_job_records() {
        let text = concat!(
            "{\"type\":\"job\",\"seq\":0,\"id\":\"a\",\"tenant\":\"acme\",\"reads\":2,",
            "\"mappings\":3,\"batch\":0,\"latency_s\":0.25,\"replayed\":false}\n",
            "{\"type\":\"job\",\"seq\":1,\"id\":\"b\",\"tenant\":\"lab\",\"reads\":1,",
            "\"mappings\":1,\"batch\":0,\"latency_s\":0.75,\"replayed\":true}\n",
            "{\"type\":\"serve\",\"accepted\":2,\"rejected\":1,\"retry_later\":1,",
            "\"quota_exceeded\":2,\"completed\":2,\"replayed\":1,\"batches\":1,",
            "\"compactions\":1,\"connection_errors\":3,\"spool_skipped\":1,",
            "\"queue_depth\":0,\"queue_depth_max\":2,\"simulated_seconds\":0.75}\n",
            // A second snapshot (another file, concatenated): counters sum.
            "{\"type\":\"serve\",\"accepted\":3,\"rejected\":0,\"retry_later\":0,",
            "\"completed\":3,\"replayed\":0,\"batches\":2,\"queue_depth\":0,",
            "\"queue_depth_max\":3,\"simulated_seconds\":1.25}\n",
        );
        let rendered = render_stats_strict(text).unwrap();
        assert!(rendered.contains("accepted 5"), "{rendered}");
        assert!(rendered.contains("rejected 1"), "{rendered}");
        assert!(rendered.contains("queue depth high-water 3"), "{rendered}");
        assert!(
            rendered.contains("jobs: 2 completed (1 replayed)"),
            "{rendered}"
        );
        assert!(rendered.contains("tenant acme"), "{rendered}");
        // Pooled percentiles over both jobs' latencies.
        assert!(rendered.contains("job latency (merged"), "{rendered}");
        assert!(rendered.contains("n=2"), "{rendered}");
    }

    #[test]
    fn render_stats_is_lenient_by_default_and_strict_on_request() {
        // Lenient: malformed lines are skipped with a count, intact
        // records still render.
        let mixed = "not json\n{\"type\":\"read\",\"id\":0,\"hits\":1}\ngarbage{\n";
        let rendered = render_stats(mixed).unwrap();
        assert!(rendered.contains("1 read records"), "{rendered}");
        assert!(
            rendered.contains("warning: skipped 2 malformed line(s)"),
            "{rendered}"
        );
        // Only-garbage input: the warning alone, not "no records".
        let garbage = render_stats("not json\n").unwrap();
        assert!(garbage.contains("skipped 1 malformed line(s)"), "{garbage}");
        assert!(!garbage.contains("no telemetry records"));
        // Strict: the first malformed line is an error naming its number.
        let err = render_stats_strict(mixed).unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
        assert!(render_stats_strict("{\"type\":\"read\",\"id\":0,\"hits\":1}\n").is_ok());
        assert_eq!(render_stats("").unwrap(), "no telemetry records\n");
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 \
             --fault-plan transient:d0@0.1x2,loss:d1@0.5 --max-retries 4",
        ))
        .unwrap();
        assert_eq!(
            opts.fault_plan.as_deref(),
            Some("transient:d0@0.1x2,loss:d1@0.5")
        );
        assert_eq!(opts.max_retries, 4);
        // Defaults.
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.fault_plan, None);
        assert_eq!(opts.max_retries, DEFAULT_MAX_RETRIES);
        // A fault plan without a platform has nothing to inject into.
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --fault-plan loss:d0@0.1"
        ))
        .is_err());
        // Malformed specs are rejected at parse time, not mid-run.
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --fault-plan loss:x"
        ))
        .is_err());
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --max-retries x"
        ))
        .is_err());
    }

    #[test]
    fn faulted_platform_run_matches_fault_free_sam_output() {
        let dir = std::env::temp_dir().join("repute-cli-fault-test");
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 16,
            read_len: 100,
            seed: 31,
            profile: "err012100".into(),
        })
        .unwrap();
        let run = |extra: &str, sam: &str| {
            let opts = parse_map_args(
                format!(
                    "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                     --platform system1 --output {dir_s}/{sam} {extra}"
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap();
            run_map(&opts).unwrap()
        };
        let clean = run("", "clean.sam");
        let faulted = run(
            "--fault-plan transient:d0@0,slow:d1@0x0.5 --max-retries 3",
            "faulted.sam",
        );
        // Faults change the simulated timeline only: SAM is identical.
        assert_eq!(clean, faulted);
        assert_eq!(
            std::fs::read_to_string(dir.join("clean.sam")).unwrap(),
            std::fs::read_to_string(dir.join("faulted.sam")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_out_round_trips_through_stats() {
        let dir = std::env::temp_dir().join("repute-cli-metrics-test");
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 15,
            read_len: 100,
            seed: 19,
            profile: "err012100".into(),
        })
        .unwrap();
        let metrics_path = dir.join("metrics.jsonl");
        let opts = parse_map_args(
            format!(
                "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                 --output {dir_s}/out.sam --platform system1 --metrics-out {}",
                metrics_path.display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        run_map(&opts).unwrap();

        // Every line parses as a flat JSON object and the record mix is
        // what the acceptance criteria call for: per-read counters,
        // per-device timelines with queued/start/end, and energy.
        use repute_obs::json::{field, parse_flat_object};
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let mut read_lines = 0;
        let mut kinds = Vec::new();
        for line in text.lines() {
            let fields = parse_flat_object(line).expect("line parses");
            let kind = field(&fields, "type")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if kind == "read" {
                read_lines += 1;
                assert!(field(&fields, "word_updates").unwrap().as_u64().is_some());
            }
            if kind == "event" {
                let queued = field(&fields, "queued_s").unwrap().as_f64().unwrap();
                let start = field(&fields, "start_s").unwrap().as_f64().unwrap();
                let end = field(&fields, "end_s").unwrap().as_f64().unwrap();
                assert!(queued <= start && start <= end);
            }
            kinds.push(kind);
        }
        assert_eq!(read_lines, 15);
        for expected in ["run", "stage", "device", "event", "energy"] {
            assert!(kinds.iter().any(|k| k == expected), "missing {expected}");
        }

        // `repute stats` renders the same file.
        let rendered = render_stats(&text).unwrap();
        for needle in [
            "15 read records",
            "word_updates",
            "device",
            "energy:",
            "stage",
        ] {
            assert!(
                rendered.contains(needle),
                "missing {needle:?} in:\n{rendered}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reference_and_index_are_exclusive() {
        assert!(parse_map_args(args("--reference r.fa --index i.rpx --reads q.fq")).is_err());
        assert!(parse_map_args(args("--index i.rpx --reads q.fq")).is_ok());
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 \
             --checkpoint j.rpj --checkpoint-every 3",
        ))
        .unwrap();
        assert_eq!(opts.checkpoint.as_deref(), Some("j.rpj"));
        assert_eq!(opts.checkpoint_every, 3);
        assert!(!opts.resume);
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --checkpoint j.rpj --resume",
        ))
        .unwrap();
        assert!(opts.resume);
        // Defaults.
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.checkpoint, None);
        assert_eq!(opts.checkpoint_every, 1);
        // The journal is batch-granular over the simulated schedule.
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --checkpoint j.rpj")).is_err());
        // --resume / --checkpoint-every ride on --checkpoint.
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --resume")).is_err());
        assert!(
            parse_map_args(args("--reference r.fa --reads q.fq --checkpoint-every 2")).is_err()
        );
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --checkpoint j.rpj \
             --checkpoint-every 0"
        ))
        .is_err());
        // CIGAR traceback is per-read; the journal is per-batch.
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --checkpoint j.rpj --cigar"
        ))
        .is_err());
        // Host-crash events require a journal to crash into…
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --fault-plan crash:@0.5"
        ))
        .is_err());
        // …and device faults cannot mix with a checkpointed run.
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --checkpoint j.rpj \
             --fault-plan loss:d0@0.1"
        ))
        .is_err());
        // The valid combination parses.
        assert!(parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --checkpoint j.rpj \
             --fault-plan crash:@0.5"
        ))
        .is_ok());
    }

    #[test]
    fn checkpointed_run_crashes_resumes_and_matches_plain_output() {
        let dir = std::env::temp_dir().join("repute-cli-checkpoint-test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 24,
            read_len: 100,
            seed: 37,
            profile: "err012100".into(),
        })
        .unwrap();
        let parse = |extra: &str, sam: &str| {
            parse_map_args(
                format!(
                    "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                     --platform system1 --schedule dynamic --output {dir_s}/{sam} {extra}"
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap()
        };

        // Ground truth: the same run without a checkpoint.
        let plain_counts = run_map(&parse("", "plain.sam")).unwrap();

        // A crash early in the simulated timeline leaves a partial
        // journal and the distinct `Interrupted` failure class.
        let crashed = parse(
            "--checkpoint ckpt.rpj --fault-plan crash:@0.000001",
            "crashed.sam",
        );
        let crashed = MapOptions {
            checkpoint: Some(dir.join("ckpt.rpj").to_string_lossy().into_owned()),
            ..crashed
        };
        let err = run_map(&crashed).unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");
        assert!(matches!(err, ReputeError::Interrupted { .. }));
        // The atomic SAM write never ran: no torn output file.
        assert!(!dir.join("crashed.sam").exists());

        // Re-running without --resume refuses the existing journal.
        let mut resumed = parse("", "resumed.sam");
        resumed.checkpoint = Some(dir.join("ckpt.rpj").to_string_lossy().into_owned());
        let err = run_map(&resumed).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");

        // Resuming (without the crash event) finishes the run and the
        // SAM is byte-identical to the uncheckpointed one.
        resumed.resume = true;
        let resumed_counts = run_map(&resumed).unwrap();
        assert_eq!(resumed_counts, plain_counts);
        assert_eq!(
            std::fs::read(dir.join("plain.sam")).unwrap(),
            std::fs::read(dir.join("resumed.sam")).unwrap()
        );

        // A resume under a different configuration is refused with the
        // resume-mismatch class before any mapping work happens.
        let mut mismatched = resumed.clone();
        mismatched.delta = 4;
        let err = run_map(&mismatched).unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        assert!(matches!(err, ReputeError::ResumeMismatch(_)));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_out_flag_parses_and_requires_platform() {
        let opts = parse_map_args(args(
            "--reference r.fa --reads q.fq --platform system1 --trace-out t.json",
        ))
        .unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        // Default: tracing disabled.
        let opts = parse_map_args(args("--reference r.fa --reads q.fq")).unwrap();
        assert_eq!(opts.trace_out, None);
        // Spans live on the simulated timeline.
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --trace-out t.json")).is_err());
        assert!(parse_map_args(args("--reference r.fa --reads q.fq --trace-out")).is_err());
    }

    #[test]
    fn trace_args_validation() {
        assert_eq!(
            parse_trace_args(args("t.json")).unwrap(),
            TraceOptions {
                input: "t.json".into()
            }
        );
        assert!(parse_trace_args(args("")).is_err());
        assert!(parse_trace_args(args("a.json b.json")).is_err());
        assert!(parse_trace_args(args("--wat t.json")).is_err());
    }

    #[test]
    fn trace_out_is_deterministic_valid_and_summarizable() {
        let dir = std::env::temp_dir().join("repute-cli-trace-test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 16,
            read_len: 100,
            seed: 43,
            profile: "err012100".into(),
        })
        .unwrap();
        let run = |extra: &str, trace: &str| {
            let opts = parse_map_args(
                format!(
                    "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                     --platform system1 --output {dir_s}/out.sam --trace-out {dir_s}/{trace} \
                     {extra}"
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap();
            run_map(&opts).unwrap();
            std::fs::read(dir.join(trace)).unwrap()
        };

        // Two identical runs: byte-identical trace files, even with the
        // host-thread count varied (spans are sorted canonically).
        let a = run("--schedule dynamic --host-threads 2", "a.json");
        let b = run("--schedule dynamic --host-threads 4", "b.json");
        assert_eq!(a, b, "identical runs must produce byte-identical traces");

        // The file is a valid Chrome trace event array: every element is
        // an object whose ph is M or X.
        let text = String::from_utf8(a).unwrap();
        let parsed = repute_obs::json::parse_json(&text).unwrap();
        let events = parsed.as_arr().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            let fields = ev.as_obj().unwrap();
            let ph = repute_obs::json::field(fields, "ph")
                .and_then(repute_obs::json::JsonValue::as_str)
                .unwrap();
            assert!(ph == "M" || ph == "X", "unexpected phase {ph:?}");
        }

        // Batch spans carry the read-range args; `repute trace` rolls the
        // file up with per-category percentiles.
        assert!(
            text.contains("\"cat\":\"batch\"") && text.contains("\"lo\":"),
            "{text}"
        );
        let summary = render_trace_summary(&text).unwrap();
        for needle in ["span event(s)", "scheduler", "kernel", "batch", "p99"] {
            assert!(
                summary.contains(needle),
                "missing {needle:?} in:\n{summary}"
            );
        }

        // A faulted static run traces retries and migrations too.
        let faulted = run("--fault-plan transient:d0@0x2 --max-retries 3", "f.json");
        let faulted = String::from_utf8(faulted).unwrap();
        assert!(
            faulted.contains("\"cat\":\"retry\"") && faulted.contains("\"cat\":\"fault\""),
            "{faulted}"
        );

        // A checkpointed run traces the journal commits.
        let ckpt = run(
            &format!("--schedule dynamic --checkpoint {dir_s}/t.rpj"),
            "c.json",
        );
        let ckpt = String::from_utf8(ckpt).unwrap();
        assert!(ckpt.contains("\"cat\":\"checkpoint\""), "{ckpt}");

        // Garbage is rejected with the input-parse class.
        assert!(render_trace_summary("{\"not\":\"an array\"}").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_renders_latency_percentile_table() {
        let dir = std::env::temp_dir().join("repute-cli-latency-test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 15,
            read_len: 100,
            seed: 47,
            profile: "err012100".into(),
        })
        .unwrap();
        let metrics_path = dir.join("m.jsonl");
        let opts = parse_map_args(
            format!(
                "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                 --output {dir_s}/out.sam --platform system1 --metrics-out {}",
                metrics_path.display()
            )
            .split_whitespace()
            .map(String::from),
        )
        .unwrap();
        run_map(&opts).unwrap();

        let text = std::fs::read_to_string(&metrics_path).unwrap();
        // The telemetry carries latency records with the percentile keys…
        assert!(text.contains("\"type\":\"latency\""), "{text}");
        for key in ["\"p50_s\":", "\"p90_s\":", "\"p99_s\":"] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        // …and `repute stats` renders them as a table with one header.
        let rendered = render_stats(&text).unwrap();
        assert!(
            rendered.contains("latency percentiles (simulated seconds)"),
            "{rendered}"
        );
        assert!(rendered.contains("map/filtration"), "{rendered}");
        assert!(rendered.contains("batch"), "{rendered}");
        assert_eq!(
            rendered.matches("latency percentiles").count(),
            1,
            "{rendered}"
        );
        // Legacy telemetry (no latency records) still renders.
        let legacy =
            "{\"type\":\"run\",\"reads\":1,\"simulated_seconds\":0.5,\"wall_seconds\":1.0}\n";
        let legacy_rendered = render_stats(legacy).unwrap();
        assert!(!legacy_rendered.contains("latency percentiles"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_metrics_surface_resumed_batches_in_stats() {
        let dir = std::env::temp_dir().join("repute-cli-checkpoint-stats-test");
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_string_lossy().into_owned();
        run_simulate(&SimulateOptions {
            out_dir: dir_s.clone(),
            length: 60_000,
            reads: 20,
            read_len: 100,
            seed: 41,
            profile: "err012100".into(),
        })
        .unwrap();
        let parse = |extra: &str| {
            parse_map_args(
                format!(
                    "--reference {dir_s}/reference.fa --reads {dir_s}/reads.fq --delta 5 \
                     --platform system1 --schedule dynamic --output {dir_s}/out.sam \
                     --checkpoint {dir_s}/ckpt.rpj --metrics-out {dir_s}/m.jsonl {extra}"
                )
                .split_whitespace()
                .map(String::from),
            )
            .unwrap()
        };
        // Complete a checkpointed run, then resume its finished journal:
        // every batch replays, so the provenance counter is nonzero.
        run_map(&parse("")).unwrap();
        run_map(&parse("--resume")).unwrap();

        // The run record carries the replayed-batch count; per-read
        // records cover the whole run exactly once (no double-counting).
        let text = std::fs::read_to_string(dir.join("m.jsonl")).unwrap();
        let read_lines = text
            .lines()
            .filter(|l| l.contains("\"type\":\"read\""))
            .count();
        assert_eq!(read_lines, 20);
        assert!(text.contains("\"resumed_batches\":"), "{text}");
        let rendered = render_stats(&text).unwrap();
        assert!(
            rendered.contains("resumed from checkpoint:") && rendered.contains("replayed"),
            "missing resume provenance in:\n{rendered}"
        );
        assert!(rendered.contains("20 read records"), "{rendered}");

        // An unresumed telemetry file renders without the provenance line.
        std::fs::remove_file(dir.join("ckpt.rpj")).unwrap();
        std::fs::remove_file(dir.join("ckpt.rpj.manifest")).unwrap();
        run_map(&parse("")).unwrap();
        let fresh = render_stats(&std::fs::read_to_string(dir.join("m.jsonl")).unwrap()).unwrap();
        assert!(!fresh.contains("resumed from checkpoint:"), "{fresh}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
