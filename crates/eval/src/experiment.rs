//! Experiment records and the plain-text table renderer.
//!
//! The bench binaries print tables shaped like the paper's: one row per
//! mapper, one `T(s) / A(%)` column pair per `(read length, δ)` cell. The
//! types serialise to JSON through `repute-obs`'s hand-rolled writer so
//! results can be archived and diffed between runs.

use std::fmt;

use repute_obs::json::JsonObject;

/// One measured cell: a mapper on one `(read length, δ)` configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Simulated mapping time in seconds.
    pub time_s: f64,
    /// Accuracy percentage per the experiment's methodology.
    pub accuracy_pct: f64,
}

/// One row of a results table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Mapper name.
    pub mapper: String,
    /// One entry per table column; `None` renders as a dash (used for
    /// mappers that do not run in a given configuration).
    pub cells: Vec<Option<CellResult>>,
}

/// A results table with labelled columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table title, printed above the header.
    pub title: String,
    /// Column labels, e.g. `"n=100 δ=3"`.
    pub columns: Vec<String>,
    /// Rows in display order.
    pub rows: Vec<TableRow>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count differs from the column count.
    pub fn push_row(&mut self, row: TableRow) {
        assert_eq!(
            row.cells.len(),
            self.columns.len(),
            "row {:?} has {} cells for {} columns",
            row.mapper,
            row.cells.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// The winner (lowest time) of each column, by mapper name.
    pub fn column_winners(&self) -> Vec<Option<&str>> {
        (0..self.columns.len())
            .map(|c| {
                self.rows
                    .iter()
                    .filter_map(|r| r.cells[c].map(|cell| (r.mapper.as_str(), cell.time_s)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(name, _)| name)
            })
            .collect()
    }

    /// Per-column speedup of `target` over `baseline`
    /// (`baseline_time / target_time`; > 1 means `target` is faster).
    /// `None` where either cell is missing or the target time is zero.
    ///
    /// The paper reports exactly these ratios ("REPUTE is up to 13×
    /// faster than Yara", "up to 4× speedup over Hobbes3").
    pub fn speedups(&self, baseline: &str, target: &str) -> Vec<Option<f64>> {
        let find = |name: &str| self.rows.iter().find(|r| r.mapper == name);
        let (Some(base), Some(tgt)) = (find(baseline), find(target)) else {
            return vec![None; self.columns.len()];
        };
        base.cells
            .iter()
            .zip(&tgt.cells)
            .map(|(b, t)| match (b, t) {
                (Some(b), Some(t)) if t.time_s > 0.0 => Some(b.time_s / t.time_s),
                _ => None,
            })
            .collect()
    }

    /// Serialises the table as JSON-lines: one `table` record, then one
    /// `cell` record per measured cell (missing cells are omitted). Uses
    /// the same hand-rolled writer as the telemetry exports, so archived
    /// results and metrics files share one format.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let mut header = JsonObject::new();
        header.str_field("type", "table");
        header.str_field("title", &self.title);
        header.u64_field("columns", self.columns.len() as u64);
        header.u64_field("rows", self.rows.len() as u64);
        out.push_str(&header.finish());
        out.push('\n');
        for row in &self.rows {
            for (col, cell) in self.columns.iter().zip(&row.cells) {
                let Some(c) = cell else { continue };
                let mut obj = JsonObject::new();
                obj.str_field("type", "cell");
                obj.str_field("mapper", &row.mapper);
                obj.str_field("column", col);
                obj.f64_field("time_s", c.time_s);
                obj.f64_field("accuracy_pct", c.accuracy_pct);
                out.push_str(&obj.finish());
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let name_width = self
            .rows
            .iter()
            .map(|r| r.mapper.len())
            .chain([6])
            .max()
            .unwrap_or(6);
        write!(f, "{:<name_width$}", "Mapper")?;
        for col in &self.columns {
            write!(f, " | {col:>16}")?;
        }
        writeln!(f)?;
        let total = name_width + self.columns.len() * 19;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write!(f, "{:<name_width$}", row.mapper)?;
            for cell in &row.cells {
                match cell {
                    Some(c) => write!(f, " | {:>8.2}s {:>5.1}%", c.time_s, c.accuracy_pct)?,
                    None => write!(f, " | {:>16}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(time_s: f64, accuracy_pct: f64) -> Option<CellResult> {
        Some(CellResult {
            time_s,
            accuracy_pct,
        })
    }

    fn sample() -> Table {
        let mut t = Table::new("Demo", vec!["n=100 δ=3".into(), "n=100 δ=4".into()]);
        t.push_row(TableRow {
            mapper: "REPUTE".into(),
            cells: vec![cell(7.49, 99.99), cell(14.88, 99.98)],
        });
        t.push_row(TableRow {
            mapper: "RazerS3".into(),
            cells: vec![cell(26.7, 100.0), None],
        });
        t
    }

    #[test]
    fn renders_rows_and_dashes() {
        let text = sample().to_string();
        assert!(text.contains("REPUTE"));
        assert!(text.contains("7.49s"));
        assert!(text.contains(" - ") || text.contains("-\n") || text.contains("   -"));
    }

    #[test]
    fn winners_pick_lowest_time_per_column() {
        let t = sample();
        assert_eq!(t.column_winners(), vec![Some("REPUTE"), Some("REPUTE")]);
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn mismatched_row_rejected() {
        let mut t = sample();
        t.push_row(TableRow {
            mapper: "bad".into(),
            cells: vec![],
        });
    }

    #[test]
    fn speedups_compute_ratios_and_handle_gaps() {
        let t = sample();
        let ratios = t.speedups("RazerS3", "REPUTE");
        assert!((ratios[0].unwrap() - 26.7 / 7.49).abs() < 1e-9);
        assert_eq!(ratios[1], None); // RazerS3's second cell is missing
        assert_eq!(t.speedups("nope", "REPUTE"), vec![None, None]);
    }

    #[test]
    fn tables_serialise_to_json_lines() {
        let text = sample().to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        // Header plus one record per present cell (RazerS3's second is
        // None).
        assert_eq!(lines.len(), 1 + 3);
        let header = repute_obs::json::parse_flat_object(lines[0]).expect("header parses");
        assert_eq!(
            repute_obs::json::field(&header, "title").unwrap().as_str(),
            Some("Demo")
        );
        let cell = repute_obs::json::parse_flat_object(lines[1]).expect("cell parses");
        assert_eq!(
            repute_obs::json::field(&cell, "mapper").unwrap().as_str(),
            Some("REPUTE")
        );
        assert_eq!(
            repute_obs::json::field(&cell, "time_s").unwrap().as_f64(),
            Some(7.49)
        );
    }
}
