//! Evaluation substrate: accuracy measurement, output formats and the
//! experiment harness behind every table and figure of the paper.
//!
//! * [`accuracy`] — the two accuracy methodologies of §III: the
//!   *all-locations* comparison against a gold standard (§III-A) and the
//!   Rabema-style *any-best* comparison (§III-B/C);
//! * [`sam`] — SAM-format output (a §IV future-work item of the paper,
//!   implemented here as an extension);
//! * [`experiment`] — result records, serialisable experiment
//!   configurations and the plain-text table renderer used by the bench
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod coverage;
pub mod experiment;
pub mod sam;
pub mod stats;

pub use accuracy::{all_best_accuracy, all_locations_accuracy, any_best_accuracy, GoldStandard};
pub use experiment::{CellResult, Table, TableRow};
