//! Mapping-run summary statistics.
//!
//! The numbers a user checks first after a run: how many reads mapped,
//! how ambiguous the mappings are, and how the edit distances distribute.
//! Used by the `repute` CLI's end-of-run summary.

use std::fmt;

use repute_mappers::Mapping;

/// Aggregate statistics over a mapping run.
///
/// # Example
///
/// ```
/// use repute_eval::stats::MappingStats;
/// use repute_genome::Strand;
/// use repute_mappers::Mapping;
///
/// let per_read = vec![
///     vec![Mapping { position: 10, strand: Strand::Forward, distance: 0 }],
///     vec![],
///     vec![
///         Mapping { position: 5, strand: Strand::Forward, distance: 2 },
///         Mapping { position: 99, strand: Strand::Reverse, distance: 2 },
///     ],
/// ];
/// let stats = MappingStats::collect(per_read.iter().map(|v| v.as_slice()));
/// assert_eq!(stats.reads, 3);
/// assert_eq!(stats.mapped_reads, 2);
/// assert_eq!(stats.multi_mapped_reads, 1);
/// assert!((stats.mapping_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MappingStats {
    /// Number of reads processed.
    pub reads: usize,
    /// Reads with at least one mapping.
    pub mapped_reads: usize,
    /// Reads with more than one mapping.
    pub multi_mapped_reads: usize,
    /// Total mapping locations reported.
    pub total_mappings: usize,
    /// `distance_histogram[d]` counts mappings with edit distance `d`.
    pub distance_histogram: Vec<usize>,
}

impl MappingStats {
    /// Collects statistics from per-read mapping slices.
    pub fn collect<'a, I>(per_read: I) -> MappingStats
    where
        I: IntoIterator<Item = &'a [Mapping]>,
    {
        let mut stats = MappingStats::default();
        for mappings in per_read {
            stats.reads += 1;
            if !mappings.is_empty() {
                stats.mapped_reads += 1;
            }
            if mappings.len() > 1 {
                stats.multi_mapped_reads += 1;
            }
            stats.total_mappings += mappings.len();
            for m in mappings {
                let d = m.distance as usize;
                if stats.distance_histogram.len() <= d {
                    stats.distance_histogram.resize(d + 1, 0);
                }
                stats.distance_histogram[d] += 1;
            }
        }
        stats
    }

    /// Fraction of reads with at least one mapping, in `[0, 1]`
    /// (0 when no reads were processed).
    pub fn mapping_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.mapped_reads as f64 / self.reads as f64
        }
    }

    /// Mean mappings per mapped read (0 when nothing mapped).
    pub fn mean_multiplicity(&self) -> f64 {
        if self.mapped_reads == 0 {
            0.0
        } else {
            self.total_mappings as f64 / self.mapped_reads as f64
        }
    }
}

impl fmt::Display for MappingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reads: {} | mapped: {} ({:.1}%) | multi-mapped: {} | locations: {} ({:.2}/mapped read)",
            self.reads,
            self.mapped_reads,
            self.mapping_rate() * 100.0,
            self.multi_mapped_reads,
            self.total_mappings,
            self.mean_multiplicity()
        )?;
        if !self.distance_histogram.is_empty() {
            write!(f, "edit distances:")?;
            for (d, count) in self.distance_histogram.iter().enumerate() {
                if *count > 0 {
                    write!(f, " {d}:{count}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::Strand;

    fn m(distance: u32) -> Mapping {
        Mapping {
            position: 0,
            strand: Strand::Forward,
            distance,
        }
    }

    #[test]
    fn collects_counts_and_histogram() {
        let per_read = [vec![m(0), m(2), m(2)], vec![], vec![m(1)], vec![m(5)]];
        let stats = MappingStats::collect(per_read.iter().map(|v| v.as_slice()));
        assert_eq!(stats.reads, 4);
        assert_eq!(stats.mapped_reads, 3);
        assert_eq!(stats.multi_mapped_reads, 1);
        assert_eq!(stats.total_mappings, 5);
        assert_eq!(stats.distance_histogram, vec![1, 1, 2, 0, 0, 1]);
        assert!((stats.mean_multiplicity() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run() {
        let stats = MappingStats::collect(std::iter::empty());
        assert_eq!(stats.reads, 0);
        assert_eq!(stats.mapping_rate(), 0.0);
        assert_eq!(stats.mean_multiplicity(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let per_read = [vec![m(0)], vec![m(3)]];
        let stats = MappingStats::collect(per_read.iter().map(|v| v.as_slice()));
        let text = stats.to_string();
        assert!(text.contains("mapped: 2 (100.0%)"));
        assert!(text.contains("0:1"));
        assert!(text.contains("3:1"));
    }
}
