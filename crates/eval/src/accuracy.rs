//! The paper's two accuracy methodologies.
//!
//! §III-A (homogeneous scenario): "all the mapping locations reported by
//! the gold standard per read is searched in the output of other mappers.
//! Along with the mapping locations the genome strand ... are, also,
//! matched." RazerS3 plays gold standard.
//!
//! §III-B (heterogeneous scenario, after the Rabema *any-best* scenario):
//! "we identify if all the reads mapped by the gold standard have been
//! reported by other mappers with at least one matching mapping location
//! and strand."
//!
//! Positions are matched with a tolerance of δ bases: mappers report
//! candidate diagonals, which indels can shift by up to the edit distance
//! (Rabema's interval-based matching absorbs the same slack).

use repute_genome::Strand;
use repute_mappers::Mapping;

/// Per-read outputs of the gold-standard mapper.
#[derive(Debug, Clone, Default)]
pub struct GoldStandard {
    per_read: Vec<Vec<Mapping>>,
}

impl GoldStandard {
    /// Wraps the gold mapper's per-read mapping lists (index = read id).
    pub fn new(per_read: Vec<Vec<Mapping>>) -> GoldStandard {
        GoldStandard { per_read }
    }

    /// Number of reads covered.
    pub fn len(&self) -> usize {
        self.per_read.len()
    }

    /// Returns `true` when the gold standard covers no reads.
    pub fn is_empty(&self) -> bool {
        self.per_read.is_empty()
    }

    /// The gold mappings of one read.
    ///
    /// # Panics
    ///
    /// Panics if `read` is out of range.
    pub fn mappings(&self, read: usize) -> &[Mapping] {
        &self.per_read[read]
    }
}

fn matches(gold: &Mapping, got: &Mapping, tolerance: u32) -> bool {
    gold.strand == got.strand && gold.position.abs_diff(got.position) <= tolerance
}

fn strand_best(mappings: &[Mapping], strand: Strand) -> Option<u32> {
    mappings
        .iter()
        .filter(|m| m.strand == strand)
        .map(|m| m.distance)
        .min()
}

/// §III-A accuracy: the percentage of gold-standard `(read, location,
/// strand)` triples found in `results`, matched within `tolerance` bases.
///
/// Returns 100.0 when the gold standard reports nothing at all.
///
/// # Panics
///
/// Panics if `results.len() != gold.len()`.
pub fn all_locations_accuracy(
    gold: &GoldStandard,
    results: &[Vec<Mapping>],
    tolerance: u32,
) -> f64 {
    assert_eq!(
        results.len(),
        gold.len(),
        "result set covers {} reads, gold standard {}",
        results.len(),
        gold.len()
    );
    let mut total = 0usize;
    let mut found = 0usize;
    for (gold_maps, got) in gold.per_read.iter().zip(results) {
        for g in gold_maps {
            total += 1;
            if got.iter().any(|m| matches(g, m, tolerance)) {
                found += 1;
            }
        }
    }
    if total == 0 {
        100.0
    } else {
        found as f64 * 100.0 / total as f64
    }
}

/// §III-B accuracy (Rabema *any-best*): the percentage of gold-mapped
/// reads for which `results` reports at least one location matching a
/// gold location of the read's best stratum, within `tolerance` bases.
///
/// Returns 100.0 when the gold standard maps no read.
///
/// # Panics
///
/// Panics if `results.len() != gold.len()`.
pub fn any_best_accuracy(gold: &GoldStandard, results: &[Vec<Mapping>], tolerance: u32) -> f64 {
    assert_eq!(
        results.len(),
        gold.len(),
        "result set covers {} reads, gold standard {}",
        results.len(),
        gold.len()
    );
    let mut mapped = 0usize;
    let mut hit = 0usize;
    for (gold_maps, got) in gold.per_read.iter().zip(results) {
        if gold_maps.is_empty() {
            continue;
        }
        mapped += 1;
        // Best stratum per strand (a read may map equally well on both).
        let best_f = strand_best(gold_maps, Strand::Forward);
        let best_r = strand_best(gold_maps, Strand::Reverse);
        let best = best_f.unwrap_or(u32::MAX).min(best_r.unwrap_or(u32::MAX));
        let any = gold_maps
            .iter()
            .filter(|g| g.distance == best)
            .any(|g| got.iter().any(|m| matches(g, m, tolerance)));
        if any {
            hit += 1;
        }
    }
    if mapped == 0 {
        100.0
    } else {
        hit as f64 * 100.0 / mapped as f64
    }
}

/// Rabema *all-best* accuracy: the percentage of gold-mapped reads for
/// which `results` reports **every** best-stratum gold location (within
/// `tolerance` bases). Stricter than [`any_best_accuracy`], looser than
/// [`all_locations_accuracy`] — the third Rabema scenario, provided as an
/// extension beyond the two the paper uses.
///
/// Returns 100.0 when the gold standard maps no read.
///
/// # Panics
///
/// Panics if `results.len() != gold.len()`.
pub fn all_best_accuracy(gold: &GoldStandard, results: &[Vec<Mapping>], tolerance: u32) -> f64 {
    assert_eq!(
        results.len(),
        gold.len(),
        "result set covers {} reads, gold standard {}",
        results.len(),
        gold.len()
    );
    let mut mapped = 0usize;
    let mut hit = 0usize;
    for (gold_maps, got) in gold.per_read.iter().zip(results) {
        if gold_maps.is_empty() {
            continue;
        }
        mapped += 1;
        let best = gold_maps
            .iter()
            .map(|m| m.distance)
            .min()
            .expect("non-empty");
        let all = gold_maps
            .iter()
            .filter(|g| g.distance == best)
            .all(|g| got.iter().any(|m| matches(g, m, tolerance)));
        if all {
            hit += 1;
        }
    }
    if mapped == 0 {
        100.0
    } else {
        hit as f64 * 100.0 / mapped as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(position: u32, strand: Strand, distance: u32) -> Mapping {
        Mapping {
            position,
            strand,
            distance,
        }
    }

    fn gold_two_reads() -> GoldStandard {
        GoldStandard::new(vec![
            vec![
                m(100, Strand::Forward, 0),
                m(500, Strand::Forward, 2),
                m(900, Strand::Reverse, 1),
            ],
            vec![m(42, Strand::Reverse, 0)],
        ])
    }

    #[test]
    fn all_locations_full_match() {
        let gold = gold_two_reads();
        let results = vec![gold.mappings(0).to_vec(), gold.mappings(1).to_vec()];
        assert_eq!(all_locations_accuracy(&gold, &results, 0), 100.0);
    }

    #[test]
    fn all_locations_counts_each_missing_location() {
        let gold = gold_two_reads();
        let results = vec![vec![m(100, Strand::Forward, 0)], vec![]];
        // 1 of 4 gold locations found.
        assert!((all_locations_accuracy(&gold, &results, 0) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn strand_must_match() {
        let gold = GoldStandard::new(vec![vec![m(10, Strand::Forward, 0)]]);
        let wrong = vec![vec![m(10, Strand::Reverse, 0)]];
        assert_eq!(all_locations_accuracy(&gold, &wrong, 5), 0.0);
    }

    #[test]
    fn tolerance_absorbs_indel_shift() {
        let gold = GoldStandard::new(vec![vec![m(10, Strand::Forward, 2)]]);
        let shifted = vec![vec![m(12, Strand::Forward, 2)]];
        assert_eq!(all_locations_accuracy(&gold, &shifted, 2), 100.0);
        assert_eq!(all_locations_accuracy(&gold, &shifted, 1), 0.0);
    }

    #[test]
    fn any_best_requires_only_one_best_location() {
        let gold = gold_two_reads();
        // Read 0's best stratum is distance 0 at position 100.
        let results = vec![
            vec![m(101, Strand::Forward, 0)],
            vec![m(42, Strand::Reverse, 0)],
        ];
        assert_eq!(any_best_accuracy(&gold, &results, 2), 100.0);
        // Matching only a suboptimal location does not count.
        let sub = vec![vec![m(500, Strand::Forward, 2)], vec![]];
        assert_eq!(any_best_accuracy(&gold, &sub, 2), 0.0);
    }

    #[test]
    fn unmapped_gold_reads_are_excluded() {
        let gold = GoldStandard::new(vec![vec![], vec![m(5, Strand::Forward, 0)]]);
        let results = vec![vec![], vec![m(5, Strand::Forward, 0)]];
        assert_eq!(any_best_accuracy(&gold, &results, 0), 100.0);
    }

    #[test]
    fn empty_gold_standard_is_vacuously_perfect() {
        let gold = GoldStandard::new(vec![vec![], vec![]]);
        let results = vec![vec![], vec![]];
        assert_eq!(all_locations_accuracy(&gold, &results, 0), 100.0);
        assert_eq!(any_best_accuracy(&gold, &results, 0), 100.0);
    }

    #[test]
    #[should_panic(expected = "result set covers")]
    fn mismatched_lengths_rejected() {
        let gold = gold_two_reads();
        let _ = all_locations_accuracy(&gold, &[], 0);
    }

    #[test]
    fn all_best_sits_between_any_best_and_all_locations() {
        // Gold: two co-optimal locations and one suboptimal.
        let gold = GoldStandard::new(vec![vec![
            m(100, Strand::Forward, 0),
            m(400, Strand::Forward, 0),
            m(800, Strand::Forward, 3),
        ]]);
        // Reports one of the two best locations only.
        let one_best = vec![vec![m(100, Strand::Forward, 0)]];
        assert_eq!(any_best_accuracy(&gold, &one_best, 0), 100.0);
        assert_eq!(all_best_accuracy(&gold, &one_best, 0), 0.0);
        // Reports both best locations.
        let both_best = vec![vec![m(100, Strand::Forward, 0), m(400, Strand::Forward, 0)]];
        assert_eq!(all_best_accuracy(&gold, &both_best, 0), 100.0);
        assert!((all_locations_accuracy(&gold, &both_best, 0) - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_best_vacuous_cases() {
        let gold = GoldStandard::new(vec![vec![], vec![]]);
        assert_eq!(all_best_accuracy(&gold, &[vec![], vec![]], 0), 100.0);
    }

    #[test]
    fn best_mapper_scores_low_on_all_locations_but_high_on_any_best() {
        // The Yara/GEM/BWA-MEM pattern from Tables I vs II.
        let gold = GoldStandard::new(vec![vec![
            m(100, Strand::Forward, 0),
            m(300, Strand::Forward, 3),
            m(700, Strand::Forward, 4),
            m(950, Strand::Forward, 5),
        ]]);
        let best_only = vec![vec![m(100, Strand::Forward, 0)]];
        assert!((all_locations_accuracy(&gold, &best_only, 0) - 25.0).abs() < 1e-9);
        assert_eq!(any_best_accuracy(&gold, &best_only, 0), 100.0);
    }
}
