//! Per-position coverage (pileup depth) from mapping locations.
//!
//! The downstream consumer's first question after mapping: how deeply is
//! each region covered? This module accumulates read spans into a depth
//! track and summarises it per interval — used by the gene-panel example
//! to report per-target coverage.

use repute_mappers::Mapping;

/// A depth track over one reference sequence.
///
/// # Example
///
/// ```
/// use repute_eval::coverage::CoverageMap;
/// use repute_genome::Strand;
/// use repute_mappers::Mapping;
///
/// let mut coverage = CoverageMap::new(100);
/// coverage.add(&Mapping { position: 10, strand: Strand::Forward, distance: 0 }, 20);
/// coverage.add(&Mapping { position: 25, strand: Strand::Reverse, distance: 1 }, 20);
/// assert_eq!(coverage.depth(5), 0);
/// assert_eq!(coverage.depth(12), 1);
/// assert_eq!(coverage.depth(27), 2);
/// assert!((coverage.mean_depth(10..30) - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    /// Difference array; prefix sums give depth.
    diffs: Vec<i64>,
    len: usize,
    finalized: Option<Vec<u32>>,
}

impl CoverageMap {
    /// Creates an empty track over a reference of `len` bases.
    pub fn new(len: usize) -> CoverageMap {
        CoverageMap {
            diffs: vec![0; len + 1],
            len,
            finalized: None,
        }
    }

    /// Reference length the track covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for a zero-length reference.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accumulates one mapping of a read of `read_len` bases. Spans are
    /// clipped at the reference end.
    pub fn add(&mut self, mapping: &Mapping, read_len: usize) {
        let start = (mapping.position as usize).min(self.len);
        let end = (start + read_len).min(self.len);
        self.diffs[start] += 1;
        self.diffs[end] -= 1;
        self.finalized = None;
    }

    fn depths(&mut self) -> &[u32] {
        if self.finalized.is_none() {
            let mut running = 0i64;
            let depths = self.diffs[..self.len]
                .iter()
                .map(|&d| {
                    running += d;
                    running.max(0) as u32
                })
                .collect();
            self.finalized = Some(depths);
        }
        self.finalized.as_deref().expect("just set")
    }

    /// Depth at one position.
    ///
    /// # Panics
    ///
    /// Panics if `position >= len`.
    pub fn depth(&mut self, position: usize) -> u32 {
        assert!(
            position < self.len,
            "position {position} out of range {}",
            self.len
        );
        self.depths()[position]
    }

    /// Mean depth over a half-open interval (0.0 for an empty interval).
    ///
    /// # Panics
    ///
    /// Panics if the interval exceeds the reference.
    pub fn mean_depth(&mut self, range: std::ops::Range<usize>) -> f64 {
        assert!(
            range.end <= self.len,
            "range {range:?} out of bounds {}",
            self.len
        );
        if range.is_empty() {
            return 0.0;
        }
        let slice = &self.depths()[range.clone()];
        slice.iter().map(|&d| u64::from(d)).sum::<u64>() as f64 / slice.len() as f64
    }

    /// Fraction of an interval covered to at least `min_depth`
    /// (0.0 for an empty interval).
    ///
    /// # Panics
    ///
    /// Panics if the interval exceeds the reference.
    pub fn breadth(&mut self, range: std::ops::Range<usize>, min_depth: u32) -> f64 {
        assert!(
            range.end <= self.len,
            "range {range:?} out of bounds {}",
            self.len
        );
        if range.is_empty() {
            return 0.0;
        }
        let slice = &self.depths()[range.clone()];
        slice.iter().filter(|&&d| d >= min_depth).count() as f64 / slice.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::Strand;

    fn mapping(position: u32) -> Mapping {
        Mapping {
            position,
            strand: Strand::Forward,
            distance: 0,
        }
    }

    #[test]
    fn depth_accumulates_and_clips() {
        let mut cov = CoverageMap::new(50);
        cov.add(&mapping(0), 10);
        cov.add(&mapping(5), 10);
        cov.add(&mapping(45), 10); // clipped at 50
        assert_eq!(cov.depth(0), 1);
        assert_eq!(cov.depth(7), 2);
        assert_eq!(cov.depth(10), 1);
        assert_eq!(cov.depth(20), 0);
        assert_eq!(cov.depth(49), 1);
    }

    #[test]
    fn mean_and_breadth() {
        let mut cov = CoverageMap::new(20);
        cov.add(&mapping(0), 10);
        cov.add(&mapping(0), 10);
        assert!((cov.mean_depth(0..20) - 1.0).abs() < 1e-12);
        assert!((cov.breadth(0..20, 1) - 0.5).abs() < 1e-12);
        assert!((cov.breadth(0..10, 2) - 1.0).abs() < 1e-12);
        assert_eq!(cov.mean_depth(5..5), 0.0);
    }

    #[test]
    fn adding_after_query_invalidates_cache() {
        let mut cov = CoverageMap::new(10);
        cov.add(&mapping(0), 5);
        assert_eq!(cov.depth(2), 1);
        cov.add(&mapping(0), 5);
        assert_eq!(cov.depth(2), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_depth_panics() {
        let mut cov = CoverageMap::new(5);
        let _ = cov.depth(5);
    }
}
