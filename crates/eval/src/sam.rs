//! Minimal SAM output.
//!
//! The paper lists SAM output as future work for REPUTE (§IV: "We envisage
//! that the future versions of REPUTE will deliver ... SAM output
//! format"); this module implements it as an extension. Only the fields a
//! downstream consumer of this reproduction needs are emitted: the
//! mandatory 11 columns with optional `NM` (edit distance) tag.

use std::io::Write;

use repute_align::Cigar;
use repute_genome::{DnaSeq, GenomeError, Strand};
use repute_mappers::Mapping;

/// SAM FLAG bit for reverse-strand alignment.
const FLAG_REVERSE: u16 = 0x10;
/// SAM FLAG bit for an unmapped read.
const FLAG_UNMAPPED: u16 = 0x4;
/// SAM FLAG bit for a secondary alignment.
const FLAG_SECONDARY: u16 = 0x100;

/// One read's alignments, ready for SAM serialisation.
#[derive(Debug, Clone)]
pub struct SamRecord<'a> {
    /// Read name (QNAME).
    pub name: &'a str,
    /// The read sequence (as sequenced).
    pub seq: &'a DnaSeq,
    /// Mappings to emit; the first is primary, the rest secondary.
    pub mappings: &'a [Mapping],
    /// Optional CIGAR for the primary mapping (others emit `*`).
    pub cigar: Option<&'a Cigar>,
}

/// Writes a SAM header for a single-reference file.
///
/// # Errors
///
/// Propagates I/O errors from `out` (a `&mut` writer is accepted).
pub fn write_header<W: Write>(
    out: W,
    reference_name: &str,
    reference_len: usize,
) -> Result<(), GenomeError> {
    write_header_multi(out, &[(reference_name, reference_len)])
}

/// Writes a SAM header listing several reference sequences (one `@SQ`
/// line per record, input order preserved).
///
/// # Errors
///
/// Propagates I/O errors from `out` (a `&mut` writer is accepted).
pub fn write_header_multi<W: Write>(
    mut out: W,
    references: &[(&str, usize)],
) -> Result<(), GenomeError> {
    writeln!(out, "@HD\tVN:1.6\tSO:unknown")?;
    for (name, len) in references {
        writeln!(out, "@SQ\tSN:{name}\tLN:{len}")?;
    }
    writeln!(out, "@PG\tID:repute\tPN:repute\tVN:0.1.0")?;
    Ok(())
}

/// Writes one read's records (or an unmapped record when it has none).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_record<W: Write>(
    mut out: W,
    reference_name: &str,
    record: &SamRecord<'_>,
) -> Result<(), GenomeError> {
    if record.mappings.is_empty() {
        writeln!(
            out,
            "{}\t{}\t*\t0\t0\t*\t*\t0\t0\t{}\t*",
            record.name, FLAG_UNMAPPED, record.seq
        )?;
        return Ok(());
    }
    for (i, m) in record.mappings.iter().enumerate() {
        let mut flag = 0u16;
        if m.strand == Strand::Reverse {
            flag |= FLAG_REVERSE;
        }
        if i > 0 {
            flag |= FLAG_SECONDARY;
        }
        let cigar = match (i, record.cigar) {
            (0, Some(c)) => c.to_string(),
            _ => format!("{}M", record.seq.len()),
        };
        // SAM stores the sequence on the reference's forward strand.
        let seq = match m.strand {
            Strand::Forward => record.seq.to_string(),
            Strand::Reverse => record.seq.reverse_complement().to_string(),
        };
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t255\t{}\t*\t0\t0\t{}\t*\tNM:i:{}",
            record.name,
            flag,
            reference_name,
            m.position + 1, // SAM is 1-based
            cigar,
            seq,
            m.distance
        )?;
    }
    Ok(())
}

/// Writes one read's records against a multi-sequence reference, using
/// mappings already resolved to `(record, local position)` by
/// [`repute_mappers::multiref::ReferenceSet::resolve_mappings`].
///
/// `names[i]` must be the name of record `i`. The first mapping is
/// primary (and carries `cigar` when given); the rest are secondary.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Panics
///
/// Panics if a mapping's record index is outside `names`.
pub fn write_resolved_record<W: Write>(
    mut out: W,
    names: &[&str],
    read_name: &str,
    seq: &DnaSeq,
    mappings: &[repute_mappers::multiref::ResolvedMapping],
    cigar: Option<&Cigar>,
) -> Result<(), GenomeError> {
    if mappings.is_empty() {
        writeln!(
            out,
            "{read_name}\t{FLAG_UNMAPPED}\t*\t0\t0\t*\t*\t0\t0\t{seq}\t*"
        )?;
        return Ok(());
    }
    for (i, m) in mappings.iter().enumerate() {
        let mut flag = 0u16;
        if m.strand == Strand::Reverse {
            flag |= FLAG_REVERSE;
        }
        if i > 0 {
            flag |= FLAG_SECONDARY;
        }
        let cigar_text = match (i, cigar) {
            (0, Some(c)) => c.to_string(),
            _ => format!("{}M", seq.len()),
        };
        let seq_text = match m.strand {
            Strand::Forward => seq.to_string(),
            Strand::Reverse => seq.reverse_complement().to_string(),
        };
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t255\t{}\t*\t0\t0\t{}\t*\tNM:i:{}",
            read_name,
            flag,
            names[m.record],
            m.position + 1,
            cigar_text,
            seq_text,
            m.distance
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_align::CigarOp;

    fn read() -> DnaSeq {
        "ACGT".parse().unwrap()
    }

    #[test]
    fn header_has_reference_line() {
        let mut buf = Vec::new();
        write_header(&mut buf, "chr21sim", 1234).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("@SQ\tSN:chr21sim\tLN:1234"));
    }

    #[test]
    fn unmapped_record() {
        let seq = read();
        let rec = SamRecord {
            name: "r1",
            seq: &seq,
            mappings: &[],
            cigar: None,
        };
        let mut buf = Vec::new();
        write_record(&mut buf, "chr", &rec).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("r1\t4\t*\t0"));
    }

    #[test]
    fn multi_reference_header_and_resolved_records() {
        let mut buf = Vec::new();
        write_header_multi(&mut buf, &[("chrA", 100), ("chrB", 50)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("@SQ\tSN:chrA\tLN:100"));
        assert!(text.contains("@SQ\tSN:chrB\tLN:50"));

        let seq = read();
        let mappings = [
            repute_mappers::multiref::ResolvedMapping {
                record: 1,
                position: 7,
                strand: Strand::Forward,
                distance: 1,
            },
            repute_mappers::multiref::ResolvedMapping {
                record: 0,
                position: 90,
                strand: Strand::Reverse,
                distance: 2,
            },
        ];
        let mut buf = Vec::new();
        write_resolved_record(&mut buf, &["chrA", "chrB"], "r9", &seq, &mappings, None).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\tchrB\t8\t"));
        assert!(lines[1].contains("\tchrA\t91\t"));
        assert!(lines[1].starts_with("r9\t272\t")); // secondary + reverse

        let mut buf = Vec::new();
        write_resolved_record(&mut buf, &["chrA"], "r0", &seq, &[], None).unwrap();
        assert!(String::from_utf8(buf).unwrap().starts_with("r0\t4\t*"));
    }

    #[test]
    fn primary_and_secondary_records() {
        let seq = read();
        let mappings = [
            Mapping {
                position: 9,
                strand: Strand::Forward,
                distance: 0,
            },
            Mapping {
                position: 99,
                strand: Strand::Reverse,
                distance: 1,
            },
        ];
        let cigar = Cigar::from_ops([CigarOp::Match; 4]);
        let rec = SamRecord {
            name: "r2",
            seq: &seq,
            mappings: &mappings,
            cigar: Some(&cigar),
        };
        let mut buf = Vec::new();
        write_record(&mut buf, "chr", &rec).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // 1-based position, explicit CIGAR, NM tag.
        assert!(lines[0].contains("\t10\t255\t4=\t"));
        assert!(lines[0].ends_with("NM:i:0"));
        // Secondary + reverse flags, reverse-complemented sequence.
        assert!(lines[1].starts_with("r2\t272\t"));
        assert!(lines[1].contains("ACGT")); // ACGT is its own RC
        assert!(lines[1].contains("\t4M\t"));
    }
}
