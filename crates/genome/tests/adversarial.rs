//! Adversarial-corpus hardening: every malformed FASTA/FASTQ input in
//! this file must surface as a typed [`GenomeError`] — never a panic,
//! never a silently wrong record — and the well-formed-but-awkward
//! inputs (CRLF line endings, wrapped sequences, blank separator lines)
//! must parse to exactly the expected records.

use repute_genome::fasta::{read_fasta, AmbiguityPolicy};
use repute_genome::fastq::read_fastq;
use repute_genome::GenomeError;

// ---------------------------------------------------------------------
// FASTA
// ---------------------------------------------------------------------

#[test]
fn fasta_adversarial_corpus_yields_typed_errors() {
    let corpus: &[(&str, &str)] = &[
        ("sequence before any header", "ACGT\n>x\nACGT\n"),
        ("lone '>' with no id", ">\nACGT\n"),
        ("header of only whitespace", ">   \nACGT\n"),
        ("empty sequence then EOF", ">x\n"),
        ("empty sequence then next record", ">x\n>y\nACGT\n"),
        ("digit in sequence", ">x\nAC9T\n"),
        ("punctuation in sequence", ">x\nAC.GT\n"),
        ("ambiguity code under reject policy", ">x\nACNT\n"),
        ("gap symbol under reject policy", ">x\nAC-GT\n"),
        ("truncated final record", ">x\nACGT\n>y\n"),
        ("non-ascii byte in sequence", ">x\nACG\u{2603}T\n"),
    ];
    for (what, input) in corpus {
        let result = read_fasta(input.as_bytes(), AmbiguityPolicy::Reject);
        let err = result.unwrap_err_or_panic(what);
        assert!(
            matches!(err, GenomeError::Format { .. }),
            "{what}: expected a Format error, got {err:?}"
        );
    }
}

#[test]
fn fasta_handles_crlf_wrapping_and_blank_lines() {
    let input = ">r1 first record\r\nACGT\r\nTTAA\r\n\r\n>r2\r\nGGCC\r\n";
    let recs = read_fasta(input.as_bytes(), AmbiguityPolicy::Reject).unwrap();
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0].id, "r1");
    assert_eq!(recs[0].seq.to_string(), "ACGTTTAA");
    assert_eq!(recs[1].seq.to_string(), "GGCC");
}

#[test]
fn fasta_ambiguity_policies_differ_only_on_iupac_codes() {
    // 'N' is IUPAC-ambiguous: reject errors, skip drops it.
    assert!(read_fasta(b">x\nANT\n".as_slice(), AmbiguityPolicy::Reject).is_err());
    let skipped = read_fasta(b">x\nANT\n".as_slice(), AmbiguityPolicy::Skip).unwrap();
    assert_eq!(skipped[0].seq.to_string(), "AT");
    // '7' is not a base under any policy.
    assert!(read_fasta(b">x\nA7T\n".as_slice(), AmbiguityPolicy::Skip).is_err());
}

// ---------------------------------------------------------------------
// FASTQ
// ---------------------------------------------------------------------

#[test]
fn fastq_adversarial_corpus_yields_typed_errors() {
    let corpus: &[(&str, &str)] = &[
        ("missing '@' header", "a\nACGT\n+\nIIII\n"),
        ("lone '@' with no id", "@\nACGT\n+\nIIII\n"),
        ("empty sequence line", "@a\n\n+\n\n"),
        ("truncated after header", "@a\n"),
        ("truncated after sequence", "@a\nACGT\n"),
        ("truncated after plus", "@a\nACGT\n+\n"),
        ("missing '+' separator", "@a\nACGT\nIIII\nIIII\n"),
        ("digit in sequence", "@a\nAC9T\n+\nIIII\n"),
        ("quality shorter than sequence", "@a\nACGT\n+\nIII\n"),
        ("quality longer than sequence", "@a\nACGT\n+\nIIIII\n"),
        ("quality byte below '!'", "@a\nAC\n+\nI\u{1f}\n"),
        ("quality byte above '~'", "@a\nAC\n+\nI\u{7f}\n"),
        ("second record truncated", "@a\nACGT\n+\nIIII\n@b\nGG\n"),
    ];
    for (what, input) in corpus {
        let err = read_fastq(input.as_bytes()).unwrap_err_or_panic(what);
        assert!(
            matches!(
                err,
                GenomeError::Format { .. } | GenomeError::InvalidQuality(_)
            ),
            "{what}: expected Format/InvalidQuality, got {err:?}"
        );
    }
}

#[test]
fn fastq_handles_crlf_and_blank_interrecord_lines() {
    let input = "@a\r\nACGT\r\n+\r\nIIII\r\n\r\n@b\r\nGG\r\n+\r\n!!\r\n";
    let recs = read_fastq(input.as_bytes()).unwrap();
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0].seq.to_string(), "ACGT");
    assert_eq!(recs[1].quality, b"!!");
}

#[test]
fn fastq_error_names_the_line() {
    // Line numbers make adversarial inputs debuggable: the empty
    // sequence of the second record sits on line 6.
    let input = "@a\nACGT\n+\nIIII\n@b\n\n+\n\n";
    let err = read_fastq(input.as_bytes()).unwrap_err();
    match err {
        GenomeError::Format { line, .. } => assert_eq!(line, 6),
        other => panic!("expected Format, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Helper: unwrap_err with corpus context.
// ---------------------------------------------------------------------

trait UnwrapErrOrPanic<T, E: std::fmt::Debug> {
    fn unwrap_err_or_panic(self, what: &str) -> E;
}

impl<T: std::fmt::Debug, E: std::fmt::Debug> UnwrapErrOrPanic<T, E> for Result<T, E> {
    fn unwrap_err_or_panic(self, what: &str) -> E {
        match self {
            Ok(v) => panic!("{what}: expected an error, parsed {v:?}"),
            Err(e) => e,
        }
    }
}
