//! The DNA alphabet and strand orientation.

use std::fmt;

use crate::error::GenomeError;

/// One of the four DNA nucleotides.
///
/// Each base carries a fixed 2-bit code (`A=0, C=1, G=2, T=3`), the packing
/// used by [`crate::DnaSeq`] and by every index structure downstream.
///
/// # Example
///
/// ```
/// use repute_genome::Base;
///
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::G.code(), 2);
/// assert_eq!(Base::from_code(3), Base::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Returns the 2-bit code of this base (`A=0, C=1, G=2, T=3`).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Builds a base from its 2-bit code.
    ///
    /// Only the two least-significant bits of `code` are used, so every
    /// `u8` maps to some base; use [`Base::try_from_code`] for validation.
    #[inline]
    pub const fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Builds a base from a 2-bit code, rejecting codes above 3.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBaseCode`] if `code > 3`.
    #[inline]
    pub fn try_from_code(code: u8) -> Result<Base, GenomeError> {
        if code <= 3 {
            Ok(Base::from_code(code))
        } else {
            Err(GenomeError::InvalidBaseCode(code))
        }
    }

    /// Parses an ASCII character (case-insensitive) into a base.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ParseBase`] for anything other than
    /// `A`, `C`, `G` or `T` (ambiguity codes such as `N` are *not*
    /// accepted here; see [`crate::fasta::AmbiguityPolicy`]).
    #[inline]
    pub fn from_char(c: char) -> Result<Base, GenomeError> {
        match c {
            'A' | 'a' => Ok(Base::A),
            'C' | 'c' => Ok(Base::C),
            'G' | 'g' => Ok(Base::G),
            'T' | 't' => Ok(Base::T),
            other => Err(GenomeError::ParseBase(other)),
        }
    }

    /// Returns the uppercase ASCII character for this base.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Returns the Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub const fn complement(self) -> Base {
        // Complement is bitwise negation in the 2-bit encoding.
        Base::from_code(3 - self.code())
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for Base {
    type Error = GenomeError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        Base::from_char(c)
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_char()
    }
}

/// Which strand of the double helix a read maps to.
///
/// # Example
///
/// ```
/// use repute_genome::Strand;
///
/// assert_eq!(Strand::Forward.flipped(), Strand::Reverse);
/// assert_eq!(Strand::Forward.symbol(), '+');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Strand {
    /// The reference (plus) strand.
    #[default]
    Forward,
    /// The reverse-complement (minus) strand.
    Reverse,
}

impl Strand {
    /// Returns the opposite strand.
    #[inline]
    pub const fn flipped(self) -> Strand {
        match self {
            Strand::Forward => Strand::Reverse,
            Strand::Reverse => Strand::Forward,
        }
    }

    /// Returns the SAM-style symbol, `+` or `-`.
    #[inline]
    pub const fn symbol(self) -> char {
        match self {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::try_from_code(b.code()).unwrap(), b);
        }
    }

    #[test]
    fn invalid_code_rejected() {
        assert!(matches!(
            Base::try_from_code(4),
            Err(GenomeError::InvalidBaseCode(4))
        ));
    }

    #[test]
    fn chars_round_trip_case_insensitive() {
        for (c, b) in [
            ('a', Base::A),
            ('C', Base::C),
            ('g', Base::G),
            ('T', Base::T),
        ] {
            assert_eq!(Base::from_char(c).unwrap(), b);
        }
        assert_eq!(Base::G.to_char(), 'G');
    }

    #[test]
    fn rejects_ambiguity_codes() {
        for c in ['N', 'n', 'R', 'x', '-'] {
            assert!(Base::from_char(c).is_err(), "{c} should not parse");
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn strand_flips() {
        assert_eq!(Strand::Forward.flipped(), Strand::Reverse);
        assert_eq!(Strand::Reverse.flipped(), Strand::Forward);
        assert_eq!(Strand::Reverse.symbol(), '-');
        assert_eq!(Strand::default(), Strand::Forward);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Base::T.to_string(), "T");
        assert_eq!(Strand::Reverse.to_string(), "-");
    }
}
