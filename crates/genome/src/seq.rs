//! 2-bit packed DNA sequences.

use std::fmt;
use std::iter::FromIterator;
use std::ops::Range;
use std::str::FromStr;

use crate::alphabet::Base;
use crate::error::GenomeError;

const BASES_PER_WORD: usize = 32;

/// A growable DNA sequence packed at 2 bits per base.
///
/// `DnaSeq` is the common currency of the whole mapper stack: references,
/// reads and seeds are all `DnaSeq` values or views into them. Packing
/// keeps an 8 Mbp synthetic chromosome at ~2 MiB, matching the paper's
/// concern for memory footprint on embedded devices.
///
/// # Example
///
/// ```
/// use repute_genome::{Base, DnaSeq};
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let mut seq: DnaSeq = "ACGT".parse()?;
/// seq.push(Base::A);
/// assert_eq!(seq.to_string(), "ACGTA");
/// assert_eq!(seq.code(1), 1); // C
/// assert_eq!(seq.subseq(1..4).to_string(), "CGT");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    words: Vec<u64>,
    len: usize,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq::default()
    }

    /// Creates an empty sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> DnaSeq {
        DnaSeq {
            words: Vec::with_capacity(capacity.div_ceil(BASES_PER_WORD)),
            len: 0,
        }
    }

    /// Builds a sequence from a slice of bases.
    pub fn from_bases(bases: &[Base]) -> DnaSeq {
        bases.iter().copied().collect()
    }

    /// Builds a sequence from raw 2-bit codes.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBaseCode`] if any code exceeds 3.
    pub fn from_codes(codes: &[u8]) -> Result<DnaSeq, GenomeError> {
        let mut seq = DnaSeq::with_capacity(codes.len());
        for &code in codes {
            seq.push(Base::try_from_code(code)?);
        }
        Ok(seq)
    }

    /// Number of bases in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sequence contains no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let (word, shift) = (self.len / BASES_PER_WORD, (self.len % BASES_PER_WORD) * 2);
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= u64::from(base.code()) << shift;
        self.len += 1;
    }

    /// Returns the base at `index`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Base> {
        (index < self.len).then(|| self.base(index))
    }

    /// Returns the base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn base(&self, index: usize) -> Base {
        assert!(
            index < self.len,
            "base index {index} out of range {}",
            self.len
        );
        Base::from_code(self.code(index))
    }

    /// Returns the 2-bit code of the base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn code(&self, index: usize) -> u8 {
        assert!(
            index < self.len,
            "code index {index} out of range {}",
            self.len
        );
        let (word, shift) = (index / BASES_PER_WORD, (index % BASES_PER_WORD) * 2);
        ((self.words[word] >> shift) & 0b11) as u8
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            seq: self,
            index: 0,
        }
    }

    /// Unpacks the sequence into a vector of 2-bit codes.
    ///
    /// The flat `Vec<u8>` form is what the index and alignment kernels
    /// consume; it trades 4× memory for O(1) unchecked-free access.
    pub fn to_codes(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.code(i)).collect()
    }

    /// Copies the half-open range `range` into a new sequence.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn subseq(&self, range: Range<usize>) -> DnaSeq {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "subseq range {range:?} out of bounds for length {}",
            self.len
        );
        let mut out = DnaSeq::with_capacity(range.len());
        for i in range {
            out.push(self.base(i));
        }
        out
    }

    /// Returns the reverse complement of the sequence.
    pub fn reverse_complement(&self) -> DnaSeq {
        let mut out = DnaSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.base(i).complement());
        }
        out
    }

    /// Fraction of G/C bases, in `[0, 1]`; `0` for an empty sequence.
    pub fn gc_content(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let gc = self
            .iter()
            .filter(|b| matches!(b, Base::C | Base::G))
            .count();
        gc as f64 / self.len as f64
    }

    /// Approximate heap footprint of the packed representation, in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Writes the sequence in its packed 2-bit form (length header plus
    /// little-endian words) — the on-disk format of the `repute` CLI's
    /// prebuilt indexes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out` (a `&mut` writer is accepted).
    pub fn write_packed<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        out.write_all(&(self.len as u64).to_le_bytes())?;
        for word in &self.words {
            out.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a sequence previously written by [`DnaSeq::write_packed`].
    ///
    /// # Errors
    ///
    /// Returns an error of kind [`std::io::ErrorKind::InvalidData`] when
    /// the stream is truncated or the header is implausible, and
    /// propagates I/O errors from `input` (a `&mut` reader is accepted).
    pub fn read_packed<R: std::io::Read>(mut input: R) -> std::io::Result<DnaSeq> {
        let mut buf8 = [0u8; 8];
        input.read_exact(&mut buf8)?;
        let len = u64::from_le_bytes(buf8) as usize;
        if len > (u32::MAX as usize) * 4 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("implausible packed sequence length {len}"),
            ));
        }
        let word_count = len.div_ceil(BASES_PER_WORD);
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            input.read_exact(&mut buf8)?;
            words.push(u64::from_le_bytes(buf8));
        }
        Ok(DnaSeq { words, len })
    }
}

impl fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 48;
        write!(f, "DnaSeq(len={}, \"", self.len)?;
        for i in 0..self.len.min(PREVIEW) {
            write!(f, "{}", self.base(i))?;
        }
        if self.len > PREVIEW {
            write!(f, "…")?;
        }
        write!(f, "\")")
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromStr for DnaSeq {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut seq = DnaSeq::with_capacity(s.len());
        for c in s.chars() {
            seq.push(Base::from_char(c)?);
        }
        Ok(seq)
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        let mut seq = DnaSeq::new();
        seq.extend(iter);
        seq
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over the bases of a [`DnaSeq`], produced by [`DnaSeq::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    seq: &'a DnaSeq,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    fn next(&mut self) -> Option<Base> {
        let b = self.seq.get(self.index)?;
        self.index += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seq.len - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = Base;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_across_word_boundaries() {
        let mut seq = DnaSeq::new();
        let pattern = [Base::A, Base::C, Base::G, Base::T];
        for i in 0..133 {
            seq.push(pattern[i % 4]);
        }
        assert_eq!(seq.len(), 133);
        for i in 0..133 {
            assert_eq!(seq.base(i), pattern[i % 4], "mismatch at {i}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = "ACGTTGCAACGTTGCAACGTTGCAACGTTGCAACG";
        let seq: DnaSeq = s.parse().unwrap();
        assert_eq!(seq.to_string(), s);
    }

    #[test]
    fn parse_rejects_ambiguity() {
        assert!("ACGN".parse::<DnaSeq>().is_err());
    }

    #[test]
    fn get_is_none_out_of_bounds() {
        let seq: DnaSeq = "ACG".parse().unwrap();
        assert_eq!(seq.get(2), Some(Base::G));
        assert_eq!(seq.get(3), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn base_panics_out_of_bounds() {
        let seq: DnaSeq = "A".parse().unwrap();
        let _ = seq.base(1);
    }

    #[test]
    fn subseq_extracts_range() {
        let seq: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(seq.subseq(2..6).to_string(), "GTAC");
        assert_eq!(seq.subseq(0..0).len(), 0);
        assert_eq!(seq.subseq(0..8), seq);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subseq_panics_past_end() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let _ = seq.subseq(2..5);
    }

    #[test]
    fn reverse_complement_involution() {
        let seq: DnaSeq = "AACCGGTTACGT".parse().unwrap();
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
        assert_eq!(seq.reverse_complement().to_string(), "ACGTAACCGGTT");
    }

    #[test]
    fn codes_round_trip() {
        let seq: DnaSeq = "TGCA".parse().unwrap();
        let codes = seq.to_codes();
        assert_eq!(codes, vec![3, 2, 1, 0]);
        assert_eq!(DnaSeq::from_codes(&codes).unwrap(), seq);
        assert!(DnaSeq::from_codes(&[0, 4]).is_err());
    }

    #[test]
    fn gc_content_counts_strong_bases() {
        let seq: DnaSeq = "GGCC".parse().unwrap();
        assert_eq!(seq.gc_content(), 1.0);
        let seq: DnaSeq = "ATGC".parse().unwrap();
        assert_eq!(seq.gc_content(), 0.5);
        assert_eq!(DnaSeq::new().gc_content(), 0.0);
    }

    #[test]
    fn iterators_and_collect() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let collected: DnaSeq = seq.iter().collect();
        assert_eq!(collected, seq);
        assert_eq!(seq.iter().len(), 4);
        let mut ext = DnaSeq::new();
        ext.extend(seq.iter());
        assert_eq!(ext, seq);
    }

    #[test]
    fn packed_footprint_is_quarter_byte_per_base() {
        let seq: DnaSeq = std::iter::repeat_n(Base::A, 64).collect();
        assert_eq!(seq.packed_bytes(), 16);
    }

    #[test]
    fn packed_io_round_trips() {
        for len in [0usize, 1, 31, 32, 33, 100, 1000] {
            let seq: DnaSeq = (0..len).map(|i| Base::from_code((i % 4) as u8)).collect();
            let mut buf = Vec::new();
            seq.write_packed(&mut buf).unwrap();
            let back = DnaSeq::read_packed(buf.as_slice()).unwrap();
            assert_eq!(back, seq, "len {len}");
        }
    }

    #[test]
    fn packed_io_rejects_truncation() {
        let seq: DnaSeq = "ACGTACGTACGT".parse().unwrap();
        let mut buf = Vec::new();
        seq.write_packed(&mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(DnaSeq::read_packed(buf.as_slice()).is_err());
        assert!(DnaSeq::read_packed(&[1, 2][..]).is_err());
    }

    #[test]
    fn debug_preview_truncates() {
        let seq: DnaSeq = std::iter::repeat_n(Base::A, 100).collect();
        let dbg = format!("{seq:?}");
        assert!(dbg.contains("len=100"));
        assert!(dbg.contains('…'));
    }
}
