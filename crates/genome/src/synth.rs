//! Synthetic reference generation.
//!
//! The paper maps reads to human chromosome 21 (GRCh38). This module is the
//! documented substitution: it generates a reference whose *candidate-count
//! statistics* — the quantity the filtration stage minimises — resemble a
//! real chromosome at a configurable, laptop-friendly scale. Three
//! ingredients drive that resemblance:
//!
//! 1. an order-1 Markov background with a target GC content (human chr21 is
//!    ~40.8% GC),
//! 2. interspersed repeat families (Alu/LINE-like): a handful of template
//!    units pasted many times with per-copy mutations, which create the
//!    heavy tail of seed frequencies that makes seed *selection* matter,
//! 3. tandem repeats (microsatellite-like), which create locally extreme
//!    seed frequencies.

use crate::alphabet::Base;
use crate::seq::DnaSeq;

// Callers historically reached the generator through this module; keep the
// path alive alongside the canonical `crate::rng`.
pub use crate::rng::{SampleRange, SampleUniform, Standard, StdRng};

/// Description of one interspersed repeat family to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatFamily {
    /// Length of the template unit in bases.
    pub unit_len: usize,
    /// Number of copies pasted across the reference.
    pub copies: usize,
    /// Per-base substitution probability applied to each copy.
    pub divergence: f64,
}

/// Builder for a synthetic reference chromosome.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
///
/// let reference = ReferenceBuilder::new(50_000).seed(42).build();
/// assert_eq!(reference.len(), 50_000);
/// // GC lands near the chr21-like default of 0.41.
/// assert!((reference.gc_content() - 0.41).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceBuilder {
    len: usize,
    gc: f64,
    seed: u64,
    families: Vec<RepeatFamily>,
    tandem_fraction: f64,
}

impl ReferenceBuilder {
    /// Starts a builder for a reference of `len` bases with chr21-like
    /// defaults (GC 0.41, Alu-like and LINE-like repeat families covering
    /// roughly 40% of the sequence, 2% tandem repeats).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> ReferenceBuilder {
        assert!(len > 0, "reference length must be positive");
        // Family copy counts scale with the reference length so the repeat
        // *density* (what shapes seed-frequency tails) is scale-invariant.
        let alu_copies = (len / 1_100).max(1);
        let line_copies = (len / 12_000).max(1);
        ReferenceBuilder {
            len,
            gc: 0.41,
            seed: 0xC21C21,
            families: vec![
                RepeatFamily {
                    unit_len: 300,
                    copies: alu_copies,
                    divergence: 0.12,
                },
                RepeatFamily {
                    unit_len: 2_000,
                    copies: line_copies,
                    divergence: 0.18,
                },
            ],
            tandem_fraction: 0.02,
        }
    }

    /// Sets the target GC content in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `gc` is not strictly between 0 and 1.
    pub fn gc(mut self, gc: f64) -> ReferenceBuilder {
        assert!(gc > 0.0 && gc < 1.0, "gc content must be in (0, 1)");
        self.gc = gc;
        self
    }

    /// Sets the RNG seed; the builder is fully deterministic given a seed.
    pub fn seed(mut self, seed: u64) -> ReferenceBuilder {
        self.seed = seed;
        self
    }

    /// Replaces the interspersed repeat families.
    pub fn repeat_families(mut self, families: Vec<RepeatFamily>) -> ReferenceBuilder {
        self.families = families;
        self
    }

    /// Sets the fraction of the reference covered by tandem repeats.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 0.5]`.
    pub fn tandem_fraction(mut self, fraction: f64) -> ReferenceBuilder {
        assert!(
            (0.0..=0.5).contains(&fraction),
            "tandem fraction out of range"
        );
        self.tandem_fraction = fraction;
        self
    }

    /// Generates the reference.
    pub fn build(&self) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut bases = self.markov_background(&mut rng);
        self.paste_interspersed(&mut bases, &mut rng);
        self.paste_tandem(&mut bases, &mut rng);
        bases.into_iter().collect()
    }

    /// Order-1 Markov chain with mild CpG suppression (as in mammalian
    /// genomes), tuned so the stationary GC matches `self.gc`.
    fn markov_background(&self, rng: &mut StdRng) -> Vec<Base> {
        let gc = self.gc;
        let at = 1.0 - gc;
        // Base emission probabilities [A, C, G, T].
        let stationary = [at / 2.0, gc / 2.0, gc / 2.0, at / 2.0];
        let mut out = Vec::with_capacity(self.len);
        let mut prev = Base::A;
        for _ in 0..self.len {
            let mut probs = stationary;
            // CpG suppression: after a C, a G is ~4x less likely.
            if prev == Base::C {
                probs[Base::G.code() as usize] /= 4.0;
            }
            // Mild homopolymer bias: repeating the previous base is a bit
            // more likely, which produces realistic low-complexity runs.
            probs[prev.code() as usize] *= 1.3;
            let total: f64 = probs.iter().sum();
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = Base::T;
            for b in Base::ALL {
                let p = probs[b.code() as usize];
                if draw < p {
                    chosen = b;
                    break;
                }
                draw -= p;
            }
            out.push(chosen);
            prev = chosen;
        }
        out
    }

    fn paste_interspersed(&self, bases: &mut [Base], rng: &mut StdRng) {
        for family in &self.families {
            if family.unit_len == 0 || family.unit_len >= bases.len() {
                continue;
            }
            let template: Vec<Base> = (0..family.unit_len)
                .map(|_| Base::from_code(rng.gen_range(0..4)))
                .collect();
            for _ in 0..family.copies {
                let start = rng.gen_range(0..bases.len() - family.unit_len);
                for (offset, &b) in template.iter().enumerate() {
                    let emitted = if rng.gen::<f64>() < family.divergence {
                        Base::from_code(rng.gen_range(0..4))
                    } else {
                        b
                    };
                    bases[start + offset] = emitted;
                }
            }
        }
    }

    fn paste_tandem(&self, bases: &mut [Base], rng: &mut StdRng) {
        let mut covered = 0usize;
        let budget = (self.len as f64 * self.tandem_fraction) as usize;
        while covered < budget {
            let unit_len = rng.gen_range(2..=6usize);
            let reps = rng.gen_range(5..=40usize);
            let total = unit_len * reps;
            if total >= bases.len() {
                break;
            }
            let unit: Vec<Base> = (0..unit_len)
                .map(|_| Base::from_code(rng.gen_range(0..4)))
                .collect();
            let start = rng.gen_range(0..bases.len() - total);
            for i in 0..total {
                bases[start + i] = unit[i % unit_len];
            }
            covered += total;
        }
    }
}

/// Generates a uniformly random sequence (no repeat structure), useful as a
/// repeat-free control in tests and ablations.
pub fn random_sequence(len: usize, seed: u64) -> DnaSeq {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = ReferenceBuilder::new(10_000).seed(5).build();
        let b = ReferenceBuilder::new(10_000).seed(5).build();
        assert_eq!(a, b);
        let c = ReferenceBuilder::new(10_000).seed(6).build();
        assert_ne!(a, c);
    }

    #[test]
    fn gc_content_tracks_target() {
        for target in [0.3, 0.41, 0.6] {
            let reference = ReferenceBuilder::new(60_000)
                .gc(target)
                .tandem_fraction(0.0)
                .repeat_families(vec![])
                .seed(9)
                .build();
            assert!(
                (reference.gc_content() - target).abs() < 0.04,
                "target {target}, got {}",
                reference.gc_content()
            );
        }
    }

    #[test]
    fn repeats_create_heavy_kmer_tail() {
        // With repeat families, the most frequent 16-mer should occur far
        // more often than in a repeat-free sequence of the same length.
        let k = 16;
        let max_count = |seq: &DnaSeq| {
            let codes = seq.to_codes();
            let mut counts: HashMap<&[u8], u32> = HashMap::new();
            for w in codes.windows(k) {
                *counts.entry(w).or_default() += 1;
            }
            counts.values().copied().max().unwrap_or(0)
        };
        let with = ReferenceBuilder::new(120_000).seed(11).build();
        let without = random_sequence(120_000, 11);
        assert!(
            max_count(&with) >= 4 * max_count(&without).max(1),
            "repeat injection should skew k-mer frequencies: {} vs {}",
            max_count(&with),
            max_count(&without)
        );
    }

    #[test]
    fn tandem_fraction_zero_produces_no_bias_panic() {
        let reference = ReferenceBuilder::new(5_000)
            .tandem_fraction(0.0)
            .seed(1)
            .build();
        assert_eq!(reference.len(), 5_000);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_rejected() {
        let _ = ReferenceBuilder::new(0);
    }

    #[test]
    #[should_panic(expected = "gc content")]
    fn bad_gc_rejected() {
        let _ = ReferenceBuilder::new(10).gc(1.0);
    }

    #[test]
    fn random_sequence_has_full_alphabet() {
        let seq = random_sequence(1_000, 3);
        let mut seen = [false; 4];
        for b in seq.iter() {
            seen[b.code() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
