//! FASTQ reading and writing (Phred+33 qualities).

use std::io::{BufRead, Write};

use crate::alphabet::Base;
use crate::error::GenomeError;
use crate::seq::DnaSeq;

/// Lowest legal Phred+33 quality byte (`!`, Q0).
pub const QUALITY_MIN: u8 = b'!';
/// Highest legal Phred+33 quality byte (`~`, Q93).
pub const QUALITY_MAX: u8 = b'~';

/// One FASTQ record: identifier, sequence and per-base qualities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier (text after `@` up to the first whitespace).
    pub id: String,
    /// The read sequence. Ambiguous bases are replaced by `A` on input
    /// (short-read mappers treat `N` as a guaranteed mismatch; substituting
    /// a fixed base keeps at most one extra error, the convention the
    /// 2-bit OpenCL kernels in the paper rely on).
    pub seq: DnaSeq,
    /// Phred+33 quality bytes, one per base.
    pub quality: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record with a uniform quality of `q` (Phred score).
    ///
    /// # Panics
    ///
    /// Panics if `q > 93` (not representable in Phred+33).
    pub fn with_uniform_quality(id: impl Into<String>, seq: DnaSeq, q: u8) -> FastqRecord {
        assert!(q <= 93, "phred score {q} exceeds 93");
        let quality = vec![QUALITY_MIN + q; seq.len()];
        FastqRecord {
            id: id.into(),
            seq,
            quality,
        }
    }

    /// Mean Phred score of the record, or 0.0 when empty.
    pub fn mean_quality(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        let sum: u64 = self
            .quality
            .iter()
            .map(|&q| u64::from(q - QUALITY_MIN))
            .sum();
        sum as f64 / self.quality.len() as f64
    }
}

/// Streaming FASTQ reader over any [`BufRead`] source.
///
/// # Example
///
/// ```
/// use repute_genome::fastq::FastqReader;
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let data = b"@r1\nACGT\n+\nIIII\n" as &[u8];
/// let mut reader = FastqReader::new(data);
/// let rec = reader.next().expect("one record")?;
/// assert_eq!(rec.id, "r1");
/// assert_eq!(rec.quality, b"IIII");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FastqReader<R> {
    input: R,
    line: usize,
    done: bool,
}

impl<R: BufRead> FastqReader<R> {
    /// Creates a FASTQ reader. A `&mut` reference may be passed as `input`.
    pub fn new(input: R) -> FastqReader<R> {
        FastqReader {
            input,
            line: 0,
            done: false,
        }
    }

    fn read_line(&mut self) -> Result<Option<String>, GenomeError> {
        let mut buf = String::new();
        let n = self.input.read_line(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(Some(buf))
    }

    fn format_err(&self, message: impl Into<String>) -> GenomeError {
        GenomeError::Format {
            line: self.line,
            message: message.into(),
        }
    }

    fn next_record(&mut self) -> Result<Option<FastqRecord>, GenomeError> {
        let header = loop {
            match self.read_line()? {
                None => return Ok(None),
                Some(l) if l.is_empty() => continue,
                Some(l) => break l,
            }
        };
        if !header.starts_with('@') {
            return Err(self.format_err("expected '@' record header"));
        }
        let id = header[1..]
            .split_whitespace()
            .next()
            .ok_or_else(|| self.format_err("empty FASTQ header"))?
            .to_string();

        let seq_line = self
            .read_line()?
            .ok_or_else(|| self.format_err("truncated record: missing sequence"))?;
        if seq_line.is_empty() {
            return Err(self.format_err(format!("record {id:?} has an empty sequence")));
        }
        let mut seq = DnaSeq::with_capacity(seq_line.len());
        for c in seq_line.chars() {
            match Base::from_char(c) {
                Ok(b) => seq.push(b),
                Err(_) if c.is_ascii_alphabetic() => seq.push(Base::A),
                Err(_) => return Err(self.format_err(format!("invalid base {c:?}"))),
            }
        }

        let plus = self
            .read_line()?
            .ok_or_else(|| self.format_err("truncated record: missing '+' line"))?;
        if !plus.starts_with('+') {
            return Err(self.format_err("expected '+' separator line"));
        }

        let qual_line = self
            .read_line()?
            .ok_or_else(|| self.format_err("truncated record: missing quality line"))?;
        let quality = qual_line.into_bytes();
        if quality.len() != seq.len() {
            return Err(GenomeError::InvalidQuality(format!(
                "quality length {} does not match sequence length {}",
                quality.len(),
                seq.len()
            )));
        }
        if let Some(&bad) = quality
            .iter()
            .find(|&&q| !(QUALITY_MIN..=QUALITY_MAX).contains(&q))
        {
            return Err(GenomeError::InvalidQuality(format!(
                "byte {bad:#04x} outside the Phred+33 range"
            )));
        }
        Ok(Some(FastqRecord { id, seq, quality }))
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord, GenomeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads every record from a FASTQ source.
///
/// # Errors
///
/// Propagates I/O errors and format violations from [`FastqReader`].
pub fn read_fastq<R: BufRead>(input: R) -> Result<Vec<FastqRecord>, GenomeError> {
    FastqReader::new(input).collect()
}

/// Writes records in four-line FASTQ format.
///
/// # Errors
///
/// Propagates I/O errors from `output` (a `&mut` writer is accepted).
pub fn write_fastq<W: Write>(mut output: W, records: &[FastqRecord]) -> Result<(), GenomeError> {
    for rec in records {
        writeln!(output, "@{}", rec.id)?;
        writeln!(output, "{}", rec.seq)?;
        writeln!(output, "+")?;
        output.write_all(&rec.quality)?;
        output.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_records() {
        let data = "@a comment\nACGT\n+\nIIII\n@b\nGG\n+b\n!!\n";
        let recs = read_fastq(data.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "a");
        assert_eq!(recs[0].seq.to_string(), "ACGT");
        assert_eq!(recs[1].quality, b"!!");
    }

    #[test]
    fn n_bases_become_a() {
        let recs = read_fastq("@a\nANNT\n+\nIIII\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_string(), "AAAT");
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let err = read_fastq("@a\nACGT\n+\nIII\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::InvalidQuality(_)));
    }

    #[test]
    fn quality_range_enforced() {
        let err = read_fastq("@a\nAC\n+\nI\u{7f}\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GenomeError::InvalidQuality(_)));
    }

    #[test]
    fn truncation_detected() {
        assert!(read_fastq("@a\nACGT\n+\n".as_bytes()).is_err());
        assert!(read_fastq("@a\nACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_sequence_rejected() {
        // A blank sequence line is a malformed record, not an empty read:
        // downstream kernels assume every read has at least one base.
        let err = read_fastq("@a\n\n+\n\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&err, GenomeError::Format { message, .. } if message.contains("empty sequence")),
            "{err:?}"
        );
    }

    #[test]
    fn missing_at_rejected() {
        assert!(read_fastq("a\nACGT\n+\nIIII\n".as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let recs = vec![
            FastqRecord::with_uniform_quality("x", "ACGTT".parse().unwrap(), 40),
            FastqRecord::with_uniform_quality("y", "GG".parse().unwrap(), 2),
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let back = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn mean_quality() {
        let rec = FastqRecord::with_uniform_quality("x", "ACGT".parse().unwrap(), 30);
        assert!((rec.mean_quality() - 30.0).abs() < 1e-9);
        let empty = FastqRecord {
            id: "e".into(),
            seq: DnaSeq::new(),
            quality: vec![],
        };
        assert_eq!(empty.mean_quality(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 93")]
    fn uniform_quality_validates() {
        let _ = FastqRecord::with_uniform_quality("x", "A".parse().unwrap(), 94);
    }
}
