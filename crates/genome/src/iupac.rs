//! IUPAC nucleotide ambiguity codes.
//!
//! Real references and primer sequences use the 15-letter IUPAC alphabet
//! (`N` = any base, `R` = purine, …). The 2-bit mapping pipeline cannot
//! store ambiguity, so [`crate::fasta`] resolves it at parse time; this
//! module provides the codes themselves for tools that need to *reason*
//! about ambiguity — degenerate primer matching, masked-region handling,
//! or deciding how a parse policy should resolve a character.

use std::fmt;

use crate::alphabet::Base;
use crate::error::GenomeError;

/// One IUPAC nucleotide code: a non-empty subset of `{A, C, G, T}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IupacCode {
    /// Bitmask over [`Base::code`] bits (bit 0 = A … bit 3 = T).
    mask: u8,
}

impl IupacCode {
    /// The 15 valid codes in conventional order.
    pub const ALL: [char; 15] = [
        'A', 'C', 'G', 'T', 'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V', 'N',
    ];

    /// Parses an IUPAC character (case-insensitive; `U` is accepted as
    /// `T`).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ParseBase`] for non-IUPAC characters.
    pub fn from_char(c: char) -> Result<IupacCode, GenomeError> {
        let mask = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'R' => 0b0101, // A|G (purine)
            'Y' => 0b1010, // C|T (pyrimidine)
            'S' => 0b0110, // G|C (strong)
            'W' => 0b1001, // A|T (weak)
            'K' => 0b1100, // G|T (keto)
            'M' => 0b0011, // A|C (amino)
            'B' => 0b1110, // not A
            'D' => 0b1101, // not C
            'H' => 0b1011, // not G
            'V' => 0b0111, // not T
            'N' => 0b1111, // any
            other => return Err(GenomeError::ParseBase(other)),
        };
        Ok(IupacCode { mask })
    }

    /// The canonical uppercase character for this code.
    pub fn to_char(self) -> char {
        match self.mask {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'T',
            0b0101 => 'R',
            0b1010 => 'Y',
            0b0110 => 'S',
            0b1001 => 'W',
            0b1100 => 'K',
            0b0011 => 'M',
            0b1110 => 'B',
            0b1101 => 'D',
            0b1011 => 'H',
            0b0111 => 'V',
            _ => 'N',
        }
    }

    /// Whether this code admits `base`.
    pub fn matches(self, base: Base) -> bool {
        self.mask & (1 << base.code()) != 0
    }

    /// The concrete bases this code admits, in code order.
    pub fn bases(self) -> impl Iterator<Item = Base> {
        let mask = self.mask;
        Base::ALL
            .into_iter()
            .filter(move |b| mask & (1 << b.code()) != 0)
    }

    /// Number of concrete bases admitted (1–4).
    pub fn degeneracy(self) -> u32 {
        self.mask.count_ones()
    }

    /// Returns the concrete base if the code is unambiguous.
    pub fn to_base(self) -> Option<Base> {
        (self.degeneracy() == 1).then(|| Base::from_code(self.mask.trailing_zeros() as u8))
    }

    /// The complement code (complements every admitted base; e.g. the
    /// purines `R` complement to the pyrimidines `Y`, and `N` stays `N`).
    pub fn complement(self) -> IupacCode {
        let mut mask = 0u8;
        for base in self.bases() {
            mask |= 1 << base.complement().code();
        }
        IupacCode { mask }
    }
}

impl fmt::Display for IupacCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<Base> for IupacCode {
    fn from(base: Base) -> IupacCode {
        IupacCode {
            mask: 1 << base.code(),
        }
    }
}

/// Tests whether `pattern` (IUPAC) matches `text` (concrete bases) at
/// every position; lengths must agree.
///
/// # Example
///
/// ```
/// use repute_genome::iupac::{degenerate_match, IupacCode};
/// use repute_genome::{Base, DnaSeq};
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let primer: Vec<IupacCode> = "ARYN"
///     .chars()
///     .map(IupacCode::from_char)
///     .collect::<Result<_, _>>()?;
/// let site: DnaSeq = "AGCT".parse()?;
/// assert!(degenerate_match(&primer, &site.to_codes()));
/// let miss: DnaSeq = "TGCT".parse()?;
/// assert!(!degenerate_match(&primer, &miss.to_codes()));
/// # Ok(())
/// # }
/// ```
pub fn degenerate_match(pattern: &[IupacCode], text: &[u8]) -> bool {
    pattern.len() == text.len()
        && pattern
            .iter()
            .zip(text)
            .all(|(code, &base)| code.matches(Base::from_code(base)))
}

/// Finds all start positions where the degenerate `pattern` matches
/// `text` (concrete base codes).
pub fn degenerate_find(pattern: &[IupacCode], text: &[u8]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    text.windows(pattern.len())
        .enumerate()
        .filter(|(_, window)| degenerate_match(pattern, window))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codes_round_trip() {
        for c in IupacCode::ALL {
            let code = IupacCode::from_char(c).unwrap();
            assert_eq!(code.to_char(), c, "round trip of {c}");
            assert!(code.degeneracy() >= 1 && code.degeneracy() <= 4);
        }
        assert_eq!(IupacCode::from_char('u').unwrap().to_char(), 'T');
        assert!(IupacCode::from_char('X').is_err());
    }

    #[test]
    fn matching_semantics() {
        let n = IupacCode::from_char('N').unwrap();
        for b in Base::ALL {
            assert!(n.matches(b));
        }
        let r = IupacCode::from_char('R').unwrap();
        assert!(r.matches(Base::A) && r.matches(Base::G));
        assert!(!r.matches(Base::C) && !r.matches(Base::T));
        assert_eq!(r.degeneracy(), 2);
        assert_eq!(r.bases().collect::<Vec<_>>(), vec![Base::A, Base::G]);
    }

    #[test]
    fn concrete_codes_convert_to_bases() {
        assert_eq!(IupacCode::from_char('G').unwrap().to_base(), Some(Base::G));
        assert_eq!(IupacCode::from_char('W').unwrap().to_base(), None);
        assert_eq!(IupacCode::from(Base::T).to_char(), 'T');
    }

    #[test]
    fn complements() {
        let pairs = [
            ('A', 'T'),
            ('R', 'Y'),
            ('S', 'S'),
            ('W', 'W'),
            ('B', 'V'),
            ('N', 'N'),
        ];
        for (c, comp) in pairs {
            assert_eq!(
                IupacCode::from_char(c).unwrap().complement().to_char(),
                comp,
                "complement of {c}"
            );
        }
    }

    #[test]
    fn degenerate_search() {
        // Pattern "RN" over text ACGTAG: R matches A/G.
        let pattern: Vec<IupacCode> = "RN"
            .chars()
            .map(|c| IupacCode::from_char(c).unwrap())
            .collect();
        let text = [0u8, 1, 2, 3, 0, 2]; // ACGTAG
        assert_eq!(degenerate_find(&pattern, &text), vec![0, 2, 4]);
        assert!(degenerate_find(&pattern, &[0]).is_empty());
        assert!(degenerate_find(&[], &text).is_empty());
    }
}
