//! Self-contained pseudo-random number generation.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so it cannot depend on the `rand` crate. This module provides the tiny
//! slice of `rand`'s API the reproduction actually uses — seeding from a
//! `u64`, uniform integers over (inclusive) ranges, `f64` in `[0, 1)` and
//! fair booleans — as *inherent* methods on a type named [`StdRng`], so
//! call sites are source-compatible modulo the `use` line.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 exactly as `rand` seeds its small RNGs: fast, 256 bits of
//! state, and more than adequate for synthetic-genome generation and
//! randomised tests. It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with a `rand`-compatible
/// surface.
///
/// # Example
///
/// ```
/// use repute_genome::rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let die: u8 = rng.gen_range(1..=6);
/// assert!((1..=6).contains(&die));
/// let p = rng.gen::<f64>();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 raw bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 raw bits (upper half of [`StdRng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of `T` from its standard distribution (`f64` in
    /// `[0, 1)`, fair `bool`, full-range integers).
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Types with a standard distribution for [`StdRng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample(rng: &mut StdRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// Integer types [`StdRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Uniform draw from `lo..hi`.
    fn sample_exclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `lo..=hi`.
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire multiply-shift: bias < 2⁻⁶⁴, irrelevant here.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
            fn sample_inclusive(rng: &mut StdRng, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`StdRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v: u8 = rng.gen_range(0..4);
            assert!(v < 4);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
        for _ in 0..200 {
            let v = rng.gen_range(-2i16..=2);
            assert!((-2..=2).contains(&v));
            let w = rng.gen_range(10usize..=10);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues} heads of 10000");
        let biased = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(biased > 8_500, "{biased} of 10000 at p=0.9");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let _ = StdRng::seed_from_u64(0).gen_range(5..5usize);
    }
}
