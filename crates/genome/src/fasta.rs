//! FASTA reading and writing.
//!
//! The reader is strict about structure (headers, non-empty records) but
//! configurable about ambiguity codes (`N` and friends) via
//! [`AmbiguityPolicy`], because real references such as GRCh38 chr21 begin
//! with multi-megabase `N` runs that a 2-bit alphabet cannot represent.

use std::io::{BufRead, Write};

use crate::rng::StdRng;

use crate::alphabet::Base;
use crate::error::GenomeError;
use crate::seq::DnaSeq;

/// How to treat IUPAC ambiguity codes (anything outside `ACGT`) on input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmbiguityPolicy {
    /// Fail with [`GenomeError::ParseBase`].
    Reject,
    /// Drop ambiguous positions from the sequence.
    Skip,
    /// Replace each ambiguous position with a deterministic pseudo-random
    /// base derived from the given seed (the policy used for the synthetic
    /// chr21 stand-in, mirroring how 2-bit mappers handle `N` runs).
    Randomize(u64),
}

/// One FASTA record: identifier, optional description, sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Sequence identifier (text after `>` up to the first whitespace).
    pub id: String,
    /// Rest of the header line, if any.
    pub description: Option<String>,
    /// The sequence payload.
    pub seq: DnaSeq,
}

impl FastaRecord {
    /// Creates a record with no description.
    pub fn new(id: impl Into<String>, seq: DnaSeq) -> FastaRecord {
        FastaRecord {
            id: id.into(),
            description: None,
            seq,
        }
    }
}

/// Streaming FASTA reader over any [`BufRead`] source.
///
/// # Example
///
/// ```
/// use repute_genome::fasta::{FastaReader, AmbiguityPolicy};
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let data = b">chr21 synthetic\nACGT\nACGN\n" as &[u8];
/// let mut reader = FastaReader::new(data, AmbiguityPolicy::Skip);
/// let record = reader.next().expect("one record")?;
/// assert_eq!(record.id, "chr21");
/// assert_eq!(record.seq.to_string(), "ACGTACG");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FastaReader<R> {
    input: R,
    policy: AmbiguityPolicy,
    line: usize,
    pending_header: Option<String>,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Creates a reader with the given ambiguity policy.
    ///
    /// `input` may be a `&mut` reference if the caller needs the reader
    /// back afterwards.
    pub fn new(input: R, policy: AmbiguityPolicy) -> FastaReader<R> {
        FastaReader {
            input,
            policy,
            line: 0,
            pending_header: None,
            done: false,
        }
    }

    fn read_line(&mut self) -> Result<Option<String>, GenomeError> {
        let mut buf = String::new();
        let n = self.input.read_line(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(Some(buf))
    }

    fn next_record(&mut self) -> Result<Option<FastaRecord>, GenomeError> {
        let header = match self.pending_header.take() {
            Some(h) => h,
            None => loop {
                match self.read_line()? {
                    None => return Ok(None),
                    Some(l) if l.is_empty() => continue,
                    Some(l) if l.starts_with('>') => break l,
                    Some(_) => {
                        return Err(GenomeError::Format {
                            line: self.line,
                            message: "expected '>' header before sequence data".into(),
                        })
                    }
                }
            },
        };
        let body = header[1..].trim();
        if body.is_empty() {
            return Err(GenomeError::Format {
                line: self.line,
                message: "empty FASTA header".into(),
            });
        }
        let (id, description) = match body.split_once(char::is_whitespace) {
            Some((id, rest)) => (id.to_string(), Some(rest.trim().to_string())),
            None => (body.to_string(), None),
        };

        let mut seq = DnaSeq::new();
        let mut rng = match self.policy {
            AmbiguityPolicy::Randomize(seed) => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        loop {
            match self.read_line()? {
                None => break,
                Some(l) if l.starts_with('>') => {
                    self.pending_header = Some(l);
                    break;
                }
                Some(l) => {
                    for c in l.chars().filter(|c| !c.is_whitespace()) {
                        match Base::from_char(c) {
                            Ok(b) => seq.push(b),
                            Err(_) if c.is_ascii_alphabetic() || c == '-' => match self.policy {
                                AmbiguityPolicy::Reject => {
                                    return Err(GenomeError::Format {
                                        line: self.line,
                                        message: format!("ambiguous base {c:?} (policy: reject)"),
                                    })
                                }
                                AmbiguityPolicy::Skip => {}
                                AmbiguityPolicy::Randomize(_) => {
                                    let code = rng.as_mut().expect("rng set").gen_range(0..4u8);
                                    seq.push(Base::from_code(code));
                                }
                            },
                            Err(_) => {
                                return Err(GenomeError::Format {
                                    line: self.line,
                                    message: format!("invalid character {c:?} in sequence"),
                                })
                            }
                        }
                    }
                }
            }
        }
        if seq.is_empty() {
            return Err(GenomeError::Format {
                line: self.line,
                message: format!("record {id:?} has an empty sequence"),
            });
        }
        Ok(Some(FastaRecord {
            id,
            description,
            seq,
        }))
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<FastaRecord, GenomeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads every record from a FASTA source.
///
/// # Errors
///
/// Propagates I/O errors and format violations from the underlying
/// [`FastaReader`].
pub fn read_fasta<R: BufRead>(
    input: R,
    policy: AmbiguityPolicy,
) -> Result<Vec<FastaRecord>, GenomeError> {
    FastaReader::new(input, policy).collect()
}

/// Writes records in FASTA format, wrapping sequence lines at `width` bases.
///
/// A `width` of 0 writes each sequence on a single line. Note that a `&mut`
/// writer can be passed when the caller wants the writer back.
///
/// # Errors
///
/// Propagates I/O errors from `output`.
pub fn write_fasta<W: Write>(
    mut output: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), GenomeError> {
    for rec in records {
        match &rec.description {
            Some(d) => writeln!(output, ">{} {}", rec.id, d)?,
            None => writeln!(output, ">{}", rec.id)?,
        }
        let s = rec.seq.to_string();
        if width == 0 {
            writeln!(output, "{s}")?;
        } else {
            for chunk in s.as_bytes().chunks(width) {
                output.write_all(chunk)?;
                output.write_all(b"\n")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(data: &str, policy: AmbiguityPolicy) -> Result<Vec<FastaRecord>, GenomeError> {
        read_fasta(data.as_bytes(), policy)
    }

    #[test]
    fn parses_multi_record_multi_line() {
        let recs = parse(
            ">one first record\nACGT\nTTTT\n>two\nGG\nGG\n",
            AmbiguityPolicy::Reject,
        )
        .unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "one");
        assert_eq!(recs[0].description.as_deref(), Some("first record"));
        assert_eq!(recs[0].seq.to_string(), "ACGTTTTT");
        assert_eq!(recs[1].id, "two");
        assert_eq!(recs[1].seq.to_string(), "GGGG");
    }

    #[test]
    fn rejects_sequence_before_header() {
        let err = parse("ACGT\n", AmbiguityPolicy::Reject).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_empty_header_and_empty_sequence() {
        assert!(parse("> \nACGT\n", AmbiguityPolicy::Reject).is_err());
        assert!(parse(">x\n>y\nAC\n", AmbiguityPolicy::Reject).is_err());
    }

    #[test]
    fn ambiguity_policies() {
        let data = ">x\nACNNGT\n";
        assert!(parse(data, AmbiguityPolicy::Reject).is_err());
        let skipped = parse(data, AmbiguityPolicy::Skip).unwrap();
        assert_eq!(skipped[0].seq.to_string(), "ACGT");
        let randomized = parse(data, AmbiguityPolicy::Randomize(7)).unwrap();
        assert_eq!(randomized[0].seq.len(), 6);
        // Deterministic for a fixed seed.
        let again = parse(data, AmbiguityPolicy::Randomize(7)).unwrap();
        assert_eq!(randomized[0].seq, again[0].seq);
    }

    #[test]
    fn invalid_characters_always_rejected() {
        assert!(parse(">x\nAC1T\n", AmbiguityPolicy::Randomize(0)).is_err());
    }

    #[test]
    fn write_then_read_round_trip() {
        let recs = vec![
            FastaRecord::new("a", "ACGTACGTACGT".parse().unwrap()),
            FastaRecord {
                id: "b".into(),
                description: Some("desc here".into()),
                seq: "TTTT".parse().unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 5).unwrap();
        let back = read_fasta(buf.as_slice(), AmbiguityPolicy::Reject).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn write_unwrapped() {
        let recs = vec![FastaRecord::new("a", "ACGT".parse().unwrap())];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 0).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), ">a\nACGT\n");
    }

    #[test]
    fn handles_crlf_and_blank_lines() {
        let recs = parse("\n>x\r\nAC\r\nGT\r\n", AmbiguityPolicy::Reject).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }
}
