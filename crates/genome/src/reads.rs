//! Read simulation with ground truth.
//!
//! Stand-in for the NCBI read sets used in the paper (`ERR012100_1`,
//! n=100 and `SRR826460_1`, n=150). Reads are sampled from both strands of
//! a reference, sequencing errors (substitutions and indels) are applied,
//! and the true origin is recorded — which gives the evaluation crate an
//! exact ground truth the paper could only approximate with a RazerS3 gold
//! standard.

use crate::rng::StdRng;

use crate::alphabet::{Base, Strand};
use crate::seq::DnaSeq;

/// Per-base sequencing error rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Probability of a substitution at each base.
    pub substitution: f64,
    /// Probability of an inserted base before each position.
    pub insertion: f64,
    /// Probability of a deleted base at each position.
    pub deletion: f64,
}

impl ErrorProfile {
    /// An error-free profile.
    pub const fn perfect() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
        }
    }

    /// Illumina-like profile of the `ERR012100_1` set (n=100): ~1%
    /// substitutions, rare indels.
    pub const fn err012100() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.010,
            insertion: 0.0005,
            deletion: 0.0005,
        }
    }

    /// Illumina-like profile of the `SRR826460_1` set (n=150): slightly
    /// higher error toward longer reads.
    pub const fn srr826460() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.013,
            insertion: 0.0008,
            deletion: 0.0008,
        }
    }

    /// Expected number of errors for a read of length `n`.
    pub fn expected_errors(&self, n: usize) -> f64 {
        (self.substitution + self.insertion + self.deletion) * n as f64
    }

    fn validate(&self) {
        for (name, p) in [
            ("substitution", self.substitution),
            ("insertion", self.insertion),
            ("deletion", self.deletion),
        ] {
            assert!((0.0..=0.5).contains(&p), "{name} rate {p} out of [0, 0.5]");
        }
    }
}

/// Where a simulated read truly came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOrigin {
    /// 0-based position of the leftmost reference base the read covers.
    pub position: usize,
    /// Which strand the read was sampled from.
    pub strand: Strand,
    /// Number of sequencing errors injected (edit operations).
    pub edits: u32,
}

/// A simulated read: sequence plus optional ground truth.
///
/// Reads drawn as random noise (the unmappable fraction) carry no origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRead {
    /// Stable identifier, `0..count`.
    pub id: u32,
    /// The read sequence, oriented as the sequencer would report it.
    pub seq: DnaSeq,
    /// Ground truth, `None` for noise reads.
    pub origin: Option<ReadOrigin>,
}

/// Configuration for a simulated read set.
///
/// # Example
///
/// ```
/// use repute_genome::reads::{ReadSimulator, ErrorProfile};
/// use repute_genome::synth::ReferenceBuilder;
///
/// let reference = ReferenceBuilder::new(20_000).seed(1).build();
/// let reads = ReadSimulator::new(100, 50)
///     .profile(ErrorProfile::err012100())
///     .seed(7)
///     .simulate(&reference);
/// assert_eq!(reads.len(), 50);
/// assert!(reads.iter().all(|r| r.seq.len() == 100));
/// ```
#[derive(Debug, Clone)]
pub struct ReadSimulator {
    read_len: usize,
    count: usize,
    profile: ErrorProfile,
    unmappable_fraction: f64,
    seed: u64,
}

impl ReadSimulator {
    /// Creates a simulator for `count` reads of `read_len` bases with an
    /// error-free profile and no unmappable reads.
    ///
    /// # Panics
    ///
    /// Panics if `read_len == 0`.
    pub fn new(read_len: usize, count: usize) -> ReadSimulator {
        assert!(read_len > 0, "read length must be positive");
        ReadSimulator {
            read_len,
            count,
            profile: ErrorProfile::perfect(),
            unmappable_fraction: 0.0,
            seed: 0xEAD5,
        }
    }

    /// Sets the sequencing error profile.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `profile` is outside `[0, 0.5]`.
    pub fn profile(mut self, profile: ErrorProfile) -> ReadSimulator {
        profile.validate();
        self.profile = profile;
        self
    }

    /// Sets the fraction of reads generated as uniform noise (contaminant /
    /// adapter-like reads that should map nowhere).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn unmappable_fraction(mut self, fraction: f64) -> ReadSimulator {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of [0, 1]");
        self.unmappable_fraction = fraction;
        self
    }

    /// Sets the RNG seed; simulation is deterministic given a seed.
    pub fn seed(mut self, seed: u64) -> ReadSimulator {
        self.seed = seed;
        self
    }

    /// Read length this simulator produces.
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// Samples the read set from `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than `2 × read_len` (too short to
    /// sample from with indel slack).
    pub fn simulate(&self, reference: &DnaSeq) -> Vec<SimRead> {
        assert!(
            reference.len() >= self.read_len * 2,
            "reference length {} too short for reads of length {}",
            reference.len(),
            self.read_len
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.count)
            .map(|id| {
                if rng.gen::<f64>() < self.unmappable_fraction {
                    self.noise_read(id as u32, &mut rng)
                } else {
                    self.genomic_read(id as u32, reference, &mut rng)
                }
            })
            .collect()
    }

    /// Samples the read set as FASTQ records with a positionally varying
    /// quality profile: substitution probability rises toward the 3' end
    /// (the classic Illumina degradation), and each base's Phred score
    /// reports exactly the substitution rate used at its position.
    ///
    /// Returns the records zipped with their ground truth.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`ReadSimulator::simulate`].
    pub fn simulate_fastq(
        &self,
        reference: &DnaSeq,
    ) -> Vec<(crate::fastq::FastqRecord, Option<ReadOrigin>)> {
        // Per-position substitution multiplier: 0.5× at the 5' end
        // rising to 2.5× at the 3' end (mean ≈ 1.0 over the read, so the
        // configured profile keeps its expected error count).
        let ramp = |i: usize| 0.5 + 2.0 * (i as f64 / self.read_len.max(1) as f64);
        let phred = |p: f64| -> u8 {
            let q = -10.0 * p.max(1e-9).log10();
            (q.round() as u8).min(60)
        };
        let base = self.profile;
        self.simulate(reference)
            .into_iter()
            .enumerate()
            .map(|(k, read)| {
                // A per-read positional profile, deterministic in the
                // read index so the set stays reproducible.
                let mut rng = StdRng::seed_from_u64(self.seed ^ (k as u64).wrapping_mul(0x9E37));
                let quality: Vec<u8> = (0..read.seq.len())
                    .map(|i| {
                        let p = (base.substitution * ramp(i)).min(0.5);
                        let jitter = rng.gen_range(-2i16..=2);
                        let q = i32::from(phred(p)) + i32::from(jitter);
                        crate::fastq::QUALITY_MIN + q.clamp(2, 60) as u8
                    })
                    .collect();
                let record = crate::fastq::FastqRecord {
                    id: format!("sim{}", read.id),
                    seq: read.seq,
                    quality,
                };
                (record, read.origin)
            })
            .collect()
    }

    fn noise_read(&self, id: u32, rng: &mut StdRng) -> SimRead {
        let seq: DnaSeq = (0..self.read_len)
            .map(|_| Base::from_code(rng.gen_range(0..4)))
            .collect();
        SimRead {
            id,
            seq,
            origin: None,
        }
    }

    fn genomic_read(&self, id: u32, reference: &DnaSeq, rng: &mut StdRng) -> SimRead {
        // Sample with slack so deletions never run off the end.
        let slack = self.read_len / 4 + 4;
        let max_start = reference.len() - self.read_len - slack;
        let position = rng.gen_range(0..=max_start);
        let strand = if rng.gen::<bool>() {
            Strand::Forward
        } else {
            Strand::Reverse
        };

        // The error-free template read off the chosen strand.
        let window = reference.subseq(position..position + self.read_len + slack);
        let template = match strand {
            Strand::Forward => window,
            Strand::Reverse => window.reverse_complement(),
        };

        let mut seq = DnaSeq::with_capacity(self.read_len);
        let mut edits = 0u32;
        let mut t = 0usize; // cursor in template
        while seq.len() < self.read_len && t < template.len() {
            let roll = rng.gen::<f64>();
            if roll < self.profile.insertion {
                seq.push(Base::from_code(rng.gen_range(0..4)));
                edits += 1;
            } else if roll < self.profile.insertion + self.profile.deletion {
                t += 1; // skip a template base
                edits += 1;
            } else if roll
                < self.profile.insertion + self.profile.deletion + self.profile.substitution
            {
                let original = template.base(t);
                let substitute = loop {
                    let b = Base::from_code(rng.gen_range(0..4));
                    if b != original {
                        break b;
                    }
                };
                seq.push(substitute);
                edits += 1;
                t += 1;
            } else {
                seq.push(template.base(t));
                t += 1;
            }
        }
        // Pad in the (vanishingly rare) case the template ran dry.
        while seq.len() < self.read_len {
            seq.push(Base::from_code(rng.gen_range(0..4)));
            edits += 1;
        }

        // For a reverse-strand read the reported position is still the
        // leftmost reference base covered; the template started at the
        // *right* end of the window, so recompute from consumed bases.
        let consumed = t;
        let position = match strand {
            Strand::Forward => position,
            Strand::Reverse => position + (template.len() - consumed),
        };

        SimRead {
            id,
            seq,
            origin: Some(ReadOrigin {
                position,
                strand,
                edits,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::ReferenceBuilder;

    fn reference() -> DnaSeq {
        ReferenceBuilder::new(30_000).seed(2).build()
    }

    #[test]
    fn deterministic_given_seed() {
        let r = reference();
        let a = ReadSimulator::new(100, 20).seed(3).simulate(&r);
        let b = ReadSimulator::new(100, 20).seed(3).simulate(&r);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_forward_reads_match_reference_exactly() {
        let r = reference();
        let reads = ReadSimulator::new(80, 50).seed(4).simulate(&r);
        for read in &reads {
            let origin = read.origin.expect("genomic read");
            assert_eq!(origin.edits, 0);
            let window = r.subseq(origin.position..origin.position + 80);
            let expected = match origin.strand {
                Strand::Forward => window,
                Strand::Reverse => window.reverse_complement(),
            };
            assert_eq!(read.seq, expected, "read {} mismatch", read.id);
        }
    }

    #[test]
    fn both_strands_are_sampled() {
        let r = reference();
        let reads = ReadSimulator::new(60, 200).seed(5).simulate(&r);
        let forward = reads
            .iter()
            .filter(|r| r.origin.map(|o| o.strand) == Some(Strand::Forward))
            .count();
        assert!(
            forward > 50 && forward < 150,
            "strand balance off: {forward}/200"
        );
    }

    #[test]
    fn error_rates_materialize() {
        let r = reference();
        let reads = ReadSimulator::new(100, 300)
            .profile(ErrorProfile::err012100())
            .seed(6)
            .simulate(&r);
        let total_edits: u32 = reads.iter().filter_map(|r| r.origin.map(|o| o.edits)).sum();
        let expected = ErrorProfile::err012100().expected_errors(100) * 300.0;
        let got = f64::from(total_edits);
        assert!(
            got > expected * 0.5 && got < expected * 2.0,
            "edit volume {got} far from expectation {expected}"
        );
    }

    #[test]
    fn unmappable_reads_have_no_origin() {
        let r = reference();
        let reads = ReadSimulator::new(100, 200)
            .unmappable_fraction(0.25)
            .seed(7)
            .simulate(&r);
        let noise = reads.iter().filter(|r| r.origin.is_none()).count();
        assert!(noise > 20 && noise < 90, "noise fraction off: {noise}/200");
    }

    #[test]
    fn read_lengths_are_exact() {
        let r = reference();
        for len in [36, 100, 150] {
            let reads = ReadSimulator::new(len, 30)
                .profile(ErrorProfile::srr826460())
                .seed(8)
                .simulate(&r);
            assert!(reads.iter().all(|rd| rd.seq.len() == len));
        }
    }

    #[test]
    fn fastq_simulation_matches_sequences_and_ramps_quality() {
        let r = reference();
        let sim = ReadSimulator::new(100, 25)
            .profile(ErrorProfile::err012100())
            .seed(9);
        let plain = sim.simulate(&r);
        let fastq = sim.simulate_fastq(&r);
        assert_eq!(fastq.len(), plain.len());
        for ((record, origin), read) in fastq.iter().zip(&plain) {
            assert_eq!(record.seq, read.seq, "sequences must match simulate()");
            assert_eq!(*origin, read.origin);
            assert_eq!(record.quality.len(), 100);
            assert!(record.quality.iter().all(|&q| (crate::fastq::QUALITY_MIN
                ..=crate::fastq::QUALITY_MIN + 60)
                .contains(&q)));
        }
        // Qualities degrade toward the 3' end on average.
        let mean_at = |range: std::ops::Range<usize>| -> f64 {
            let mut sum = 0u64;
            let mut n = 0u64;
            for (record, _) in &fastq {
                for i in range.clone() {
                    sum += u64::from(record.quality[i] - crate::fastq::QUALITY_MIN);
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        assert!(
            mean_at(0..10) > mean_at(90..100) + 3.0,
            "5' {} vs 3' {}",
            mean_at(0..10),
            mean_at(90..100)
        );
        // Deterministic.
        let again = sim.simulate_fastq(&r);
        assert_eq!(again[0].0.quality, fastq[0].0.quality);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn reference_too_short_rejected() {
        let tiny: DnaSeq = "ACGTACGT".parse().unwrap();
        let _ = ReadSimulator::new(100, 1).simulate(&tiny);
    }

    #[test]
    #[should_panic(expected = "out of [0, 0.5]")]
    fn bad_profile_rejected() {
        let _ = ReadSimulator::new(10, 1).profile(ErrorProfile {
            substitution: 0.9,
            insertion: 0.0,
            deletion: 0.0,
        });
    }
}
