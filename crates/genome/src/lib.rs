//! Genomic sequence substrate for the REPUTE reproduction.
//!
//! This crate provides everything the mapper stack needs to talk about DNA:
//!
//! * [`Base`] — the four-letter nucleotide alphabet with 2-bit codes,
//! * [`DnaSeq`] — a 2-bit packed, growable DNA sequence,
//! * [`fasta`] / [`fastq`] — line-oriented readers and writers,
//! * [`synth`] — a synthetic reference generator (Markov composition plus
//!   tandem and interspersed repeat families), the stand-in for human
//!   chromosome 21 used throughout the evaluation,
//! * [`reads`] — a read simulator with per-platform error profiles, the
//!   stand-in for the NCBI read sets (`ERR012100_1`, `SRR826460_1`) used in
//!   the paper.
//!
//! # Example
//!
//! ```
//! use repute_genome::{DnaSeq, Base};
//!
//! # fn main() -> Result<(), repute_genome::GenomeError> {
//! let seq: DnaSeq = "ACGTACGT".parse()?;
//! assert_eq!(seq.len(), 8);
//! assert_eq!(seq.base(0), Base::A);
//! assert_eq!(seq.reverse_complement().to_string(), "ACGTACGT");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod error;
mod seq;

pub mod fasta;
pub mod fastq;
pub mod iupac;
pub mod reads;
pub mod rng;
pub mod synth;

pub use alphabet::{Base, Strand};
pub use error::GenomeError;
pub use seq::DnaSeq;
