//! Error type shared by the genome crate.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while parsing or constructing genomic data.
#[derive(Debug)]
#[non_exhaustive]
pub enum GenomeError {
    /// A character outside `{A, C, G, T}` was encountered where a
    /// concrete base was required.
    ParseBase(char),
    /// A 2-bit base code above 3 was supplied.
    InvalidBaseCode(u8),
    /// A FASTA/FASTQ stream violated the expected format.
    Format {
        /// 1-based line number at which the violation was detected.
        line: usize,
        /// Description of the violation.
        message: String,
    },
    /// A quality string did not match its sequence, or contained bytes
    /// outside the printable Phred+33 range.
    InvalidQuality(String),
    /// An underlying I/O operation failed.
    Io(io::Error),
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::ParseBase(c) => {
                write!(f, "character {c:?} is not one of A, C, G, T")
            }
            GenomeError::InvalidBaseCode(code) => {
                write!(f, "base code {code} is outside 0..=3")
            }
            GenomeError::Format { line, message } => {
                write!(f, "format violation at line {line}: {message}")
            }
            GenomeError::InvalidQuality(msg) => {
                write!(f, "invalid quality string: {msg}")
            }
            GenomeError::Io(err) => write!(f, "i/o failure: {err}"),
        }
    }
}

impl Error for GenomeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenomeError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for GenomeError {
    fn from(err: io::Error) -> Self {
        GenomeError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GenomeError::ParseBase('N');
        assert!(e.to_string().contains("'N'"));
        let e = GenomeError::Format {
            line: 7,
            message: "missing header".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_source_is_chained() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "boom");
        let e = GenomeError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GenomeError>();
    }
}
