//! Baseline read mappers for the REPUTE reproduction.
//!
//! The paper compares REPUTE against six published mappers (§III): RazerS3,
//! Hobbes3, Yara, BWA-MEM, GEM and CORAL. Running the original binaries is
//! not possible here, so this crate re-implements each tool's *mapping
//! strategy* — the part that determines its candidate counts, work profile
//! and sensitivity — on the shared substrates (`repute-index`,
//! `repute-align`, `repute-filter`):
//!
//! | Module | Tool | Strategy reproduced |
//! |---|---|---|
//! | [`razers3`] | RazerS3 | uniform pigeonhole partition, full-sensitivity all-mapper (the gold standard of §III-A) |
//! | [`hobbes3`] | Hobbes3 | optimally-placed fixed-length q-gram signatures from a hash index, all-mapper |
//! | [`yara`] | Yara | FM-index all-mapper reporting only the best stratum (best-mapper semantics) |
//! | [`bwamem`] | BWA-MEM | super-maximal exact match seeding, best-mapper |
//! | [`gem`] | GEM | adaptive progressive filtration with candidate caps, best-strata reporting |
//! | [`coral`] | CORAL | serial heuristic variable-length k-mer selection (the OpenCL predecessor of REPUTE) |
//!
//! All mappers implement the common [`Mapper`] trait, map both strands,
//! and report the substrate work they performed so the platform simulator
//! can convert algorithm runs into device seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod engine;

pub mod brute;
pub mod bwamem;
pub mod coral;
pub mod gem;
pub mod hobbes3;
pub mod multiref;
pub mod razers3;
pub mod yara;

pub use common::{IndexedReference, MapOutput, Mapper, Mapping};
pub use engine::{CandidateSet, VerifyEngine};

/// Work-unit cost constants shared by every mapper implementation (and by
/// `repute-core`'s REPUTE kernel), in the platform simulator's currency.
pub mod engine_costs {
    pub use crate::engine::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};
}
