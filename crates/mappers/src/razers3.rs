//! RazerS3-style mapper: SWIFT q-gram counting, full sensitivity.
//!
//! RazerS3 is the paper's gold standard (§III-A): a hash-based
//! *all-mapper* ("RazerS3 and Hobbes3 use hashing based method\[s\]",
//! §II-B) that is fully sensitive within the q-gram lemma. The strategy
//! reproduced here is the SWIFT counting filter: every q-gram of the read
//! votes for the reference diagonal band it hits; any band collecting at
//! least τ = n + 1 − q·(δ+1) votes (the q-gram lemma threshold) becomes a
//! candidate and is verified. Scanning *every* q-gram's position list is
//! what makes RazerS3 thorough and slow — and τ falls as δ rises, so more
//! bands qualify and its mapping time grows steeply across the paper's
//! error range (26.7 s → 65.7 s in Table I).

use std::sync::Arc;

use repute_genome::DnaSeq;
use repute_index::QGramIndex;

use crate::common::{IndexedReference, MapOutput, Mapper};
use crate::engine::{strand_codes, VerifyEngine};

/// The RazerS3-style full-sensitivity all-mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{razers3::Razers3Like, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(20_000).seed(7).build();
/// let read = reference.subseq(500..600);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let mapper = Razers3Like::new(indexed, 3);
/// let out = mapper.map_read(&read);
/// assert!(out.mappings.iter().any(|m| m.position.abs_diff(500) <= 20));
/// ```
/// SWIFT counting q-gram length (shorter than the shared q=10 index:
/// RazerS3's weighted shapes trade specificity for sensitivity, which is
/// exactly what makes its counting phase expensive).
const SWIFT_Q: usize = 8;

/// The RazerS3-style full-sensitivity all-mapper (see the example in the
/// module documentation above).
#[derive(Debug, Clone)]
pub struct Razers3Like {
    indexed: Arc<IndexedReference>,
    swift: QGramIndex,
    delta: u32,
    max_locations: usize,
}

impl Razers3Like {
    /// Creates the mapper with the paper's RazerS3 configuration of 100
    /// locations per read.
    pub fn new(indexed: Arc<IndexedReference>, delta: u32) -> Razers3Like {
        let swift = QGramIndex::build(indexed.seq(), SWIFT_Q);
        Razers3Like {
            indexed,
            swift,
            delta,
            max_locations: 100,
        }
    }

    /// Overrides the per-read location limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> Razers3Like {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// The q-gram lemma threshold for a read of `n` bases: a window with
    /// ≤ δ errors shares at least `n + 1 − q·(δ+1)` q-grams with the read
    /// (clamped to 1 to stay sensitive for short reads).
    pub fn vote_threshold(&self, n: usize) -> u32 {
        ((n + 1).saturating_sub(SWIFT_Q * (self.delta as usize + 1)) as u32).max(1)
    }

    /// Diagonal band width: δ indel drift plus slack.
    fn band_width(&self) -> u32 {
        (2 * self.delta).max(8)
    }
}

impl Mapper for Razers3Like {
    fn name(&self) -> &str {
        "RazerS3"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let qgram = &self.swift;
        let q = qgram.q();
        let engine = VerifyEngine::new(self.indexed.codes(), self.delta);
        let band = self.band_width();
        let mut out = MapOutput::default();
        for (strand, codes) in strand_codes(read) {
            if codes.len() < q {
                continue;
            }
            let tau = self.vote_threshold(codes.len());
            // SWIFT counting: every q-gram hit votes for its diagonal
            // band; a hit also votes for the previous band so a true
            // window split across a band boundary still collects all its
            // votes in the lower band.
            // Each vote is a random-access bin update (two buckets per
            // hit) — the memory-bound heart of the SWIFT filter.
            const VOTE_COST: u64 = 6;
            let mut votes: Vec<u32> = Vec::new();
            for i in 0..=codes.len() - q {
                let positions = qgram.positions(&codes[i..i + q]);
                out.work += positions.len() as u64 * VOTE_COST + 1;
                for &p in positions {
                    let bucket = p.saturating_sub(i as u32) / band;
                    votes.push(bucket);
                    if bucket > 0 {
                        votes.push(bucket - 1);
                    }
                }
            }
            votes.sort_unstable();
            out.work += votes.len() as u64 / 4; // sort pass
                                                // Bands with ≥ τ votes become candidates.
            let mut candidates: Vec<u32> = Vec::new();
            let mut run_start = 0usize;
            for i in 1..=votes.len() {
                if i == votes.len() || votes[i] != votes[run_start] {
                    if (i - run_start) as u32 >= tau {
                        candidates.push(votes[run_start] * band);
                    }
                    run_start = i;
                }
            }
            out.candidates += candidates.len() as u64;
            out.work += engine.verify_banded(
                &codes,
                strand,
                &candidates,
                band as usize,
                self.max_locations,
                &mut out.mappings,
            );
            if out.mappings.len() >= self.max_locations {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;
    use repute_genome::Strand;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(50_000).seed(29).build(),
        ))
    }

    #[test]
    fn finds_exact_forward_and_reverse_reads() {
        let indexed = indexed();
        let mapper = Razers3Like::new(Arc::clone(&indexed), 3);
        let fwd = indexed.seq().subseq(10_000..10_100);
        let out = mapper.map_read(&fwd);
        assert!(out
            .mappings
            .iter()
            .any(|m| m.position.abs_diff(10_000) <= 10
                && m.strand == Strand::Forward
                && m.distance == 0));

        let rev = fwd.reverse_complement();
        let out = mapper.map_read(&rev);
        assert!(out
            .mappings
            .iter()
            .any(|m| m.position.abs_diff(10_000) <= 10 && m.strand == Strand::Reverse));
    }

    #[test]
    fn full_sensitivity_on_simulated_reads() {
        let indexed = indexed();
        let mapper = Razers3Like::new(Arc::clone(&indexed), 5);
        let reads = ReadSimulator::new(100, 40)
            .profile(ErrorProfile::err012100())
            .seed(31)
            .simulate(indexed.seq());
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 5 {
                continue;
            }
            let out = mapper.map_read(&read.seq);
            assert!(
                out.mappings.iter().any(|m| {
                    m.strand == origin.strand
                        && (m.position as i64 - origin.position as i64).abs() <= 20
                }),
                "read {} origin {:?} not found in {:?}",
                read.id,
                origin,
                out.mappings
            );
        }
    }

    #[test]
    fn vote_threshold_follows_qgram_lemma() {
        let indexed = indexed();
        let mapper = Razers3Like::new(Arc::clone(&indexed), 3);
        // q = 8: τ = 100 + 1 − 8·4 = 69.
        assert_eq!(mapper.vote_threshold(100), 69);
        let loose = Razers3Like::new(indexed, 7);
        // τ = 151 − 64 = 87 for n=150; clamps to 1 for short reads.
        assert_eq!(loose.vote_threshold(150), 87);
        assert_eq!(loose.vote_threshold(20), 1);
    }

    #[test]
    fn candidates_grow_with_delta() {
        // τ falls as δ rises, so more bands get verified.
        let indexed = indexed();
        let read = indexed.seq().subseq(20_000..20_100);
        let w3 = Razers3Like::new(Arc::clone(&indexed), 3).map_read(&read);
        let w7 = Razers3Like::new(Arc::clone(&indexed), 7).map_read(&read);
        assert!(w7.candidates >= w3.candidates);
    }

    #[test]
    fn respects_location_limit() {
        let indexed = indexed();
        let mapper = Razers3Like::new(Arc::clone(&indexed), 2).with_max_locations(3);
        // A low-complexity read maps in many places.
        let read: DnaSeq = "ACACACACACACACACACACACACACACAC".parse().unwrap();
        let out = mapper.map_read(&read);
        assert!(out.mappings.len() <= 3);
        assert_eq!(mapper.max_locations(), 3);
        assert_eq!(mapper.name(), "RazerS3");
    }
}
