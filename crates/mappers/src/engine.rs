//! Shared candidate-verification machinery.
//!
//! Every pigeonhole mapper ends the same way: project each seed hit onto a
//! read-start diagonal, merge nearby candidates, cut a reference window
//! around each and run the Myers verifier. This engine centralises that
//! flow — and its work accounting — so the mappers differ only in *how
//! they choose seeds*, which is exactly the axis the paper compares.

use repute_align::{
    verify_metered, verify_with, BatchVerifier, CandidateBatch, ReadMasks, VerifyScratch, LANES,
};
use repute_genome::{DnaSeq, Strand};
use repute_obs::MapMetrics;
use repute_prefilter::{Candidate, PreFilter, Verdict};

use crate::common::Mapping;

/// `true` when `REPUTE_SCALAR_VERIFY` is set (to anything but `0` or
/// empty): engines then run the scalar per-candidate verification path
/// instead of the batch SWAR kernels. The two paths are bit-identical
/// by construction; the switch exists so benchmarks and differential
/// tests can compare full pipelines.
fn scalar_verify_env() -> bool {
    static SCALAR: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SCALAR.get_or_init(|| {
        std::env::var_os("REPUTE_SCALAR_VERIFY").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// Work units charged per FM-Index left-extension: two rank queries, each
/// a checkpoint load plus a BWT scan — cache-missing, memory-bound work,
/// far heavier than one register-resident bit-vector update.
pub const EXTEND_COST: u64 = 24;

/// Work units charged per DP cell of a filtration dynamic program (one
/// table read, one add, one compare).
pub const DP_CELL_COST: u64 = 2;

/// Work units charged per located suffix-array position: with the
/// [`IndexedReference`](crate::IndexedReference) SA sampling of 8 the LF
/// walk averages 4 steps, each an FM extension.
pub const LOCATE_COST: u64 = 4 * EXTEND_COST;

/// A deduplicating collection of candidate diagonals for one read/strand.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    diagonals: Vec<u32>,
}

impl CandidateSet {
    /// Creates an empty set.
    pub fn new() -> CandidateSet {
        CandidateSet::default()
    }

    /// Adds a candidate: a seed hit at reference position `ref_pos` whose
    /// seed started `read_offset` bases into the read. The implied read
    /// start (diagonal) is clamped at zero.
    pub fn add(&mut self, ref_pos: u32, read_offset: usize) {
        self.diagonals
            .push(ref_pos.saturating_sub(read_offset as u32));
    }

    /// Number of raw candidates added so far.
    pub fn len(&self) -> usize {
        self.diagonals.len()
    }

    /// Returns `true` when no candidate was added.
    pub fn is_empty(&self) -> bool {
        self.diagonals.is_empty()
    }

    /// The canonical candidate merge gap for error budget δ.
    ///
    /// Two seed hits belong to the *same* alignment exactly when their
    /// implied read-start diagonals differ by no more than the indel
    /// slack, which is bounded by δ — so merging with gap δ dedupes
    /// same-alignment jitter without ever collapsing two genuinely
    /// distinct alignment sites (whose windows each still get
    /// verified). Every mapper routes its merge distance through this
    /// policy; do not confuse it with output *hit clustering* (e.g.
    /// the brute-force oracle groups qualifying alignment end columns
    /// with a wider `2δ+2` gap, which operates on reported positions,
    /// not candidate diagonals).
    pub fn merge_gap(delta: u32) -> u32 {
        delta
    }

    /// Sorts and merges candidates closer than `merge_distance` —
    /// normally [`CandidateSet::merge_gap`] of the mapper's δ —
    /// returning the surviving diagonals (the first diagonal of each
    /// cluster represents it, and its verification window's ±δ slack
    /// covers the jitter the merge absorbed).
    pub fn into_merged(mut self, merge_distance: u32) -> Vec<u32> {
        self.diagonals.sort_unstable();
        let mut out: Vec<u32> = Vec::with_capacity(self.diagonals.len());
        for d in self.diagonals {
            match out.last() {
                Some(&last) if d - last <= merge_distance => {}
                _ => out.push(d),
            }
        }
        out
    }
}

/// The verification half of a mapper.
#[derive(Debug, Clone, Copy)]
pub struct VerifyEngine<'a> {
    reference: &'a [u8],
    delta: u32,
    prefilter: Option<&'a dyn PreFilter>,
    scalar: bool,
}

impl<'a> VerifyEngine<'a> {
    /// Creates an engine over the reference's 2-bit codes with error
    /// budget δ and no pre-alignment filter. Verification runs the
    /// batch SWAR kernels unless the `REPUTE_SCALAR_VERIFY` environment
    /// variable (or [`VerifyEngine::with_scalar_path`]) selects the
    /// scalar oracle path.
    pub fn new(reference: &'a [u8], delta: u32) -> VerifyEngine<'a> {
        VerifyEngine {
            reference,
            delta,
            prefilter: None,
            scalar: scalar_verify_env(),
        }
    }

    /// Forces the scalar per-candidate verification path, regardless of
    /// the environment. Output and metrics are bit-identical to the
    /// batch path — this switch exists for differential tests and for
    /// benchmarking the batch kernels against their oracle.
    pub fn with_scalar_path(mut self) -> VerifyEngine<'a> {
        self.scalar = true;
        self
    }

    /// Installs a pre-alignment filter: candidate windows it rejects
    /// skip Myers verification entirely. The filter must be sound
    /// (zero false negatives — see [`repute_prefilter::PreFilter`]),
    /// so installed filters change mapping *cost*, never mapping
    /// *output*. Filter work and outcomes are recorded in the
    /// `prefilter_*` counters of [`MapMetrics`].
    pub fn with_prefilter(mut self, filter: &'a dyn PreFilter) -> VerifyEngine<'a> {
        self.prefilter = Some(filter);
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Verifies merged candidate diagonals for `read` on `strand`,
    /// appending accepted mappings to `out` until `limit` total mappings.
    ///
    /// Returns the bit-vector work consumed. The window around each
    /// candidate spans `read_len + 2δ` bases, the standard slack for up to
    /// δ indels on either side.
    pub fn verify(
        &self,
        read: &[u8],
        strand: Strand,
        candidates: &[u32],
        limit: usize,
        out: &mut Vec<Mapping>,
    ) -> u64 {
        let mut scratch = MapMetrics::new();
        self.verify_metered(read, strand, candidates, limit, out, &mut scratch)
    }

    /// Like [`VerifyEngine::verify`], additionally recording one
    /// verification, its word updates, and any accepted hit per candidate
    /// into `metrics`. Returns the same work value `verify` would, so
    /// metered callers keep the exact `MapOutput.work` arithmetic.
    ///
    /// The batch path builds the read's [`ReadMasks`] once, gathers the
    /// candidates into a structure-of-arrays [`CandidateBatch`], runs
    /// the prefilter over whole chunks, and verifies survivors
    /// [`LANES`] at a time through the SWAR kernels. Everything it
    /// reports — mappings, their order, every metric counter, the
    /// returned work — is bit-identical to the scalar path: a chunk is
    /// only batched when the remaining output capacity covers all of
    /// it (so the scalar loop could not have stopped mid-chunk), and
    /// all metric increments are commutative sums.
    pub fn verify_metered(
        &self,
        read: &[u8],
        strand: Strand,
        candidates: &[u32],
        limit: usize,
        out: &mut Vec<Mapping>,
        metrics: &mut MapMetrics,
    ) -> u64 {
        if self.scalar {
            return self.verify_metered_scalar(read, strand, candidates, limit, out, metrics);
        }
        let n = self.reference.len();
        let mut batch = CandidateBatch::new();
        for &diag in candidates {
            let start = (diag as usize).saturating_sub(self.delta as usize);
            let end = (diag as usize + read.len() + self.delta as usize).min(n);
            if start >= end {
                continue;
            }
            batch.push(diag as usize, start, end);
        }
        if batch.is_empty() {
            return 0;
        }
        let masks = ReadMasks::new(read);
        let mut scratch = VerifyScratch::new();
        let mut verifier = BatchVerifier::new();
        let mut chunk_candidates: Vec<Candidate<'_>> = Vec::with_capacity(LANES);
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(LANES);
        let mut lanes: Vec<&[u8]> = Vec::with_capacity(LANES);
        let mut lane_ids: Vec<usize> = Vec::with_capacity(LANES);
        let mut results = Vec::with_capacity(LANES);
        let mut work = 0u64;
        let mut i = 0;
        while i < batch.len() {
            if out.len() >= limit {
                break;
            }
            let chunk = LANES.min(batch.len() - i);
            if limit - out.len() < chunk {
                // The scalar loop could stop mid-chunk here (each
                // candidate appends at most one mapping); finish one
                // candidate at a time to keep the cut-off identical.
                work +=
                    self.verify_one(read, &masks, &mut scratch, &batch, i, strand, out, metrics);
                i += 1;
                continue;
            }
            lanes.clear();
            lane_ids.clear();
            if let Some(filter) = self.prefilter {
                chunk_candidates.clear();
                for j in i..i + chunk {
                    chunk_candidates.push(Candidate {
                        read,
                        window: batch.window(self.reference, j),
                        window_start: batch.start(j),
                        delta: self.delta,
                    });
                }
                verdicts.clear();
                filter.examine_batch(&chunk_candidates, &mut verdicts);
                for (j, verdict) in verdicts.iter().enumerate() {
                    metrics.prefilter_tested += 1;
                    metrics.prefilter_words += verdict.cost_words;
                    work += verdict.cost_words;
                    if verdict.accept {
                        lanes.push(batch.window(self.reference, i + j));
                        lane_ids.push(i + j);
                    } else {
                        // Sound filters only reject unverifiable
                        // windows: every rejection is a true reject.
                        metrics.prefilter_rejected += 1;
                    }
                }
            } else {
                for j in i..i + chunk {
                    lanes.push(batch.window(self.reference, j));
                    lane_ids.push(j);
                }
            }
            if !lanes.is_empty() {
                results.clear();
                verifier.verify_lanes(&masks, &lanes, self.delta, &mut results);
                for (l, (hit, cost)) in results.iter().enumerate() {
                    metrics.verifications += 1;
                    metrics.word_updates += cost.word_updates;
                    metrics.hits += u64::from(hit.is_some());
                    work += cost.word_updates;
                    if let Some(v) = hit {
                        out.push(Mapping {
                            position: batch.diag(lane_ids[l]) as u32,
                            strand,
                            distance: v.distance,
                        });
                    } else if self.prefilter.is_some() {
                        metrics.prefilter_false_accepts += 1;
                    }
                }
            }
            i += chunk;
        }
        work
    }

    /// Scalar processing of one batched candidate, with the hoisted
    /// read masks — the same accounting as one iteration of
    /// [`VerifyEngine::verify_metered_scalar`].
    #[allow(clippy::too_many_arguments)]
    fn verify_one(
        &self,
        read: &[u8],
        masks: &ReadMasks,
        scratch: &mut VerifyScratch,
        batch: &CandidateBatch,
        i: usize,
        strand: Strand,
        out: &mut Vec<Mapping>,
        metrics: &mut MapMetrics,
    ) -> u64 {
        let mut work = 0u64;
        let window = batch.window(self.reference, i);
        let mut filtered = false;
        if let Some(filter) = self.prefilter {
            let verdict = filter.examine(&Candidate {
                read,
                window,
                window_start: batch.start(i),
                delta: self.delta,
            });
            metrics.prefilter_tested += 1;
            metrics.prefilter_words += verdict.cost_words;
            work += verdict.cost_words;
            if !verdict.accept {
                metrics.prefilter_rejected += 1;
                return work;
            }
            filtered = true;
        }
        let (hit, cost) = verify_with(masks, window, self.delta, scratch);
        metrics.verifications += 1;
        metrics.word_updates += cost.word_updates;
        metrics.hits += u64::from(hit.is_some());
        work += cost.word_updates;
        if let Some(v) = hit {
            out.push(Mapping {
                position: batch.diag(i) as u32,
                strand,
                distance: v.distance,
            });
        } else if filtered {
            metrics.prefilter_false_accepts += 1;
        }
        work
    }

    /// The scalar per-candidate verification loop — the differential
    /// oracle the batch path is held bit-identical to.
    fn verify_metered_scalar(
        &self,
        read: &[u8],
        strand: Strand,
        candidates: &[u32],
        limit: usize,
        out: &mut Vec<Mapping>,
        metrics: &mut MapMetrics,
    ) -> u64 {
        let mut work = 0u64;
        let n = self.reference.len();
        for &diag in candidates {
            if out.len() >= limit {
                break;
            }
            let start = (diag as usize).saturating_sub(self.delta as usize);
            let end = (diag as usize + read.len() + self.delta as usize).min(n);
            if start >= end {
                continue;
            }
            let window = &self.reference[start..end];
            let mut filtered = false;
            if let Some(filter) = self.prefilter {
                let verdict = filter.examine(&Candidate {
                    read,
                    window,
                    window_start: start,
                    delta: self.delta,
                });
                metrics.prefilter_tested += 1;
                metrics.prefilter_words += verdict.cost_words;
                work += verdict.cost_words;
                if !verdict.accept {
                    // Sound filters only reject unverifiable windows:
                    // every rejection is a true reject.
                    metrics.prefilter_rejected += 1;
                    continue;
                }
                filtered = true;
            }
            let words_before = metrics.word_updates;
            let hit = verify_metered(read, window, self.delta, metrics);
            work += metrics.word_updates - words_before;
            if let Some(v) = hit {
                out.push(Mapping {
                    position: diag,
                    strand,
                    distance: v.distance,
                });
            } else if filtered {
                metrics.prefilter_false_accepts += 1;
            }
        }
        work
    }
}

impl VerifyEngine<'_> {
    /// Verifies diagonal *bands* (SWIFT-style counting filters emit a band
    /// start rather than an exact diagonal): the window spans the whole
    /// band plus the usual δ slack, and the reported position is derived
    /// from the alignment's end (accurate to ±distance ≤ δ).
    ///
    /// Returns the bit-vector work consumed.
    pub fn verify_banded(
        &self,
        read: &[u8],
        strand: Strand,
        band_starts: &[u32],
        band: usize,
        limit: usize,
        out: &mut Vec<Mapping>,
    ) -> u64 {
        let mut work = 0u64;
        let n = self.reference.len();
        let delta = self.delta as usize;
        if band_starts.is_empty() {
            return 0;
        }
        // Masks built once per read, reused across every band window.
        let masks = ReadMasks::new(read);
        let mut scratch = VerifyScratch::new();
        for &band_start in band_starts {
            if out.len() >= limit {
                break;
            }
            let start = (band_start as usize).saturating_sub(delta);
            let end = (band_start as usize + band + read.len() + delta).min(n);
            if start >= end {
                continue;
            }
            let window = &self.reference[start..end];
            let (hit, cost) = verify_with(&masks, window, self.delta, &mut scratch);
            work += cost.word_updates;
            if let Some(v) = hit {
                let position = (start + v.end).saturating_sub(read.len()) as u32;
                out.push(Mapping {
                    position,
                    strand,
                    distance: v.distance,
                });
            }
        }
        work
    }
}

/// Prepares the forward and reverse-complement code vectors of a read —
/// every mapper maps both strands.
pub fn strand_codes(read: &DnaSeq) -> [(Strand, Vec<u8>); 2] {
    [
        (Strand::Forward, read.to_codes()),
        (Strand::Reverse, read.reverse_complement().to_codes()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::synth::ReferenceBuilder;

    #[test]
    fn candidate_merging() {
        let mut set = CandidateSet::new();
        set.add(100, 0);
        set.add(103, 0);
        set.add(200, 0);
        set.add(100, 0);
        assert_eq!(set.len(), 4);
        assert_eq!(set.into_merged(5), vec![100, 200]);
    }

    #[test]
    fn candidate_merge_zero_keeps_distinct() {
        let mut set = CandidateSet::new();
        set.add(10, 0);
        set.add(11, 0);
        assert_eq!(set.into_merged(0), vec![10, 11]);
    }

    #[test]
    fn diagonal_clamps_at_zero() {
        let mut set = CandidateSet::new();
        set.add(3, 10); // seed hit near the reference start
        assert_eq!(set.into_merged(0), vec![0]);
    }

    #[test]
    fn verify_accepts_true_location_and_rejects_noise() {
        let reference = ReferenceBuilder::new(10_000).seed(23).build();
        let codes = reference.to_codes();
        let read = reference.subseq(4000..4100).to_codes();
        let engine = VerifyEngine::new(&codes, 3);
        let mut out = Vec::new();
        let work = engine.verify(&read, Strand::Forward, &[4000, 9000], 100, &mut out);
        assert!(work > 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].position, 4000);
        assert_eq!(out[0].distance, 0);
    }

    #[test]
    fn metered_verify_matches_unmetered() {
        let reference = ReferenceBuilder::new(10_000).seed(23).build();
        let codes = reference.to_codes();
        let read = reference.subseq(4000..4100).to_codes();
        let engine = VerifyEngine::new(&codes, 3);
        let candidates = [4000u32, 6000, 9000];
        let mut plain = Vec::new();
        let work = engine.verify(&read, Strand::Forward, &candidates, 100, &mut plain);
        let mut metered = Vec::new();
        let mut metrics = MapMetrics::new();
        let metered_work = engine.verify_metered(
            &read,
            Strand::Forward,
            &candidates,
            100,
            &mut metered,
            &mut metrics,
        );
        assert_eq!(plain, metered);
        assert_eq!(work, metered_work);
        assert_eq!(metrics.word_updates, work);
        assert_eq!(metrics.verifications, candidates.len() as u64);
        assert_eq!(metrics.hits, plain.len() as u64);
    }

    #[test]
    fn batch_path_matches_scalar_oracle_exactly() {
        // The load-bearing invariant of the SWAR batch path: mappings
        // (values and order), every metric counter, and the returned
        // work must be bit-identical to the scalar per-candidate loop —
        // across read-length kernels, prefilter on/off, and limits that
        // force the mid-chunk scalar fallback.
        let reference = ReferenceBuilder::new(20_000).seed(29).build();
        let codes = reference.to_codes();
        let shd = repute_prefilter::ShdFilter::new();
        for read_len in [50usize, 100, 150] {
            let read = reference.subseq(5000..5000 + read_len).to_codes();
            let candidates: Vec<u32> = vec![
                5000, 5, 100, 1000, 2500, 5000, 7000, 9000, 11000, 13000, 17500, 19990,
            ];
            for limit in [0usize, 1, 2, 3, 5, 100] {
                for use_filter in [false, true] {
                    let mut base = VerifyEngine::new(&codes, 4);
                    if use_filter {
                        base = base.with_prefilter(&shd);
                    }
                    let mut out_b = Vec::new();
                    let mut met_b = MapMetrics::new();
                    let work_b = base.verify_metered(
                        &read,
                        Strand::Forward,
                        &candidates,
                        limit,
                        &mut out_b,
                        &mut met_b,
                    );
                    let mut out_s = Vec::new();
                    let mut met_s = MapMetrics::new();
                    let work_s = base.with_scalar_path().verify_metered(
                        &read,
                        Strand::Forward,
                        &candidates,
                        limit,
                        &mut out_s,
                        &mut met_s,
                    );
                    let ctx = format!("read_len={read_len} limit={limit} filter={use_filter}");
                    assert_eq!(out_b, out_s, "{ctx}: mappings diverge");
                    assert_eq!(work_b, work_s, "{ctx}: work diverges");
                    assert_eq!(met_b, met_s, "{ctx}: metrics diverge");
                }
            }
        }
    }

    #[test]
    fn verify_respects_limit() {
        let reference = ReferenceBuilder::new(5_000).seed(24).build();
        let codes = reference.to_codes();
        let read = reference.subseq(100..180).to_codes();
        let engine = VerifyEngine::new(&codes, 80); // absurd budget: everything passes
        let mut out = Vec::new();
        engine.verify(&read, Strand::Forward, &[0, 50, 100, 150], 2, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_clamps_at_reference_edges() {
        let reference = ReferenceBuilder::new(300).seed(25).build();
        let codes = reference.to_codes();
        let read = reference.subseq(250..300).to_codes();
        let engine = VerifyEngine::new(&codes, 2);
        let mut out = Vec::new();
        engine.verify(&read, Strand::Forward, &[250, 290], 10, &mut out);
        assert!(out.iter().any(|m| m.position == 250));
    }

    #[test]
    fn strand_codes_produces_both_orientations() {
        let read: DnaSeq = "ACGT".parse().unwrap();
        let [fwd, rev] = strand_codes(&read);
        assert_eq!(fwd.0, Strand::Forward);
        assert_eq!(fwd.1, vec![0, 1, 2, 3]);
        assert_eq!(rev.0, Strand::Reverse);
        assert_eq!(rev.1, vec![0, 1, 2, 3]); // ACGT is its own RC
    }
}
