//! The mapper interface shared by every baseline and by REPUTE itself.

use repute_genome::{DnaSeq, Strand};

/// One reported mapping location.
///
/// REPUTE "gives the mapping positions, edit distance and strand for each
/// \[read\]" (§IV) — this struct is exactly that triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// Leftmost reference base of the mapped region (0-based). Mappers
    /// report the candidate diagonal, so positions are exact up to the
    /// indel slack of the alignment (≤ δ); the evaluation crate matches
    /// with that tolerance.
    pub position: u32,
    /// Strand the read maps to.
    pub strand: Strand,
    /// Edit distance of the accepted alignment.
    pub distance: u32,
}

/// Everything one `map_read` call produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MapOutput {
    /// Accepted mapping locations, at most the mapper's location limit.
    pub mappings: Vec<Mapping>,
    /// Substrate work units consumed (FM extensions, DP cells, bit-vector
    /// word updates, locate steps) — the currency of the platform
    /// simulator's time model.
    pub work: u64,
    /// Candidate locations that were verified (before acceptance).
    pub candidates: u64,
}

/// The preprocessing stage's output: a reference together with the index
/// structures every mapper draws on (§II-A of the paper).
///
/// Build it once and share it (e.g. via [`std::sync::Arc`]) across all the
/// mappers in a comparison — index construction dominates setup time.
#[derive(Debug, Clone)]
pub struct IndexedReference {
    seq: DnaSeq,
    codes: Vec<u8>,
    fm: repute_index::FmIndex,
    qgram: repute_index::QGramIndex,
    prefilter_bins: repute_prefilter::QgramBins,
}

impl IndexedReference {
    /// Default q-gram length for the hash index (RazerS3/Hobbes3 family).
    pub const DEFAULT_Q: usize = 10;

    /// Indexes `seq` with the default q-gram length.
    pub fn build(seq: DnaSeq) -> IndexedReference {
        IndexedReference::build_with_q(seq, Self::DEFAULT_Q)
    }

    /// Indexes `seq` with an explicit q-gram length.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`repute_index::QGramIndex::build`].
    pub fn build_with_q(seq: DnaSeq, q: usize) -> IndexedReference {
        let codes = seq.to_codes();
        // Denser SA sampling than the library default: mapping locates
        // millions of candidate positions, so the memory/locate-speed
        // trade leans toward speed here (the ablation bench sweeps it).
        let fm = repute_index::FmIndex::builder().sa_sample(8).build(&seq);
        let qgram = repute_index::QGramIndex::build(&seq, q);
        let prefilter_bins = repute_prefilter::QgramBins::build_default(&codes);
        IndexedReference {
            seq,
            codes,
            fm,
            qgram,
            prefilter_bins,
        }
    }

    /// The reference sequence.
    pub fn seq(&self) -> &DnaSeq {
        &self.seq
    }

    /// The reference as flat 2-bit codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The FM-Index over the reference.
    pub fn fm(&self) -> &repute_index::FmIndex {
        &self.fm
    }

    /// The q-gram hash index over the reference.
    pub fn qgram(&self) -> &repute_index::QGramIndex {
        &self.qgram
    }

    /// The pre-alignment q-gram existence bins (GRIM-style), built with
    /// the prefilter crate's defaults. Mappers configured with custom
    /// prefilter parameters build their own bins from [`Self::codes`].
    pub fn prefilter_bins(&self) -> &repute_prefilter::QgramBins {
        &self.prefilter_bins
    }

    /// Reference length in bases.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` for an empty reference (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Serialises the index to a binary stream: the packed sequence, the
    /// FM-Index (BWT + SA samples), and the q-gram length. The q-gram
    /// index itself is rebuilt on load (one linear pass — far cheaper
    /// than the suffix-array construction the FM payload avoids).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out` (a `&mut` writer is accepted).
    pub fn write_to<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        out.write_all(b"RPIX")?;
        out.write_all(&1u16.to_le_bytes())?;
        out.write_all(&(self.qgram.q() as u32).to_le_bytes())?;
        self.seq.write_packed(&mut out)?;
        self.fm.write_to(&mut out)
    }

    /// Deserialises an index written by [`IndexedReference::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic,
    /// version, or payload mismatch, and propagates I/O errors from
    /// `input` (a `&mut` reader is accepted).
    pub fn read_from<R: std::io::Read>(mut input: R) -> std::io::Result<IndexedReference> {
        fn bad(msg: &str) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
        }
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if &magic != b"RPIX" {
            return Err(bad("not a repute index stream (bad magic)"));
        }
        let mut b2 = [0u8; 2];
        input.read_exact(&mut b2)?;
        if u16::from_le_bytes(b2) != 1 {
            return Err(bad("unsupported index format version"));
        }
        let mut b4 = [0u8; 4];
        input.read_exact(&mut b4)?;
        let q = u32::from_le_bytes(b4) as usize;
        let seq = DnaSeq::read_packed(&mut input)?;
        let fm = repute_index::FmIndex::read_from(&mut input)?;
        if fm.text_len() != seq.len() {
            return Err(bad("FM-Index does not match the stored sequence"));
        }
        let codes = seq.to_codes();
        let qgram = repute_index::QGramIndex::build(&seq, q);
        let prefilter_bins = repute_prefilter::QgramBins::build_default(&codes);
        Ok(IndexedReference {
            seq,
            codes,
            fm,
            qgram,
            prefilter_bins,
        })
    }
}

/// A read mapper: reference-preprocessed, ready to map reads.
///
/// Implementations must be `Sync` so the platform simulator can run them
/// from multiple worker threads.
pub trait Mapper: Sync {
    /// Short display name, e.g. `"RazerS3"`.
    fn name(&self) -> &str;

    /// Maps one read against both strands of the reference.
    fn map_read(&self, read: &DnaSeq) -> MapOutput;

    /// Maps one read, recording per-stage telemetry into `metrics`.
    ///
    /// The default implementation runs [`Mapper::map_read`] and backfills
    /// the coarse counters observable from its output — candidate windows
    /// verified and accepted hits — so every baseline participates in
    /// run-level reports. Mappers with instrumented internals (REPUTE)
    /// override this with the full per-stage decomposition.
    fn map_read_metered(&self, read: &DnaSeq, metrics: &mut repute_obs::MapMetrics) -> MapOutput {
        let out = self.map_read(read);
        metrics.candidates_merged += out.candidates;
        metrics.hits += out.mappings.len() as u64;
        out
    }

    /// The output-slot limit per read (the *first-n* restriction of §III).
    fn max_locations(&self) -> usize;

    /// Estimated private-memory bytes one work-item (read) of this
    /// mapper's kernel occupies on a device, for the occupancy model of
    /// `repute-hetsim`. Zero (the default) means occupancy-insensitive;
    /// REPUTE overrides this with its DP-table footprint — the
    /// hardware/software co-design knob of the paper's §II-B.
    fn kernel_private_bytes(&self, read_len: usize) -> usize {
        let _ = read_len;
        0
    }
}

impl<M: Mapper + ?Sized> Mapper for &M {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        (**self).map_read(read)
    }

    fn map_read_metered(&self, read: &DnaSeq, metrics: &mut repute_obs::MapMetrics) -> MapOutput {
        (**self).map_read_metered(read, metrics)
    }

    fn max_locations(&self) -> usize {
        (**self).max_locations()
    }

    fn kernel_private_bytes(&self, read_len: usize) -> usize {
        (**self).kernel_private_bytes(read_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_output_default_is_empty() {
        let out = MapOutput::default();
        assert!(out.mappings.is_empty());
        assert_eq!(out.work, 0);
    }

    #[test]
    fn mapping_is_comparable() {
        let a = Mapping {
            position: 5,
            strand: Strand::Forward,
            distance: 1,
        };
        assert_eq!(a, a);
        let b = Mapping {
            strand: Strand::Reverse,
            ..a
        };
        assert_ne!(a, b);
    }
}
