//! GEM-style mapper: adaptive filtration with candidate caps.
//!
//! GEM's "fast, accurate and versatile alignment by filtration" grows
//! seeds adaptively until their frequency falls under a threshold, and
//! bounds the candidate work per seed — trading a sliver of sensitivity
//! for a mapping time that barely moves with the error budget (GEM's
//! times in Tables I/II are flat across δ). Reported output is
//! best-stratum (GEM is run as a best-mapper), which is why its §III-A
//! *all-locations* accuracy is a few percent while its §III-B *any-best*
//! accuracy sits near 90%.

use std::sync::Arc;

use repute_filter::greedy::GreedySelector;
use repute_genome::DnaSeq;

use crate::common::{IndexedReference, MapOutput, Mapper, Mapping};
use crate::engine::{strand_codes, CandidateSet, VerifyEngine, EXTEND_COST, LOCATE_COST};

/// Adaptive frequency threshold at which a seed stops growing.
const ADAPTIVE_THRESHOLD: u32 = 20;
/// Cap on located occurrences per seed — the sensitivity trade.
const PER_SEED_LOCATE_CAP: usize = 20;

/// The GEM-style adaptive-filtration best-mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{gem::GemLike, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(20_000).seed(17).build();
/// let read = reference.subseq(300..400);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let mapper = GemLike::new(indexed, 4);
/// assert!(mapper.map_read(&read).mappings.iter().any(|m| m.position == 300));
/// ```
#[derive(Debug, Clone)]
pub struct GemLike {
    indexed: Arc<IndexedReference>,
    delta: u32,
    s_min: usize,
    max_locations: usize,
}

impl GemLike {
    /// Creates the mapper with the paper's limit of 1000 locations.
    pub fn new(indexed: Arc<IndexedReference>, delta: u32) -> GemLike {
        GemLike {
            indexed,
            delta,
            s_min: 12,
            max_locations: 1000,
        }
    }

    /// Overrides the per-read location limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> GemLike {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }
}

impl Mapper for GemLike {
    fn name(&self) -> &str {
        "GEM"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let fm = self.indexed.fm();
        let engine = VerifyEngine::new(self.indexed.codes(), self.delta);
        let selector = GreedySelector::new(self.delta, self.s_min).threshold(ADAPTIVE_THRESHOLD);
        let mut out = MapOutput::default();
        let mut all: Vec<Mapping> = Vec::new();
        for (strand, codes) in strand_codes(read) {
            if codes.len() < (self.delta as usize + 1) * self.s_min {
                continue;
            }
            let (selection, stats) = selector.select(&codes, fm);
            out.work += stats.extend_ops * EXTEND_COST;
            let mut candidates = CandidateSet::new();
            for seed in &selection.seeds {
                if let Some(interval) = seed.interval {
                    // The sensitivity trade: frequent seeds are sampled.
                    let positions = fm.locate(interval, PER_SEED_LOCATE_CAP);
                    out.work += positions.len() as u64 * LOCATE_COST;
                    for pos in positions {
                        candidates.add(pos, seed.start);
                    }
                }
            }
            let merged = candidates.into_merged(CandidateSet::merge_gap(self.delta));
            out.candidates += merged.len() as u64;
            out.work += engine.verify(&codes, strand, &merged, usize::MAX, &mut all);
        }
        if let Some(best) = all.iter().map(|m| m.distance).min() {
            out.mappings = all
                .into_iter()
                .filter(|m| m.distance == best)
                .take(self.max_locations)
                .collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(40_000).seed(67).build(),
        ))
    }

    #[test]
    fn maps_most_low_error_reads() {
        let indexed = indexed();
        let mapper = GemLike::new(Arc::clone(&indexed), 4);
        let reads = ReadSimulator::new(100, 30)
            .profile(ErrorProfile::err012100())
            .seed(71)
            .simulate(indexed.seq());
        let mut found = 0usize;
        let mut eligible = 0usize;
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 2 {
                continue;
            }
            eligible += 1;
            let out = mapper.map_read(&read.seq);
            if out.mappings.iter().any(|m| {
                m.strand == origin.strand && (m.position as i64 - origin.position as i64).abs() <= 4
            }) {
                found += 1;
            }
        }
        assert!(
            found * 100 >= eligible * 80,
            "adaptive filtration too lossy: {found}/{eligible}"
        );
    }

    #[test]
    fn reports_best_stratum_only() {
        let indexed = indexed();
        let mapper = GemLike::new(Arc::clone(&indexed), 5);
        let read = indexed.seq().subseq(3000..3100);
        let out = mapper.map_read(&read);
        if let Some(best) = out.mappings.iter().map(|m| m.distance).min() {
            assert!(out.mappings.iter().all(|m| m.distance == best));
        }
    }

    #[test]
    fn work_is_nearly_flat_across_delta() {
        // The defining GEM shape in Tables I/II: times barely move with δ.
        let indexed = indexed();
        let read = indexed.seq().subseq(5000..5100);
        let w3 = GemLike::new(Arc::clone(&indexed), 3).map_read(&read).work;
        let w5 = GemLike::new(Arc::clone(&indexed), 5).map_read(&read).work;
        let ratio = w5 as f64 / w3 as f64;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "work should stay the same order across δ: {w3} vs {w5}"
        );
    }

    #[test]
    fn name_and_limit() {
        let mapper = GemLike::new(indexed(), 3).with_max_locations(7);
        assert_eq!(mapper.name(), "GEM");
        assert_eq!(mapper.max_locations(), 7);
        assert_eq!(mapper.delta(), 3);
    }
}
