//! BWA-MEM-style mapper: super-maximal exact match seeding, best-mapper.
//!
//! BWA-MEM seeds with super-maximal exact matches (SMEMs) computed on a
//! bidirectional FM-Index (Li 2012) — reproduced here with
//! [`repute_index::BiFmIndex::smems`] — and is a *best-mapper*: its
//! sensitivity and running time are governed by an internal error model
//! rather than the benchmark's δ, which is why the paper's tables show a
//! single BWA-MEM row per read length spanning all error columns.

use std::sync::Arc;

use repute_genome::DnaSeq;
use repute_index::BiFmIndex;

use crate::common::{IndexedReference, MapOutput, Mapper, Mapping};
use crate::engine::{strand_codes, CandidateSet, VerifyEngine, EXTEND_COST, LOCATE_COST};

/// Rank-query pairs per bidirectional extension step (four left
/// extensions probe the width of every symbol).
const BI_STEP_COST: u64 = 4 * EXTEND_COST;

/// Minimum SMEM length worth seeding from (BWA-MEM's default is 19).
const MIN_SEED_LEN: usize = 19;
/// Cap on located occurrences per SMEM.
const PER_SEED_LOCATE_CAP: usize = 64;

/// The BWA-MEM-style best-mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{bwamem::BwaMemLike, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(20_000).seed(13).build();
/// let read = reference.subseq(1500..1600);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let mapper = BwaMemLike::new(indexed);
/// assert!(mapper.map_read(&read).mappings.iter().any(|m| m.position == 1500));
/// ```
#[derive(Debug, Clone)]
pub struct BwaMemLike {
    indexed: Arc<IndexedReference>,
    bi: BiFmIndex,
    max_locations: usize,
}

impl BwaMemLike {
    /// Creates the mapper (no δ parameter: the error model is internal).
    /// Builds the bidirectional index SMEM seeding needs.
    pub fn new(indexed: Arc<IndexedReference>) -> BwaMemLike {
        let bi = BiFmIndex::build(indexed.seq());
        BwaMemLike {
            indexed,
            bi,
            max_locations: 1000,
        }
    }

    /// Overrides the per-read location limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> BwaMemLike {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// The internal alignment budget for a read of `n` bases (≈4% of the
    /// read, matching BWA-MEM's default scoring at these lengths).
    pub fn internal_budget(n: usize) -> u32 {
        ((n as f64 * 0.04).ceil() as u32).max(3)
    }
}

impl Mapper for BwaMemLike {
    fn name(&self) -> &str {
        "BWA-MEM"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let budget = Self::internal_budget(read.len());
        let engine = VerifyEngine::new(self.indexed.codes(), budget);
        let mut out = MapOutput::default();
        let mut all: Vec<Mapping> = Vec::new();
        for (strand, codes) in strand_codes(read) {
            let mut candidates = CandidateSet::new();
            // True super-maximal exact matches via the bidirectional index.
            let (smems, steps) = self.bi.smems(&codes, MIN_SEED_LEN);
            out.work += steps * BI_STEP_COST;
            for smem in &smems {
                let positions = self.bi.forward().locate(smem.interval, PER_SEED_LOCATE_CAP);
                out.work += positions.len() as u64 * LOCATE_COST;
                for pos in positions {
                    candidates.add(pos, smem.start);
                }
            }
            let merged = candidates.into_merged(CandidateSet::merge_gap(budget));
            out.candidates += merged.len() as u64;
            out.work += engine.verify(&codes, strand, &merged, usize::MAX, &mut all);
        }
        // Best-mapper: report every location in the best stratum.
        if let Some(best) = all.iter().map(|m| m.distance).min() {
            out.mappings = all
                .into_iter()
                .filter(|m| m.distance == best)
                .take(self.max_locations)
                .collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(40_000).seed(59).build(),
        ))
    }

    #[test]
    fn internal_budget_scales_with_read_length() {
        assert_eq!(BwaMemLike::internal_budget(100), 4);
        assert_eq!(BwaMemLike::internal_budget(150), 6);
        assert_eq!(BwaMemLike::internal_budget(36), 3);
    }

    #[test]
    fn maps_exact_reads_to_their_origin() {
        let indexed = indexed();
        let mapper = BwaMemLike::new(Arc::clone(&indexed));
        let read = indexed.seq().subseq(7000..7150);
        let out = mapper.map_read(&read);
        assert!(out.mappings.iter().any(|m| m.position == 7000));
        assert!(out.mappings.iter().all(|m| m.distance == 0));
    }

    #[test]
    fn best_mapper_sensitivity_on_low_error_reads() {
        let indexed = indexed();
        let mapper = BwaMemLike::new(Arc::clone(&indexed));
        let reads = ReadSimulator::new(100, 25)
            .profile(ErrorProfile::err012100())
            .seed(61)
            .simulate(indexed.seq());
        let mut found = 0usize;
        let mut eligible = 0usize;
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 2 {
                continue;
            }
            eligible += 1;
            let out = mapper.map_read(&read.seq);
            if out.mappings.iter().any(|m| {
                m.strand == origin.strand && (m.position as i64 - origin.position as i64).abs() <= 5
            }) {
                found += 1;
            }
        }
        assert!(
            found * 100 >= eligible * 90,
            "sensitivity too low: {found}/{eligible}"
        );
    }

    #[test]
    fn work_is_independent_of_external_delta() {
        // There is no δ knob at all — the API enforces the paper's
        // "single row per read length" behaviour.
        let indexed = indexed();
        let mapper = BwaMemLike::new(Arc::clone(&indexed));
        let read = indexed.seq().subseq(100..250);
        let a = mapper.map_read(&read);
        let b = mapper.map_read(&read);
        assert_eq!(a.work, b.work);
        assert_eq!(mapper.name(), "BWA-MEM");
    }
}
