//! Hobbes3-style mapper: optimally-placed q-gram signatures.
//!
//! Hobbes3 "dynamically generat\[es\] variable-length signatures" from a
//! hash index (§II-B groups it with RazerS3 as hashing-based). The
//! strategy reproduced here: look up the occurrence count of *every*
//! q-gram of the read in one pass over the hash index, then choose the
//! δ+1 non-overlapping q-grams with the minimal total count by a small
//! dynamic program — globally optimal placement of fixed-length seeds, in
//! contrast to REPUTE's globally optimal *variable-length* partition.

use std::sync::Arc;

use repute_genome::DnaSeq;

use crate::common::{IndexedReference, MapOutput, Mapper};
use crate::engine::{strand_codes, CandidateSet, VerifyEngine};

/// The Hobbes3-style all-mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{hobbes3::Hobbes3Like, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(20_000).seed(5).build();
/// let read = reference.subseq(700..800);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let mapper = Hobbes3Like::new(indexed, 4);
/// assert!(mapper.map_read(&read).mappings.iter().any(|m| m.position == 700));
/// ```
#[derive(Debug, Clone)]
pub struct Hobbes3Like {
    indexed: Arc<IndexedReference>,
    delta: u32,
    max_locations: usize,
}

impl Hobbes3Like {
    /// Creates the mapper with the paper's limit of 1000 locations per
    /// read.
    pub fn new(indexed: Arc<IndexedReference>, delta: u32) -> Hobbes3Like {
        Hobbes3Like {
            indexed,
            delta,
            max_locations: 1000,
        }
    }

    /// Overrides the per-read location limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> Hobbes3Like {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Chooses δ+1 non-overlapping q-gram start positions minimising the
    /// total occurrence count. Returns `(positions, dp_cells)`.
    fn choose_signatures(&self, counts: &[u32]) -> (Vec<usize>, u64) {
        let q = self.indexed.qgram().q();
        let parts = self.delta as usize + 1;
        let n_pos = counts.len();
        debug_assert!(n_pos > (parts - 1) * q, "read too short for signatures");
        const INF: u64 = u64::MAX / 4;
        // best[j] = minimal total using `t+1` signatures, last at position j.
        let mut best: Vec<u64> = counts.iter().map(|&c| u64::from(c)).collect();
        let mut choice: Vec<Vec<u32>> = vec![vec![0; n_pos]];
        let mut dp_cells = n_pos as u64;
        for _t in 1..parts {
            let mut next = vec![INF; n_pos];
            let mut pick = vec![0u32; n_pos];
            // prefix_min[j] = (value, argmin) of best[0..=j].
            let mut run_min = INF;
            let mut run_arg = 0u32;
            let mut prefix: Vec<(u64, u32)> = Vec::with_capacity(n_pos);
            for (j, &b) in best.iter().enumerate() {
                if b < run_min {
                    run_min = b;
                    run_arg = j as u32;
                }
                prefix.push((run_min, run_arg));
            }
            for j in q..n_pos {
                let (prev, arg) = prefix[j - q];
                if prev < INF {
                    next[j] = prev + u64::from(counts[j]);
                    pick[j] = arg;
                }
                dp_cells += 1;
            }
            choice.push(pick);
            best = next;
        }
        // Backtrack from the best final position.
        let (mut j, _) = best
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("non-empty positions");
        let mut positions = vec![j];
        for t in (1..parts).rev() {
            j = choice[t][j] as usize;
            positions.push(j);
        }
        positions.reverse();
        (positions, dp_cells)
    }
}

impl Mapper for Hobbes3Like {
    fn name(&self) -> &str {
        "Hobbes3"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let qgram = self.indexed.qgram();
        let q = qgram.q();
        let engine = VerifyEngine::new(self.indexed.codes(), self.delta);
        let mut out = MapOutput::default();
        for (strand, codes) in strand_codes(read) {
            if codes.len() < (self.delta as usize + 1) * q {
                continue; // read too short for this δ — report nothing
            }
            // One count lookup per read position (one hash-probe each).
            let counts: Vec<u32> = (0..=codes.len() - q)
                .map(|i| qgram.count(&codes[i..i + q]))
                .collect();
            out.work += counts.len() as u64 * 4;
            let (positions, dp_cells) = self.choose_signatures(&counts);
            out.work += dp_cells * crate::engine::DP_CELL_COST;
            let mut candidates = CandidateSet::new();
            for &pos in &positions {
                let gram = &codes[pos..pos + q];
                for &ref_pos in qgram.positions(gram) {
                    candidates.add(ref_pos, pos);
                }
                out.work += u64::from(qgram.count(gram)); // position-list scan
            }
            let merged = candidates.into_merged(CandidateSet::merge_gap(self.delta));
            out.candidates += merged.len() as u64;
            out.work += engine.verify(
                &codes,
                strand,
                &merged,
                self.max_locations,
                &mut out.mappings,
            );
            if out.mappings.len() >= self.max_locations {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(50_000).seed(37).build(),
        ))
    }

    #[test]
    fn signatures_are_non_overlapping_and_optimal_for_flat_counts() {
        let indexed = indexed();
        let mapper = Hobbes3Like::new(indexed, 3);
        let counts = vec![5u32; 91]; // flat: any valid placement totals 20
        let (positions, _) = mapper.choose_signatures(&counts);
        assert_eq!(positions.len(), 4);
        for w in positions.windows(2) {
            assert!(w[1] >= w[0] + 10, "overlap in {positions:?}");
        }
    }

    #[test]
    fn signatures_prefer_rare_grams() {
        let indexed = indexed();
        let mapper = Hobbes3Like::new(indexed, 1);
        let mut counts = vec![100u32; 91];
        counts[7] = 1;
        counts[50] = 2;
        let (positions, _) = mapper.choose_signatures(&counts);
        assert_eq!(positions, vec![7, 50]);
    }

    #[test]
    fn maps_simulated_reads_with_errors() {
        let indexed = indexed();
        let mapper = Hobbes3Like::new(Arc::clone(&indexed), 5);
        let reads = ReadSimulator::new(100, 30)
            .profile(ErrorProfile::err012100())
            .seed(41)
            .simulate(indexed.seq());
        let mut found = 0usize;
        let mut eligible = 0usize;
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 5 {
                continue;
            }
            eligible += 1;
            let out = mapper.map_read(&read.seq);
            if out.mappings.iter().any(|m| {
                m.strand == origin.strand && (m.position as i64 - origin.position as i64).abs() <= 5
            }) {
                found += 1;
            }
        }
        assert_eq!(found, eligible, "hobbes3-like should be fully sensitive");
    }

    #[test]
    fn short_read_yields_empty_output() {
        let indexed = indexed();
        let mapper = Hobbes3Like::new(indexed, 7); // needs 80 bases of q-grams
        let read: DnaSeq = "ACGTACGTACGTACGT".parse().unwrap();
        let out = mapper.map_read(&read);
        assert!(out.mappings.is_empty());
    }

    #[test]
    fn name_and_limit() {
        let mapper = Hobbes3Like::new(indexed(), 3).with_max_locations(10);
        assert_eq!(mapper.name(), "Hobbes3");
        assert_eq!(mapper.max_locations(), 10);
        assert_eq!(mapper.delta(), 3);
    }
}
