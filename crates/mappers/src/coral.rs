//! CORAL-style mapper: serial heuristic k-mer selection.
//!
//! CORAL is REPUTE's direct predecessor — the first OpenCL standalone read
//! mapper \[8\] — and the paper's closest comparison point. Its filtration
//! "uses a heuristic based variable length k-mer selection criteria" and
//! "examines k-mers serially" (§I). This reproduction drives the shared
//! verification engine from the serial greedy selector of
//! [`repute_filter::greedy`]: each k-mer grows until its frequency drops
//! under a threshold, committed before the next k-mer is examined. The
//! locally-greedy choice yields more candidate locations than REPUTE's
//! global DP — increasingly so at high error counts and long reads, which
//! is exactly where Table I/II show REPUTE pulling ahead of CORAL.

use std::sync::Arc;

use repute_filter::segmented::SegmentedSelector;
use repute_genome::DnaSeq;

use crate::common::{IndexedReference, MapOutput, Mapper};
use crate::engine::{strand_codes, CandidateSet, VerifyEngine, EXTEND_COST, LOCATE_COST};

/// Cap on located occurrences per seed (pathological repeats only).
const PER_SEED_LOCATE_CAP: usize = 20_000;

/// The CORAL-style all-mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{coral::CoralLike, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(20_000).seed(19).build();
/// let read = reference.subseq(800..900);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let mapper = CoralLike::new(indexed, 4);
/// assert!(mapper.map_read(&read).mappings.iter().any(|m| m.position == 800));
/// ```
#[derive(Debug, Clone)]
pub struct CoralLike {
    indexed: Arc<IndexedReference>,
    delta: u32,
    s_min: usize,
    threshold: u32,
    max_locations: usize,
}

impl CoralLike {
    /// Frequency threshold of the serial heuristic. CORAL settles for the
    /// first k-mer whose count drops under the threshold — a coarse
    /// criterion (the paper's point: it examines k-mers serially, within
    /// fixed read sections, without the DP's global view).
    pub const DEFAULT_THRESHOLD: u32 = 32;

    /// Creates the mapper with the paper's limit of 1000 locations.
    pub fn new(indexed: Arc<IndexedReference>, delta: u32) -> CoralLike {
        CoralLike {
            indexed,
            delta,
            s_min: 12,
            threshold: Self::DEFAULT_THRESHOLD,
            max_locations: 1000,
        }
    }

    /// Overrides the per-read location limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> CoralLike {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// Overrides the minimum k-mer length.
    ///
    /// # Panics
    ///
    /// Panics if `s_min == 0`.
    pub fn with_s_min(mut self, s_min: usize) -> CoralLike {
        assert!(s_min > 0, "minimum seed length must be positive");
        self.s_min = s_min;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }
}

impl Mapper for CoralLike {
    fn name(&self) -> &str {
        "CORAL"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let fm = self.indexed.fm();
        let engine = VerifyEngine::new(self.indexed.codes(), self.delta);
        let selector = SegmentedSelector::new(self.delta, self.s_min).threshold(self.threshold);
        let mut out = MapOutput::default();
        for (strand, codes) in strand_codes(read) {
            if codes.len() < (self.delta as usize + 1) * self.s_min {
                continue;
            }
            let (selection, stats) = selector.select(&codes, fm);
            out.work += stats.extend_ops * EXTEND_COST;
            let mut candidates = CandidateSet::new();
            for seed in &selection.seeds {
                if let Some(interval) = seed.interval {
                    let positions = fm.locate(interval, PER_SEED_LOCATE_CAP);
                    out.work += positions.len() as u64 * LOCATE_COST;
                    for pos in positions {
                        candidates.add(pos, seed.anchor);
                    }
                }
            }
            let merged = candidates.into_merged(CandidateSet::merge_gap(self.delta));
            out.candidates += merged.len() as u64;
            out.work += engine.verify(
                &codes,
                strand,
                &merged,
                self.max_locations,
                &mut out.mappings,
            );
            if out.mappings.len() >= self.max_locations {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(50_000).seed(73).build(),
        ))
    }

    #[test]
    fn full_sensitivity_on_simulated_reads() {
        let indexed = indexed();
        let mapper = CoralLike::new(Arc::clone(&indexed), 5);
        let reads = ReadSimulator::new(100, 40)
            .profile(ErrorProfile::err012100())
            .seed(79)
            .simulate(indexed.seq());
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 5 {
                continue;
            }
            let out = mapper.map_read(&read.seq);
            assert!(
                out.mappings.iter().any(|m| {
                    m.strand == origin.strand
                        && (m.position as i64 - origin.position as i64).abs() <= 5
                }),
                "read {} not found",
                read.id
            );
        }
    }

    #[test]
    fn longer_reads_work() {
        let indexed = indexed();
        let mapper = CoralLike::new(Arc::clone(&indexed), 7).with_s_min(15);
        let read = indexed.seq().subseq(9000..9150);
        let out = mapper.map_read(&read);
        assert!(out
            .mappings
            .iter()
            .any(|m| m.position == 9000 && m.distance == 0));
    }

    #[test]
    fn respects_location_limit() {
        let indexed = indexed();
        let mapper = CoralLike::new(indexed, 2).with_max_locations(5);
        let read: DnaSeq = "ACACACACACACACACACACACACACACACACACAC".parse().unwrap();
        let out = mapper.map_read(&read);
        assert!(out.mappings.len() <= 5);
    }

    #[test]
    fn name_and_accessors() {
        let mapper = CoralLike::new(indexed(), 3);
        assert_eq!(mapper.name(), "CORAL");
        assert_eq!(mapper.max_locations(), 1000);
        assert_eq!(mapper.delta(), 3);
    }
}
