//! Yara-style mapper: FM-index approximate seeds, best-stratum reporting.
//!
//! Yara is an FM-index *best-mapper* (§III-A configures it "to report all
//! locations" of the best stratum). The strategy reproduced here follows
//! Yara's approximate seeding scheme: split the read into
//! ⌈(δ+1)/2⌉ pieces and search each piece in the FM-index with **up to one
//! mismatch** (backtracking over the substituted base), which by the
//! generalised pigeonhole argument covers δ errors. One-mismatch
//! backtracking costs O(k²) extensions per seed — the reason Yara's
//! mapping time balloons at high error counts and long reads (321 s at
//! n=150, δ=7 in Table I). Only mappings in the best stratum (minimum
//! distance) are reported, which is why Yara scores a few percent under
//! the *all-locations* accuracy of §III-A while scoring ≈100% under the
//! *any-best* accuracy of §III-B.

use std::sync::Arc;

use repute_filter::pigeonhole::uniform_partition;
use repute_genome::DnaSeq;
use repute_index::{FmIndex, Interval};

use crate::common::{IndexedReference, MapOutput, Mapper, Mapping};
use crate::engine::{strand_codes, CandidateSet, VerifyEngine, EXTEND_COST, LOCATE_COST};

/// Cap on located occurrences per seed interval.
const PER_INTERVAL_LOCATE_CAP: usize = 2_000;

/// The Yara-style best-mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{yara::YaraLike, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(20_000).seed(11).build();
/// let read = reference.subseq(900..1000);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let mapper = YaraLike::new(indexed, 3);
/// let out = mapper.map_read(&read);
/// assert!(out.mappings.iter().all(|m| m.distance == 0)); // best stratum
/// ```
#[derive(Debug, Clone)]
pub struct YaraLike {
    indexed: Arc<IndexedReference>,
    delta: u32,
    max_locations: usize,
}

impl YaraLike {
    /// Creates the mapper with the paper's limit of 1000 locations.
    pub fn new(indexed: Arc<IndexedReference>, delta: u32) -> YaraLike {
        YaraLike {
            indexed,
            delta,
            max_locations: 1000,
        }
    }

    /// Overrides the per-read location limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> YaraLike {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Searches `seed` with up to one mismatch, returning all match
    /// intervals and the FM extensions spent.
    fn one_mismatch_intervals(fm: &FmIndex, seed: &[u8]) -> (Vec<Interval>, u64) {
        let k = seed.len();
        let mut ops = 0u64;
        // suffix_iv[i] = interval of seed[i..] (suffix_iv[k] = full range).
        let mut suffix_iv: Vec<Option<Interval>> = vec![None; k + 1];
        suffix_iv[k] = Some(fm.full_interval());
        for i in (0..k).rev() {
            match suffix_iv[i + 1] {
                Some(iv) if !iv.is_empty() => {
                    let next = fm.extend_left(iv, seed[i]);
                    ops += 1;
                    suffix_iv[i] = (!next.is_empty()).then_some(next);
                }
                _ => break,
            }
        }
        let mut intervals = Vec::new();
        if let Some(exact) = suffix_iv[0] {
            intervals.push(exact);
        }
        // One substitution at position i: exact suffix seed[i+1..], a
        // substituted base, then exact prefix seed[..i].
        for i in (0..k).rev() {
            let Some(tail) = suffix_iv[i + 1] else {
                continue;
            };
            for b in 0..4u8 {
                if b == seed[i] {
                    continue;
                }
                let mut iv = fm.extend_left(tail, b);
                ops += 1;
                if iv.is_empty() {
                    continue;
                }
                let mut alive = true;
                for j in (0..i).rev() {
                    iv = fm.extend_left(iv, seed[j]);
                    ops += 1;
                    if iv.is_empty() {
                        alive = false;
                        break;
                    }
                }
                if alive {
                    intervals.push(iv);
                }
            }
        }
        (intervals, ops)
    }
}

impl Mapper for YaraLike {
    fn name(&self) -> &str {
        "Yara"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let fm = self.indexed.fm();
        let engine = VerifyEngine::new(self.indexed.codes(), self.delta);
        // ⌈(δ+1)/2⌉ pieces, each allowed one mismatch, cover δ errors.
        let pieces = (self.delta as usize + 2) / 2;
        let mut out = MapOutput::default();
        let mut all: Vec<Mapping> = Vec::new();
        for (strand, codes) in strand_codes(read) {
            if codes.len() < pieces {
                continue;
            }
            let mut candidates = CandidateSet::new();
            for (start, len) in uniform_partition(codes.len(), pieces) {
                let seed = &codes[start..start + len];
                let (intervals, ops) = Self::one_mismatch_intervals(fm, seed);
                out.work += ops * EXTEND_COST;
                for iv in intervals {
                    let positions = fm.locate(iv, PER_INTERVAL_LOCATE_CAP);
                    out.work += positions.len() as u64 * LOCATE_COST;
                    for pos in positions {
                        candidates.add(pos, start);
                    }
                }
            }
            let merged = candidates.into_merged(CandidateSet::merge_gap(self.delta));
            out.candidates += merged.len() as u64;
            out.work += engine.verify(&codes, strand, &merged, usize::MAX, &mut all);
        }
        // Best-stratum filter: report only minimum-distance mappings.
        if let Some(best) = all.iter().map(|m| m.distance).min() {
            out.mappings = all
                .into_iter()
                .filter(|m| m.distance == best)
                .take(self.max_locations)
                .collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(40_000).seed(43).build(),
        ))
    }

    #[test]
    fn one_mismatch_search_finds_exact_and_substituted() {
        let indexed = indexed();
        let fm = indexed.fm();
        let codes = indexed.codes();
        let seed = &codes[1000..1025];
        let (intervals, ops) = YaraLike::one_mismatch_intervals(fm, seed);
        assert!(ops > 0);
        let mut positions: Vec<u32> = intervals
            .iter()
            .flat_map(|&iv| fm.locate(iv, usize::MAX))
            .collect();
        positions.sort_unstable();
        assert!(positions.contains(&1000), "exact occurrence found");
        // Every reported position matches the seed with ≤1 mismatch.
        for &p in &positions {
            let window = &codes[p as usize..p as usize + seed.len()];
            let mismatches = window.iter().zip(seed).filter(|(a, b)| a != b).count();
            assert!(mismatches <= 1, "position {p} has {mismatches} mismatches");
        }
    }

    #[test]
    fn reports_only_best_stratum() {
        let indexed = indexed();
        let mapper = YaraLike::new(Arc::clone(&indexed), 5);
        let reads = ReadSimulator::new(100, 20)
            .profile(ErrorProfile::err012100())
            .seed(47)
            .simulate(indexed.seq());
        for read in &reads {
            let out = mapper.map_read(&read.seq);
            if let Some(best) = out.mappings.iter().map(|m| m.distance).min() {
                assert!(out.mappings.iter().all(|m| m.distance == best));
            }
        }
    }

    #[test]
    fn finds_read_origins_any_best() {
        let indexed = indexed();
        let mapper = YaraLike::new(Arc::clone(&indexed), 5);
        let reads = ReadSimulator::new(100, 25)
            .profile(ErrorProfile::err012100())
            .seed(53)
            .simulate(indexed.seq());
        let mut found = 0usize;
        let mut eligible = 0usize;
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 2 {
                continue; // deep-error reads may have a better mapping elsewhere
            }
            eligible += 1;
            let out = mapper.map_read(&read.seq);
            if out.mappings.iter().any(|m| {
                m.strand == origin.strand && (m.position as i64 - origin.position as i64).abs() <= 5
            }) {
                found += 1;
            }
        }
        assert!(
            found * 100 >= eligible * 95,
            "any-best sensitivity too low: {found}/{eligible}"
        );
    }

    #[test]
    fn work_grows_with_delta() {
        let indexed = indexed();
        let read = indexed.seq().subseq(2000..2150);
        let low = YaraLike::new(Arc::clone(&indexed), 3).map_read(&read);
        let high = YaraLike::new(Arc::clone(&indexed), 7).map_read(&read);
        assert!(
            high.work > low.work,
            "more pieces must cost more: {} vs {}",
            high.work,
            low.work
        );
    }
}
