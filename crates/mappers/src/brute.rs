//! A brute-force oracle mapper: ground truth, no index, no filtration.
//!
//! Runs the full semi-global DP across the *entire* reference for every
//! read and strand — O(reference × read) per read, thousands of times
//! slower than any real mapper, and exactly as sensitive as edit distance
//! allows. It exists for testing and benchmarking: every other mapper's
//! output must be a subset of (and, for the full-sensitivity mappers,
//! equal to) what this one reports. The differential test suite
//! (`tests/differential.rs`) is built on the same scan.

use std::sync::Arc;

use repute_genome::{DnaSeq, Strand};

use crate::common::{IndexedReference, MapOutput, Mapper, Mapping};
use crate::engine::strand_codes;

/// The exhaustive-scan oracle mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::{brute::BruteForceMapper, IndexedReference, Mapper};
///
/// let reference = ReferenceBuilder::new(5_000).seed(3).build();
/// let read = reference.subseq(1_000..1_060);
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let oracle = BruteForceMapper::new(indexed, 2);
/// assert!(oracle
///     .map_read(&read)
///     .mappings
///     .iter()
///     .any(|m| m.position.abs_diff(1_000) <= 2 && m.distance == 0));
/// ```
#[derive(Debug, Clone)]
pub struct BruteForceMapper {
    indexed: Arc<IndexedReference>,
    delta: u32,
    max_locations: usize,
}

impl BruteForceMapper {
    /// Creates the oracle with an unbounded location limit.
    pub fn new(indexed: Arc<IndexedReference>, delta: u32) -> BruteForceMapper {
        BruteForceMapper {
            indexed,
            delta,
            max_locations: usize::MAX,
        }
    }

    /// Restricts the per-read location count (rarely wanted for an
    /// oracle).
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> BruteForceMapper {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Scans one strand, appending cluster-representative hits.
    fn scan(&self, codes: &[u8], strand: Strand, out: &mut Vec<Mapping>) -> u64 {
        let reference = self.indexed.codes();
        let m = codes.len();
        let mut prev: Vec<u32> = (0..=m as u32).collect();
        let mut cur = vec![0u32; m + 1];
        // Track the best (end, distance) within the current qualifying run.
        let mut run_best: Option<(usize, u32)> = None;
        // Output *hit clustering*, not candidate merging: qualifying DP
        // end columns within 2δ+2 of each other describe the same
        // alignment site (one site's end columns span ≤ 2δ, plus one
        // column of slack on each side), so they collapse into a single
        // reported hit. Distinct from `CandidateSet::merge_gap`, which
        // dedupes seed diagonals *before* verification.
        let cluster_gap = 2 * self.delta as usize + 2;
        let mut work = 0u64;
        for j in 1..=reference.len() {
            cur[0] = 0;
            for i in 1..=m {
                let sub = prev[i - 1] + u32::from(codes[i - 1] != reference[j - 1]);
                cur[i] = sub.min(prev[i] + 1).min(cur[i - 1] + 1);
            }
            work += m as u64 / 16 + 1; // charged per column, scaled like the word-parallel kernels
            let d = cur[m];
            if d <= self.delta {
                run_best = Some(match run_best {
                    Some((end, best)) if j - end <= cluster_gap => (j, best.min(d)),
                    Some((end, best)) => {
                        // Previous run closed: emit it.
                        out.push(Mapping {
                            position: (end.saturating_sub(m)) as u32,
                            strand,
                            distance: best,
                        });
                        let _ = (end, best);
                        (j, d)
                    }
                    None => (j, d),
                });
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        if let Some((end, best)) = run_best {
            out.push(Mapping {
                position: (end.saturating_sub(m)) as u32,
                strand,
                distance: best,
            });
        }
        work
    }
}

impl Mapper for BruteForceMapper {
    fn name(&self) -> &str {
        "BruteForce"
    }

    fn max_locations(&self) -> usize {
        self.max_locations
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        let mut out = MapOutput::default();
        for (strand, codes) in strand_codes(read) {
            out.work += self.scan(&codes, strand, &mut out.mappings);
        }
        out.candidates = out.mappings.len() as u64;
        out.mappings.truncate(self.max_locations);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::razers3::Razers3Like;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(20_000).seed(977).build(),
        ))
    }

    #[test]
    fn finds_planted_reads_with_exact_distance() {
        let indexed = indexed();
        let oracle = BruteForceMapper::new(Arc::clone(&indexed), 3);
        let reads = ReadSimulator::new(80, 10)
            .profile(ErrorProfile::err012100())
            .seed(978)
            .simulate(indexed.seq());
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 3 {
                continue;
            }
            let out = oracle.map_read(&read.seq);
            let hit = out
                .mappings
                .iter()
                .find(|m| {
                    m.strand == origin.strand
                        && (m.position as i64 - origin.position as i64).abs() <= 8
                })
                .unwrap_or_else(|| panic!("oracle missed read {}", read.id));
            assert!(hit.distance <= origin.edits);
        }
    }

    #[test]
    fn full_sensitivity_mapper_is_a_subset_of_the_oracle() {
        let indexed = indexed();
        let delta = 3u32;
        let oracle = BruteForceMapper::new(Arc::clone(&indexed), delta);
        let razers = Razers3Like::new(Arc::clone(&indexed), delta).with_max_locations(100_000);
        let reads = ReadSimulator::new(80, 8).seed(979).simulate(indexed.seq());
        for read in &reads {
            let truth = oracle.map_read(&read.seq).mappings;
            for m in razers.map_read(&read.seq).mappings {
                assert!(
                    truth.iter().any(|t| {
                        t.strand == m.strand && t.position.abs_diff(m.position) <= 2 * delta + 2
                    }),
                    "razers hit {m:?} unknown to the oracle"
                );
            }
        }
    }

    #[test]
    fn respects_limit_and_reports_work() {
        let indexed = indexed();
        let oracle = BruteForceMapper::new(Arc::clone(&indexed), 2).with_max_locations(1);
        let read = indexed.seq().subseq(5_000..5_080);
        let out = oracle.map_read(&read);
        assert!(out.mappings.len() <= 1);
        assert!(out.work > 0);
        assert_eq!(oracle.name(), "BruteForce");
        assert_eq!(oracle.delta(), 2);
    }
}
