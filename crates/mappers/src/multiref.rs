//! Multi-sequence (multi-chromosome) references.
//!
//! The paper evaluates on a single chromosome, but a mapper a downstream
//! user adopts must handle a whole-genome FASTA. [`ReferenceSet`]
//! concatenates the records into one indexed sequence, translates global
//! mapping positions back to `(record, local position)`, and rejects
//! alignments that straddle a record boundary (an artefact of
//! concatenation, not a real mapping location).

use std::sync::Arc;

use repute_genome::{DnaSeq, Strand};

use crate::common::{IndexedReference, Mapping};

/// A mapping resolved against a named record of a [`ReferenceSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedMapping {
    /// Index of the record within the set.
    pub record: usize,
    /// 0-based position within that record.
    pub position: u32,
    /// Strand of the alignment.
    pub strand: Strand,
    /// Edit distance of the alignment.
    pub distance: u32,
}

/// A set of named reference sequences indexed as one concatenation.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::multiref::ReferenceSet;
///
/// let chr_a = ReferenceBuilder::new(30_000).seed(1).build();
/// let chr_b = ReferenceBuilder::new(20_000).seed(2).build();
/// let set = ReferenceSet::build(vec![
///     ("chrA".to_string(), chr_a),
///     ("chrB".to_string(), chr_b),
/// ]);
/// assert_eq!(set.records().len(), 2);
/// // Global position 30_005 lies 5 bases into chrB.
/// let (record, local) = set.resolve(30_005).expect("in range");
/// assert_eq!(set.records()[record].0, "chrB");
/// assert_eq!(local, 5);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceSet {
    indexed: Arc<IndexedReference>,
    /// `(name, length)` per record, in input order.
    records: Vec<(String, usize)>,
    /// Start offset of each record in the concatenation, plus the total
    /// length as a final sentinel.
    offsets: Vec<u32>,
}

impl ReferenceSet {
    /// Concatenates and indexes the records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty, any sequence is empty, or the total
    /// length exceeds `u32` positions.
    pub fn build(records: Vec<(String, DnaSeq)>) -> ReferenceSet {
        assert!(
            !records.is_empty(),
            "reference set needs at least one record"
        );
        let total: usize = records.iter().map(|(_, s)| s.len()).sum();
        assert!(
            total < u32::MAX as usize,
            "reference set exceeds u32 positions"
        );
        let mut concat = DnaSeq::with_capacity(total);
        let mut offsets = Vec::with_capacity(records.len() + 1);
        let mut meta = Vec::with_capacity(records.len());
        for (name, seq) in records {
            assert!(!seq.is_empty(), "record {name:?} has an empty sequence");
            offsets.push(concat.len() as u32);
            meta.push((name, seq.len()));
            concat.extend(seq.iter());
        }
        offsets.push(concat.len() as u32);
        ReferenceSet {
            indexed: Arc::new(IndexedReference::build(concat)),
            records: meta,
            offsets,
        }
    }

    /// The shared index over the concatenation — hand this to any mapper.
    pub fn indexed(&self) -> &Arc<IndexedReference> {
        &self.indexed
    }

    /// `(name, length)` of every record, in input order.
    pub fn records(&self) -> &[(String, usize)] {
        &self.records
    }

    /// Translates a global position into `(record index, local position)`,
    /// or `None` past the end of the concatenation.
    pub fn resolve(&self, position: u32) -> Option<(usize, u32)> {
        if position >= *self.offsets.last().expect("non-empty offsets") {
            return None;
        }
        // partition_point gives the first offset > position.
        let record = self.offsets.partition_point(|&o| o <= position) - 1;
        Some((record, position - self.offsets[record]))
    }

    /// Returns `true` if an alignment starting at `position` spanning
    /// `len` bases would cross a record boundary (or run past the end).
    pub fn crosses_boundary(&self, position: u32, len: usize) -> bool {
        match self.resolve(position) {
            Some((record, local)) => local as usize + len > self.records[record].1,
            None => true,
        }
    }

    /// Resolves raw concatenation-space mappings of a read of `read_len`
    /// bases, dropping boundary-straddling artefacts.
    pub fn resolve_mappings(&self, read_len: usize, mappings: &[Mapping]) -> Vec<ResolvedMapping> {
        mappings
            .iter()
            .filter_map(|m| {
                // The aligned region spans at most read_len + distance
                // reference bases.
                let span = read_len + m.distance as usize;
                if self.crosses_boundary(m.position, span.min(read_len)) {
                    return None;
                }
                let (record, position) = self.resolve(m.position)?;
                Some(ResolvedMapping {
                    record,
                    position,
                    strand: m.strand,
                    distance: m.distance,
                })
            })
            .collect()
    }
}

impl ReferenceSet {
    /// Serialises the set: record table plus the shared index
    /// ([`IndexedReference::write_to`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out` (a `&mut` writer is accepted).
    pub fn write_to<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        out.write_all(b"RPST")?;
        out.write_all(&1u16.to_le_bytes())?;
        out.write_all(&(self.records.len() as u32).to_le_bytes())?;
        for (name, len) in &self.records {
            let bytes = name.as_bytes();
            out.write_all(&(bytes.len() as u32).to_le_bytes())?;
            out.write_all(bytes)?;
            out.write_all(&(*len as u64).to_le_bytes())?;
        }
        self.indexed.write_to(&mut out)
    }

    /// Deserialises a set written by [`ReferenceSet::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic,
    /// version, or payload mismatch, and propagates I/O errors.
    pub fn read_from<R: std::io::Read>(mut input: R) -> std::io::Result<ReferenceSet> {
        fn bad(msg: &str) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
        }
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if &magic != b"RPST" {
            return Err(bad("not a reference-set stream (bad magic)"));
        }
        let mut b2 = [0u8; 2];
        input.read_exact(&mut b2)?;
        if u16::from_le_bytes(b2) != 1 {
            return Err(bad("unsupported reference-set format version"));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        input.read_exact(&mut b4)?;
        let count = u32::from_le_bytes(b4) as usize;
        if count == 0 {
            return Err(bad("reference set has no records"));
        }
        let mut records = Vec::with_capacity(count);
        let mut offsets = Vec::with_capacity(count + 1);
        let mut cursor = 0u64;
        for _ in 0..count {
            input.read_exact(&mut b4)?;
            let name_len = u32::from_le_bytes(b4) as usize;
            let mut name = vec![0u8; name_len];
            input.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("record name is not UTF-8"))?;
            input.read_exact(&mut b8)?;
            let len = u64::from_le_bytes(b8) as usize;
            offsets.push(cursor as u32);
            cursor += len as u64;
            records.push((name, len));
        }
        offsets.push(cursor as u32);
        let indexed = IndexedReference::read_from(&mut input)?;
        if indexed.len() as u64 != cursor {
            return Err(bad("record table does not match the indexed sequence"));
        }
        Ok(ReferenceSet {
            indexed: Arc::new(indexed),
            records,
            offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // The core crate depends on this one, so REPUTE itself cannot appear
    // here; the RazerS3-style mapper exercises the same flow.
    use crate::razers3::Razers3Like;
    use crate::Mapper;
    use repute_genome::synth::ReferenceBuilder;

    fn set() -> ReferenceSet {
        ReferenceSet::build(vec![
            (
                "chrA".into(),
                ReferenceBuilder::new(30_000).seed(301).build(),
            ),
            (
                "chrB".into(),
                ReferenceBuilder::new(20_000).seed(302).build(),
            ),
            (
                "chrC".into(),
                ReferenceBuilder::new(10_000).seed(303).build(),
            ),
        ])
    }

    #[test]
    fn resolve_maps_global_to_local() {
        let set = set();
        assert_eq!(set.resolve(0), Some((0, 0)));
        assert_eq!(set.resolve(29_999), Some((0, 29_999)));
        assert_eq!(set.resolve(30_000), Some((1, 0)));
        assert_eq!(set.resolve(50_000), Some((2, 0)));
        assert_eq!(set.resolve(59_999), Some((2, 9_999)));
        assert_eq!(set.resolve(60_000), None);
    }

    #[test]
    fn boundary_detection() {
        let set = set();
        assert!(!set.crosses_boundary(29_900, 100));
        assert!(set.crosses_boundary(29_901, 100));
        assert!(set.crosses_boundary(59_950, 100));
        assert!(set.crosses_boundary(60_000, 1));
    }

    #[test]
    fn reads_map_to_their_own_chromosome() {
        let set = set();
        let mapper = Razers3Like::new(Arc::clone(set.indexed()), 3);
        // A read from 100 bases into chrB.
        let read = set.indexed().seq().subseq(30_100..30_200);
        let out = mapper.map_read(&read);
        let resolved = set.resolve_mappings(100, &out.mappings);
        let hit = resolved
            .iter()
            .find(|r| r.record == 1 && r.position.abs_diff(100) <= 6)
            .expect("read found on chrB");
        assert_eq!(set.records()[hit.record].0, "chrB");
    }

    #[test]
    fn junction_artefacts_are_filtered() {
        let set = set();
        // A "read" spanning the chrA/chrB junction exists in the
        // concatenation but is not a real genomic sequence.
        let junction_read = set.indexed().seq().subseq(29_950..30_050);
        let mapper = Razers3Like::new(Arc::clone(set.indexed()), 0);
        let out = mapper.map_read(&junction_read);
        let resolved = set.resolve_mappings(100, &out.mappings);
        assert!(
            resolved
                .iter()
                .all(|r| !set.crosses_boundary(set_global(&set, r), 100)),
            "boundary-straddling mapping survived: {resolved:?}"
        );
        fn set_global(set: &ReferenceSet, r: &ResolvedMapping) -> u32 {
            let mut off = 0u32;
            for (i, (_, len)) in set.records().iter().enumerate() {
                if i == r.record {
                    break;
                }
                off += *len as u32;
            }
            off + r.position
        }
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_set_rejected() {
        let _ = ReferenceSet::build(vec![]);
    }

    #[test]
    fn serialisation_round_trips() {
        let set = ReferenceSet::build(vec![
            ("c1".into(), ReferenceBuilder::new(8_000).seed(401).build()),
            ("c2".into(), ReferenceBuilder::new(5_000).seed(402).build()),
        ]);
        let mut buf = Vec::new();
        set.write_to(&mut buf).unwrap();
        let back = ReferenceSet::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.records(), set.records());
        assert_eq!(back.resolve(8_003), Some((1, 3)));
        // The restored index answers like the original.
        let mapper = Razers3Like::new(Arc::clone(back.indexed()), 2);
        let read = set.indexed().seq().subseq(2_000..2_100);
        let out = mapper.map_read(&read);
        assert!(out.mappings.iter().any(|m| m.position.abs_diff(2_000) <= 5));
        // Corruption is rejected.
        buf[0] = b'Z';
        assert!(ReferenceSet::read_from(buf.as_slice()).is_err());
    }
}
