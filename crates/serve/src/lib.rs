//! Mapping-as-a-service for the REPUTE reproduction: a long-lived
//! daemon that loads the reference and FM-index once, accepts mapping
//! jobs over a Unix-domain socket or a spool directory, coalesces small
//! jobs into quarter-RAM-capped scheduler batches on the simulated
//! heterogeneous fleet, and journals every accepted job so a crash and
//! restart (`--resume`) lose at most one in-flight batch.
//!
//! The paper's deployment target is an embedded genomics appliance
//! (§I, §III-D): a small always-on board mapping read sets as they
//! arrive from a sequencer, where re-building the FM-index per request
//! would dwarf the mapping itself. This crate is the service layer over
//! the existing pipeline:
//!
//! * [`envelope`] — the newline-delimited JSON wire format (job
//!   envelopes with optional deadlines/priorities in, typed
//!   `OK`/`REJECTED`/`RETRY_LATER`/`QUOTA_EXCEEDED` responses out),
//! * [`admission`] — the bounded job queue with an earliest-deadline-
//!   first lane over per-tenant weighted fair dequeue, plus sliding-
//!   window tenant quotas and backpressure,
//! * [`journal`] — the crash-safe job journal (CRC-framed acceptance
//!   and atomic per-batch commit records, compactable down to live
//!   records plus a state snapshot),
//! * [`server`] — [`ServeCore`]: validation, coalescing, execution on
//!   the simulated platform, resume, and observability,
//! * [`harness`] — [`ServeHarness`]: the deterministic in-process
//!   driver tests and benches use (including `crash_mid_batch`),
//! * [`transport`] — the multi-client Unix-socket listener (a
//!   connection-reader layer feeding the single-threaded core), submit
//!   client, and spool-directory scanner (Unix only).
//!
//! Determinism contract: for a fixed job set, server configuration,
//! and `--host-threads`, the daemon's per-job SAM output is
//! byte-identical to batch `repute map` over the same reads — including
//! after a crash and resume, which re-executes at most one batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod envelope;
pub mod harness;
pub mod journal;
pub mod server;
#[cfg(unix)]
pub mod transport;

pub use admission::{AdmissionQueue, ConfigKey, JobSpec, TenantQuota, DEFAULT_QUEUE_CAPACITY};
pub use envelope::{
    parse_request, resolve_reads, JobEnvelope, JobResponse, JobStatus, MapperKind, Request,
    DEFAULT_TENANT,
};
pub use harness::ServeHarness;
pub use journal::{BatchRecord, JobJournal, JobResult, Recovered, StateRecord};
pub use server::{ServeCore, ServeCounters, ServeLimits, ServeOptions};
