//! Admission control: a bounded job queue with per-tenant weighted fair
//! dequeue.
//!
//! Admission is a two-gate policy. Gate one is *validation* (the server
//! rejects over-limit jobs outright — that lives in
//! [`crate::server::ServeCore`]); gate two is *capacity*: the queue
//! holds at most `capacity` jobs across all tenants, and a full queue
//! answers `RETRY_LATER` instead of buffering unboundedly.
//!
//! Dequeue order is weighted fair queuing in the classic
//! virtual-service form: every tenant lane accumulates
//! `served += max(reads, 1) / weight` as its jobs are dispatched, and
//! the next job always comes from the non-empty lane with the smallest
//! `served` (ties broken by tenant name, FIFO within a lane). A tenant
//! with weight 2 therefore gets twice the read throughput of a tenant
//! with weight 1 under contention, and an idle tenant's first job never
//! waits behind a busy tenant's backlog longer than one batch. The
//! whole structure is deterministic: no clocks, no randomness.

use std::collections::VecDeque;

use repute_genome::DnaSeq;
use repute_obs::Gauge;
use repute_prefilter::PrefilterMode;

use crate::envelope::MapperKind;

/// Default queue capacity of the daemon.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// The per-batch mapping configuration a job resolved to. Jobs sharing
/// a key may ride in one scheduler batch (one mapper instance maps the
/// whole batch); a key change forces a batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigKey {
    /// Effective error budget δ.
    pub delta: u32,
    /// Effective prefilter mode.
    pub prefilter: PrefilterMode,
    /// Effective mapper.
    pub mapper: MapperKind,
}

/// One admitted job, reads resolved, options within server limits.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Monotone acceptance sequence number (journal key).
    pub seq: u64,
    /// Client-chosen job id.
    pub id: String,
    /// Tenant of the fair queue.
    pub tenant: String,
    /// Effective per-batch configuration.
    pub key: ConfigKey,
    /// Simulated arrival time (admission clock).
    pub arrival_s: f64,
    /// Read ids, parallel to `reads`.
    pub read_ids: Vec<String>,
    /// Read sequences.
    pub reads: Vec<DnaSeq>,
}

impl JobSpec {
    /// The fair-queue cost of dispatching this job: its read count, with
    /// empty jobs costing one unit so a stream of empty jobs still
    /// accrues service.
    pub fn cost(&self) -> f64 {
        self.reads.len().max(1) as f64
    }
}

#[derive(Debug)]
struct TenantLane {
    name: String,
    weight: f64,
    served: f64,
    jobs: VecDeque<JobSpec>,
}

/// The bounded weighted-fair job queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    lanes: Vec<TenantLane>,
    len: usize,
    depth: Gauge,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` jobs, with the given tenant
    /// weights (unlisted tenants get weight 1.0; non-positive weights
    /// are clamped to 1.0).
    pub fn new(capacity: usize, weights: &[(String, f64)]) -> AdmissionQueue {
        let mut queue = AdmissionQueue {
            capacity: capacity.max(1),
            lanes: Vec::new(),
            len: 0,
            depth: Gauge::new(),
        };
        for (name, weight) in weights {
            queue.lane(name).weight = if *weight > 0.0 { *weight } else { 1.0 };
        }
        queue
    }

    fn lane(&mut self, name: &str) -> &mut TenantLane {
        let at = match self.lanes.iter().position(|l| l.name == name) {
            Some(i) => i,
            None => {
                let at = self.lanes.partition_point(|l| l.name.as_str() < name);
                self.lanes.insert(
                    at,
                    TenantLane {
                        name: name.to_string(),
                        weight: 1.0,
                        served: 0.0,
                        jobs: VecDeque::new(),
                    },
                );
                at
            }
        };
        &mut self.lanes[at]
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when another `push` would exceed capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The queue-depth gauge (current depth + high-water mark).
    pub fn depth(&self) -> Gauge {
        self.depth
    }

    /// Enqueues an accepted job. `resumed` pushes bypass the capacity
    /// check: the job was accepted (and journaled) before a restart, so
    /// bouncing it now would break the at-most-one-batch-lost promise.
    ///
    /// Returns the job back when the queue is full (backpressure).
    pub fn push(&mut self, job: JobSpec, resumed: bool) -> Result<(), JobSpec> {
        if !resumed && self.is_full() {
            return Err(job);
        }
        self.lane(&job.tenant.clone()).jobs.push_back(job);
        self.len += 1;
        self.depth.set(self.len as u64);
        Ok(())
    }

    /// Index of the lane the fair policy picks next: the non-empty lane
    /// with the smallest `served`, ties to the lexicographically first
    /// tenant (lanes are kept name-sorted).
    fn fair_lane(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.jobs.is_empty())
            .min_by(|(_, a), (_, b)| a.served.total_cmp(&b.served))
            .map(|(i, _)| i)
    }

    /// The job the fair policy would dispatch next, without removing it.
    pub fn peek_fair(&self) -> Option<&JobSpec> {
        self.fair_lane().and_then(|i| self.lanes[i].jobs.front())
    }

    /// Dispatches the fair-next job, charging its cost to the tenant.
    pub fn pop_fair(&mut self) -> Option<JobSpec> {
        let at = self.fair_lane()?;
        let job = self.lanes[at].jobs.pop_front()?;
        let weight = self.lanes[at].weight;
        self.lanes[at].served += job.cost() / weight;
        self.len -= 1;
        self.depth.set(self.len as u64);
        Some(job)
    }

    /// Re-applies the service charge of a job dispatched before a
    /// restart, so a resumed queue continues with the exact fairness
    /// state (and therefore the exact batch composition) of the
    /// uninterrupted run.
    pub fn restore_served(&mut self, tenant: &str, cost: f64) {
        let lane = self.lane(tenant);
        lane.served += cost / lane.weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64, tenant: &str, reads: usize) -> JobSpec {
        JobSpec {
            seq,
            id: format!("j{seq}"),
            tenant: tenant.to_string(),
            key: ConfigKey {
                delta: 5,
                prefilter: PrefilterMode::None,
                mapper: MapperKind::Repute,
            },
            arrival_s: 0.0,
            read_ids: (0..reads).map(|i| format!("r{i}")).collect(),
            reads: vec!["ACGT".parse().expect("seq"); reads],
        }
    }

    #[test]
    fn capacity_bounces_only_fresh_jobs() {
        let mut q = AdmissionQueue::new(2, &[]);
        assert!(q.push(job(0, "a", 1), false).is_ok());
        assert!(q.push(job(1, "a", 1), false).is_ok());
        assert!(q.is_full());
        let bounced = q.push(job(2, "a", 1), false).expect_err("full");
        assert_eq!(bounced.seq, 2);
        // Resumed pushes bypass the gate.
        assert!(q.push(job(3, "a", 1), true).is_ok());
        assert_eq!(q.len(), 3);
        assert_eq!(q.depth().high_water(), 3);
    }

    #[test]
    fn fair_dequeue_interleaves_by_weight() {
        let mut q = AdmissionQueue::new(64, &[("big".to_string(), 2.0)]);
        for i in 0..4 {
            q.push(job(i, "big", 4), false).expect("push");
            q.push(job(10 + i, "small", 4), false).expect("push");
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop_fair().map(|j| j.tenant)).collect();
        // weight 2 gets two dispatches per one of weight 1 once costs
        // accrue; ties go to the lexicographically first tenant.
        assert_eq!(
            order,
            ["big", "small", "big", "big", "small", "big", "small", "small"]
        );
    }

    #[test]
    fn fifo_within_a_tenant_and_restore_served() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "a", 1), false).expect("push");
        q.push(job(1, "a", 1), false).expect("push");
        q.push(job(2, "b", 1), false).expect("push");
        // Pre-charge tenant a as if seq 0 had been dispatched before a
        // restart: b now goes first, then a's jobs in FIFO order.
        q.restore_served("a", 1.0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_fair().map(|j| j.seq)).collect();
        assert_eq!(order, [2, 0, 1]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "b", 2), false).expect("push");
        q.push(job(1, "a", 2), false).expect("push");
        let peeked = q.peek_fair().expect("job").seq;
        assert_eq!(q.pop_fair().expect("job").seq, peeked);
        assert_eq!(peeked, 1); // name tie-break: "a" before "b"
    }
}
