//! Admission control: a bounded job queue with deadline-aware,
//! per-tenant weighted fair dequeue, plus sliding-window tenant quotas.
//!
//! Admission is a three-gate policy. Gate one is *validation* (the
//! server rejects over-limit jobs outright — that lives in
//! [`crate::server::ServeCore`]); gate two is *quota*: a tenant with a
//! configured read budget that would exceed it over the sliding
//! simulated-time window is answered `QUOTA_EXCEEDED` (see
//! [`TenantQuota`]); gate three is *capacity*: the queue holds at most
//! `capacity` jobs across all tenants, and a full queue answers
//! `RETRY_LATER` instead of buffering unboundedly.
//!
//! Dequeue order composes two disciplines, both deterministic on the
//! simulated clock (no wall time, no randomness):
//!
//! 1. **EDF lane.** Jobs carrying a deadline whose deadline has not yet
//!    passed dequeue first, earliest absolute deadline first. Deadline
//!    ties fall back to the weighted-fair comparison below (priority,
//!    then lane `served`, then tenant name, then acceptance order). A
//!    job whose deadline has already passed loses its EDF privilege and
//!    degrades into the fair lanes — an overdue job must not starve
//!    everyone else's guarantees.
//! 2. **Weighted fair queuing** in the classic virtual-service form:
//!    every tenant lane accumulates `served += max(reads, 1) / weight`
//!    as its jobs are dispatched, and the next job always comes from
//!    the non-empty lane with the smallest `served` (ties broken by
//!    tenant name). Within a lane, higher `priority` dequeues first,
//!    FIFO within a priority. A tenant with weight 2 therefore gets
//!    twice the read throughput of a tenant with weight 1 under
//!    contention, and an idle tenant's first job never waits behind a
//!    busy tenant's backlog longer than one batch.
//!
//! EDF dispatches still charge the tenant's `served`, so a tenant that
//! burns its fairness share on urgent jobs pays for it in the fair
//! lanes afterwards — the two disciplines compose instead of fighting.

use std::collections::VecDeque;

use repute_genome::DnaSeq;
use repute_obs::Gauge;
use repute_prefilter::PrefilterMode;

use crate::envelope::MapperKind;

/// Default queue capacity of the daemon.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// The per-batch mapping configuration a job resolved to. Jobs sharing
/// a key may ride in one scheduler batch (one mapper instance maps the
/// whole batch); a key change forces a batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigKey {
    /// Effective error budget δ.
    pub delta: u32,
    /// Effective prefilter mode.
    pub prefilter: PrefilterMode,
    /// Effective mapper.
    pub mapper: MapperKind,
}

/// One admitted job, reads resolved, options within server limits.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Monotone acceptance sequence number (journal key).
    pub seq: u64,
    /// Client-chosen job id.
    pub id: String,
    /// Tenant of the fair queue.
    pub tenant: String,
    /// Effective per-batch configuration.
    pub key: ConfigKey,
    /// Simulated arrival time (admission clock).
    pub arrival_s: f64,
    /// Absolute simulated-time deadline (`arrival_s` + the envelope's
    /// relative `deadline_s`); `None` for best-effort jobs.
    pub deadline_s: Option<f64>,
    /// Intra-tenant priority (higher dequeues first).
    pub priority: u32,
    /// Read ids, parallel to `reads`.
    pub read_ids: Vec<String>,
    /// Read sequences.
    pub reads: Vec<DnaSeq>,
}

impl JobSpec {
    /// The fair-queue cost of dispatching this job: its read count, with
    /// empty jobs costing one unit so a stream of empty jobs still
    /// accrues service.
    pub fn cost(&self) -> f64 {
        self.reads.len().max(1) as f64
    }
}

#[derive(Debug)]
struct TenantLane {
    name: String,
    weight: f64,
    served: f64,
    jobs: VecDeque<JobSpec>,
}

/// The bounded deadline-aware weighted-fair job queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    lanes: Vec<TenantLane>,
    len: usize,
    depth: Gauge,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` jobs, with the given tenant
    /// weights (unlisted tenants get weight 1.0; non-positive weights
    /// are clamped to 1.0).
    pub fn new(capacity: usize, weights: &[(String, f64)]) -> AdmissionQueue {
        let mut queue = AdmissionQueue {
            capacity: capacity.max(1),
            lanes: Vec::new(),
            len: 0,
            depth: Gauge::new(),
        };
        for (name, weight) in weights {
            queue.lane(name).weight = if *weight > 0.0 { *weight } else { 1.0 };
        }
        queue
    }

    fn lane(&mut self, name: &str) -> &mut TenantLane {
        let at = match self.lanes.iter().position(|l| l.name == name) {
            Some(i) => i,
            None => {
                let at = self.lanes.partition_point(|l| l.name.as_str() < name);
                self.lanes.insert(
                    at,
                    TenantLane {
                        name: name.to_string(),
                        weight: 1.0,
                        served: 0.0,
                        jobs: VecDeque::new(),
                    },
                );
                at
            }
        };
        &mut self.lanes[at]
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when another `push` would exceed capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rebounds the queue (clamped to at least one slot). Jobs already
    /// queued above a shrunk bound stay queued — capacity gates only
    /// *new* pushes, so device loss never drops accepted work.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
    }

    /// Removes and returns every queued job whose deadline has already
    /// passed at simulated time `now`, in acceptance (seq) order — the
    /// shed set of `--shed-overdue`. Best-effort jobs (no deadline) are
    /// never shed. The tenants' fair-queue `served` is not charged:
    /// shed jobs received no service.
    pub fn take_overdue(&mut self, now: f64) -> Vec<JobSpec> {
        let mut shed = Vec::new();
        for lane in &mut self.lanes {
            let mut kept = VecDeque::with_capacity(lane.jobs.len());
            for job in lane.jobs.drain(..) {
                if job.deadline_s.is_some_and(|d| d < now) {
                    shed.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            lane.jobs = kept;
        }
        self.len -= shed.len();
        self.depth.set(self.len as u64);
        shed.sort_by_key(|j| j.seq);
        shed
    }

    /// The queue-depth gauge (current depth + high-water mark).
    pub fn depth(&self) -> Gauge {
        self.depth
    }

    /// Enqueues an accepted job in lane priority order (higher priority
    /// first, FIFO within a priority). `resumed` pushes bypass the
    /// capacity check: the job was accepted (and journaled) before a
    /// restart, so bouncing it now would break the
    /// at-most-one-batch-lost promise.
    ///
    /// Returns the job back when the queue is full (backpressure).
    #[allow(clippy::result_large_err)] // Err returns the caller's own job
    pub fn push(&mut self, job: JobSpec, resumed: bool) -> Result<(), JobSpec> {
        if !resumed && self.is_full() {
            return Err(job);
        }
        let priority = job.priority;
        let lane = self.lane(&job.tenant.clone());
        // Insert after every job with priority >= the new job's, so
        // equal priorities stay FIFO by acceptance order.
        let at = lane.jobs.partition_point(|j| j.priority >= priority);
        lane.jobs.insert(at, job);
        self.len += 1;
        self.depth.set(self.len as u64);
        Ok(())
    }

    /// The `(lane, index)` the dequeue policy picks next at simulated
    /// time `now`: the EDF lane first (earliest non-overdue deadline;
    /// ties by priority, then fair `served`, then tenant name, then
    /// acceptance order), falling back to weighted fair queuing.
    fn next_slot(&self, now: f64) -> Option<(usize, usize)> {
        // Deterministic EDF rank: deadline, negated priority, fair
        // `served`, lane index (= tenant name order), acceptance seq.
        type EdfRank = (f64, u32, f64, usize, u64);
        // EDF pass: every queued job with a live (non-overdue) deadline.
        let mut best: Option<(EdfRank, (usize, usize))> = None;
        for (li, lane) in self.lanes.iter().enumerate() {
            for (ji, job) in lane.jobs.iter().enumerate() {
                let Some(deadline) = job.deadline_s else {
                    continue;
                };
                if deadline < now {
                    continue; // overdue: degrades to the fair lanes
                }
                // Lower tuple wins; priority is negated via u32::MAX so
                // a higher priority sorts first. Full deterministic
                // order: deadline, priority, then the fair comparison
                // (served, lane index = tenant name order, seq).
                let rank = (deadline, u32::MAX - job.priority, lane.served, li, job.seq);
                let better = match &best {
                    None => true,
                    Some((b, _)) => {
                        use std::cmp::Ordering;
                        match rank.0.total_cmp(&b.0) {
                            Ordering::Less => true,
                            Ordering::Greater => false,
                            Ordering::Equal => match rank.1.cmp(&b.1) {
                                Ordering::Less => true,
                                Ordering::Greater => false,
                                Ordering::Equal => match rank.2.total_cmp(&b.2) {
                                    Ordering::Less => true,
                                    Ordering::Greater => false,
                                    Ordering::Equal => (rank.3, rank.4) < (b.3, b.4),
                                },
                            },
                        }
                    }
                };
                if better {
                    best = Some((rank, (li, ji)));
                }
            }
        }
        if let Some((_, slot)) = best {
            return Some(slot);
        }
        // Fair pass: smallest served, ties to the lexicographically
        // first tenant (lanes are kept name-sorted); the lane front is
        // its highest-priority, oldest job.
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.jobs.is_empty())
            .min_by(|(_, a), (_, b)| a.served.total_cmp(&b.served))
            .map(|(i, _)| (i, 0))
    }

    /// The job the policy would dispatch next at simulated time `now`,
    /// without removing it.
    pub fn peek_fair(&self, now: f64) -> Option<&JobSpec> {
        self.next_slot(now).map(|(li, ji)| &self.lanes[li].jobs[ji])
    }

    /// Dispatches the policy-next job at simulated time `now`, charging
    /// its cost to the tenant (EDF dispatches pay fair service too).
    pub fn pop_fair(&mut self, now: f64) -> Option<JobSpec> {
        let (li, ji) = self.next_slot(now)?;
        let job = self.lanes[li].jobs.remove(ji)?;
        let weight = self.lanes[li].weight;
        self.lanes[li].served += job.cost() / weight;
        self.len -= 1;
        self.depth.set(self.len as u64);
        Some(job)
    }

    /// Re-applies the service charge of a job dispatched before a
    /// restart, so a resumed queue continues with the exact fairness
    /// state (and therefore the exact batch composition) of the
    /// uninterrupted run.
    pub fn restore_served(&mut self, tenant: &str, cost: f64) {
        let lane = self.lane(tenant);
        lane.served += cost / lane.weight;
    }

    /// Overwrites a tenant lane's accumulated service (compacted-journal
    /// resume restores the exact pre-crash fairness state).
    pub fn set_served(&mut self, tenant: &str, served: f64) {
        self.lane(tenant).served = served;
    }

    /// Every lane's `(tenant, served)` fairness state, name-sorted —
    /// the snapshot journal compaction persists.
    pub fn served_snapshot(&self) -> Vec<(String, f64)> {
        self.lanes
            .iter()
            .map(|l| (l.name.clone(), l.served))
            .collect()
    }

    /// Every queued job in acceptance (seq) order — the live records
    /// journal compaction rewrites.
    pub fn queued_snapshot(&self) -> Vec<&JobSpec> {
        let mut jobs: Vec<&JobSpec> = self.lanes.iter().flat_map(|l| l.jobs.iter()).collect();
        jobs.sort_by_key(|j| j.seq);
        jobs
    }
}

/// Sliding-window per-tenant read budgets (admission gate two).
///
/// A tenant with a configured budget may admit at most `budget` reads
/// over any trailing `window_s` simulated seconds; the next job that
/// would cross the line is refused with a typed `QUOTA_EXCEEDED`
/// response (the job was *not* accepted; resubmit after the window
/// slides). Tenants without a budget are never quota-refused.
/// Deterministic: the window slides on the simulated clock only.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    window_s: f64,
    budgets: Vec<(String, u64)>,
    // (seq, tenant, admission time, reads) — pruned as the window
    // slides. Bookings carry the job seq so a resume can restore the
    // window without double-booking rewritten journal records.
    admitted: Vec<(u64, String, f64, u64)>,
}

impl TenantQuota {
    /// A quota gate over `budgets` (reads per tenant per window) with a
    /// trailing window of `window_s` simulated seconds. An empty budget
    /// table disables the gate entirely.
    pub fn new(window_s: f64, budgets: &[(String, u64)]) -> TenantQuota {
        TenantQuota {
            window_s: if window_s > 0.0 { window_s } else { f64::MAX },
            budgets: budgets.to_vec(),
            admitted: Vec::new(),
        }
    }

    /// True when no tenant has a budget (the gate is a no-op).
    pub fn is_disabled(&self) -> bool {
        self.budgets.is_empty()
    }

    /// The configured window length (simulated seconds).
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// The configured budget table.
    pub fn budgets(&self) -> &[(String, u64)] {
        &self.budgets
    }

    fn budget_of(&self, tenant: &str) -> Option<u64> {
        self.budgets
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, b)| *b)
    }

    fn prune(&mut self, now: f64) {
        let horizon = now - self.window_s;
        self.admitted.retain(|(_, _, at, _)| *at > horizon);
    }

    /// Checks whether admitting `reads` reads for `tenant` at simulated
    /// time `now` stays inside the budget. `Ok(())` admits; `Err((used,
    /// budget))` reports the window usage that forced the refusal.
    /// Checking does not book — call [`TenantQuota::book`] on accept.
    pub fn check(&mut self, tenant: &str, reads: u64, now: f64) -> Result<(), (u64, u64)> {
        let Some(budget) = self.budget_of(tenant) else {
            return Ok(());
        };
        self.prune(now);
        let used: u64 = self
            .admitted
            .iter()
            .filter(|(_, name, _, _)| name == tenant)
            .map(|(_, _, _, n)| *n)
            .sum();
        if used + reads.max(1) > budget {
            return Err((used, budget));
        }
        Ok(())
    }

    /// Books an admitted job's reads into the tenant's window (empty
    /// jobs cost one read, mirroring the fair-queue cost).
    pub fn book(&mut self, seq: u64, tenant: &str, reads: u64, now: f64) {
        if self.budget_of(tenant).is_none() {
            return;
        }
        self.admitted
            .push((seq, tenant.to_string(), now, reads.max(1)));
    }

    /// The live window entries `(seq, tenant, admitted_at, reads)` at
    /// simulated time `now` — the snapshot journal compaction persists.
    pub fn snapshot(&mut self, now: f64) -> Vec<(u64, String, f64, u64)> {
        self.prune(now);
        self.admitted.clone()
    }

    /// Restores a window entry recovered from a journal. Idempotent per
    /// job: a seq already booked (e.g. present in a compaction state
    /// snapshot *and* re-derived from a rewritten Accepted record) is
    /// skipped.
    pub fn restore(&mut self, seq: u64, tenant: &str, at: f64, reads: u64) {
        if self.budget_of(tenant).is_none() {
            return;
        }
        if self.admitted.iter().any(|(s, _, _, _)| *s == seq) {
            return;
        }
        self.admitted
            .push((seq, tenant.to_string(), at, reads.max(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64, tenant: &str, reads: usize) -> JobSpec {
        JobSpec {
            seq,
            id: format!("j{seq}"),
            tenant: tenant.to_string(),
            key: ConfigKey {
                delta: 5,
                prefilter: PrefilterMode::None,
                mapper: MapperKind::Repute,
            },
            arrival_s: 0.0,
            deadline_s: None,
            priority: 0,
            read_ids: (0..reads).map(|i| format!("r{i}")).collect(),
            reads: vec!["ACGT".parse().expect("seq"); reads],
        }
    }

    fn deadline_job(seq: u64, tenant: &str, deadline: f64, priority: u32) -> JobSpec {
        JobSpec {
            deadline_s: Some(deadline),
            priority,
            ..job(seq, tenant, 1)
        }
    }

    #[test]
    fn capacity_bounces_only_fresh_jobs() {
        let mut q = AdmissionQueue::new(2, &[]);
        assert!(q.push(job(0, "a", 1), false).is_ok());
        assert!(q.push(job(1, "a", 1), false).is_ok());
        assert!(q.is_full());
        let bounced = q.push(job(2, "a", 1), false).expect_err("full");
        assert_eq!(bounced.seq, 2);
        // Resumed pushes bypass the gate.
        assert!(q.push(job(3, "a", 1), true).is_ok());
        assert_eq!(q.len(), 3);
        assert_eq!(q.depth().high_water(), 3);
    }

    #[test]
    fn fair_dequeue_interleaves_by_weight() {
        let mut q = AdmissionQueue::new(64, &[("big".to_string(), 2.0)]);
        for i in 0..4 {
            q.push(job(i, "big", 4), false).expect("push");
            q.push(job(10 + i, "small", 4), false).expect("push");
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop_fair(0.0).map(|j| j.tenant)).collect();
        // weight 2 gets two dispatches per one of weight 1 once costs
        // accrue; ties go to the lexicographically first tenant.
        assert_eq!(
            order,
            ["big", "small", "big", "big", "small", "big", "small", "small"]
        );
    }

    #[test]
    fn fifo_within_a_tenant_and_restore_served() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "a", 1), false).expect("push");
        q.push(job(1, "a", 1), false).expect("push");
        q.push(job(2, "b", 1), false).expect("push");
        // Pre-charge tenant a as if seq 0 had been dispatched before a
        // restart: b now goes first, then a's jobs in FIFO order.
        q.restore_served("a", 1.0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_fair(0.0).map(|j| j.seq)).collect();
        assert_eq!(order, [2, 0, 1]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "b", 2), false).expect("push");
        q.push(job(1, "a", 2), false).expect("push");
        let peeked = q.peek_fair(0.0).expect("job").seq;
        assert_eq!(q.pop_fair(0.0).expect("job").seq, peeked);
        assert_eq!(peeked, 1); // name tie-break: "a" before "b"
    }

    #[test]
    fn edf_lane_preempts_fair_order_until_overdue() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "a", 4), false).expect("push");
        q.push(job(1, "b", 4), false).expect("push");
        q.push(deadline_job(2, "z", 5.0, 0), false).expect("push");
        q.push(deadline_job(3, "z", 2.0, 0), false).expect("push");
        // At t=0 both deadlines are live: earliest deadline first, even
        // though tenant z sorts last and arrived last.
        assert_eq!(q.peek_fair(0.0).expect("job").seq, 3);
        assert_eq!(q.pop_fair(0.0).expect("job").seq, 3);
        assert_eq!(q.pop_fair(0.0).expect("job").seq, 2);
        // EDF dispatches charged z's lane: the fair pass now prefers a/b.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_fair(0.0).map(|j| j.seq)).collect();
        assert_eq!(order, [0, 1]);
    }

    #[test]
    fn overdue_deadlines_degrade_to_fair() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "a", 1), false).expect("push");
        q.push(deadline_job(1, "z", 2.0, 0), false).expect("push");
        // At t=10 the deadline has passed: plain fair order wins
        // (smallest served, name tie-break → tenant a first).
        assert_eq!(q.pop_fair(10.0).expect("job").seq, 0);
        assert_eq!(q.pop_fair(10.0).expect("job").seq, 1);
    }

    #[test]
    fn deadline_ties_break_by_priority_then_fairness() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(deadline_job(0, "b", 3.0, 1), false).expect("push");
        q.push(deadline_job(1, "a", 3.0, 5), false).expect("push");
        q.push(deadline_job(2, "a", 3.0, 5), false).expect("push");
        // Same deadline: priority 5 beats 1; within the tie, acceptance
        // order (seq) decides.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_fair(0.0).map(|j| j.seq)).collect();
        assert_eq!(order, [1, 2, 0]);
    }

    #[test]
    fn priority_orders_within_a_lane() {
        let mut q = AdmissionQueue::new(64, &[]);
        let mut low = job(0, "a", 1);
        low.priority = 0;
        let mut high = job(1, "a", 1);
        high.priority = 9;
        let mut mid = job(2, "a", 1);
        mid.priority = 9;
        q.push(low, false).expect("push");
        q.push(high, false).expect("push");
        q.push(mid, false).expect("push");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_fair(0.0).map(|j| j.seq)).collect();
        assert_eq!(order, [1, 2, 0], "high priority first, FIFO within");
    }

    #[test]
    fn snapshots_are_seq_ordered_and_name_sorted() {
        let mut q = AdmissionQueue::new(64, &[("b".to_string(), 2.0)]);
        q.push(job(3, "b", 1), false).expect("push");
        q.push(job(1, "a", 1), false).expect("push");
        q.push(job(2, "a", 1), false).expect("push");
        let seqs: Vec<u64> = q.queued_snapshot().iter().map(|j| j.seq).collect();
        assert_eq!(seqs, [1, 2, 3]);
        q.pop_fair(0.0).expect("job");
        let served = q.served_snapshot();
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].0, "a");
        assert!(served[0].1 > 0.0 || served[1].1 > 0.0);
    }

    #[test]
    fn take_overdue_sheds_only_expired_deadlines_in_seq_order() {
        let mut q = AdmissionQueue::new(64, &[]);
        q.push(job(0, "a", 2), false).expect("push");
        q.push(deadline_job(3, "z", 2.0, 0), false).expect("push");
        q.push(deadline_job(1, "b", 1.0, 0), false).expect("push");
        q.push(deadline_job(2, "b", 9.0, 0), false).expect("push");
        // At t=5 the deadlines at 1.0 and 2.0 have passed; the
        // best-effort job and the 9.0 deadline stay queued.
        let shed: Vec<u64> = q.take_overdue(5.0).iter().map(|j| j.seq).collect();
        assert_eq!(shed, [1, 3]);
        assert_eq!(q.len(), 2);
        // Nothing further to shed at the same instant.
        assert!(q.take_overdue(5.0).is_empty());
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop_fair(5.0).map(|j| j.seq)).collect();
        assert_eq!(rest, [2, 0]);
    }

    #[test]
    fn set_capacity_rebounds_without_dropping_queued_jobs() {
        let mut q = AdmissionQueue::new(4, &[]);
        for i in 0..4 {
            q.push(job(i, "a", 1), false).expect("push");
        }
        q.set_capacity(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.is_full());
        assert_eq!(q.len(), 4, "shrinking never drops accepted work");
        assert!(q.push(job(9, "a", 1), false).is_err());
        q.set_capacity(0);
        assert_eq!(q.capacity(), 1, "capacity clamps to one slot");
        q.set_capacity(8);
        assert!(q.push(job(10, "a", 1), false).is_ok());
    }

    #[test]
    fn quota_window_slides_on_the_simulated_clock() {
        let mut quota = TenantQuota::new(10.0, &[("acme".to_string(), 8)]);
        assert!(quota.check("acme", 4, 0.0).is_ok());
        quota.book(0, "acme", 4, 0.0);
        assert!(quota.check("acme", 4, 1.0).is_ok());
        quota.book(1, "acme", 4, 1.0);
        // Budget spent: the 9th read in the window is refused with the
        // usage that caused it.
        assert_eq!(quota.check("acme", 1, 2.0), Err((8, 8)));
        // Unbudgeted tenants never trip the gate.
        assert!(quota.check("other", 1_000, 2.0).is_ok());
        // The window slides: at t=10.5 the t=0 booking has expired.
        assert!(quota.check("acme", 4, 10.5).is_ok());
        quota.book(2, "acme", 4, 10.5);
        assert_eq!(quota.check("acme", 4, 10.6), Err((8, 8)));
        // Snapshot only keeps live entries (t=0 and t=1 have expired).
        assert_eq!(quota.snapshot(11.5).len(), 1);
        // Restore dedups by seq (compacted-journal resume path).
        quota.restore(2, "acme", 11.0, 4);
        assert_eq!(quota.snapshot(11.5).len(), 1);
        quota.restore(3, "acme", 11.2, 4);
        assert_eq!(quota.check("acme", 1, 11.5), Err((8, 8)));
    }
}
