//! The wire format of the mapping service: newline-delimited JSON job
//! envelopes in, newline-delimited JSON responses out.
//!
//! One request per line. A job envelope names the job, its tenant, and
//! its reads — inline as `{"id","seq"}` pairs or as a FASTQ path the
//! server resolves at admission — plus optional per-job overrides
//! (`delta`, `prefilter`, `mapper`) that must stay within the server's
//! pinned limits, and optional scheduling hints: `deadline_s` (a
//! relative simulated-seconds deadline feeding the earliest-deadline-
//! first lane) and `priority` (intra-tenant ordering, higher first).
//! The only non-job request is the graceful-drain control message
//! `{"op":"shutdown"}`.
//!
//! Responses are flat JSON objects with a typed `status`: `OK` carries
//! the job's SAM bytes and scheduling facts, `REJECTED` is a permanent
//! refusal (over-limit job, malformed reads), `RETRY_LATER` is the
//! admission queue's backpressure signal — the job was *not* accepted
//! and may be resubmitted once the queue drains — and `QUOTA_EXCEEDED`
//! means the tenant spent its sliding-window read budget; resubmit
//! after the window slides, or as a different tenant.

use std::str::FromStr;

use repute_core::ReputeError;
use repute_genome::DnaSeq;
use repute_obs::json::{field, parse_json, JsonObject, JsonValue};
use repute_prefilter::PrefilterMode;

/// Tenant a job belongs to when the envelope names none.
pub const DEFAULT_TENANT: &str = "default";

/// Which mapping strategy a job requests (mirrors the CLI's mapper
/// choices; the serve crate keeps its own copy so the daemon does not
/// depend on the command-line crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapperKind {
    /// The REPUTE mapper (default).
    #[default]
    Repute,
    /// The CORAL-style serial-heuristic baseline.
    Coral,
    /// The RazerS3-style SWIFT counting baseline.
    Razers3,
    /// The Hobbes3-style q-gram signature baseline.
    Hobbes3,
    /// The Yara-style best-mapper baseline.
    Yara,
    /// The GEM-style adaptive-filtration baseline.
    Gem,
    /// The BWA-MEM-style SMEM best-mapper baseline (ignores δ).
    BwaMem,
}

impl MapperKind {
    /// Canonical name (the value accepted in envelopes and flags).
    pub fn as_str(self) -> &'static str {
        match self {
            MapperKind::Repute => "repute",
            MapperKind::Coral => "coral",
            MapperKind::Razers3 => "razers3",
            MapperKind::Hobbes3 => "hobbes3",
            MapperKind::Yara => "yara",
            MapperKind::Gem => "gem",
            MapperKind::BwaMem => "bwa-mem",
        }
    }

    /// Stable one-byte code used by the job journal.
    pub fn code(self) -> u8 {
        match self {
            MapperKind::Repute => 0,
            MapperKind::Coral => 1,
            MapperKind::Razers3 => 2,
            MapperKind::Hobbes3 => 3,
            MapperKind::Yara => 4,
            MapperKind::Gem => 5,
            MapperKind::BwaMem => 6,
        }
    }

    /// Inverse of [`MapperKind::code`].
    pub fn from_code(code: u8) -> Option<MapperKind> {
        Some(match code {
            0 => MapperKind::Repute,
            1 => MapperKind::Coral,
            2 => MapperKind::Razers3,
            3 => MapperKind::Hobbes3,
            4 => MapperKind::Yara,
            5 => MapperKind::Gem,
            6 => MapperKind::BwaMem,
            _ => return None,
        })
    }
}

impl FromStr for MapperKind {
    type Err = String;

    fn from_str(s: &str) -> Result<MapperKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "repute" => Ok(MapperKind::Repute),
            "coral" => Ok(MapperKind::Coral),
            "razers3" => Ok(MapperKind::Razers3),
            "hobbes3" => Ok(MapperKind::Hobbes3),
            "yara" => Ok(MapperKind::Yara),
            "gem" => Ok(MapperKind::Gem),
            "bwa-mem" | "bwamem" => Ok(MapperKind::BwaMem),
            other => Err(format!(
                "unknown mapper {other:?} (repute, coral, razers3, hobbes3, yara, gem, bwa-mem)"
            )),
        }
    }
}

/// Stable one-byte code of a prefilter mode for the job journal.
pub fn prefilter_code(mode: PrefilterMode) -> u8 {
    match mode {
        PrefilterMode::None => 0,
        PrefilterMode::Shd => 1,
        PrefilterMode::Qgram => 2,
        PrefilterMode::Both => 3,
    }
}

/// Inverse of [`prefilter_code`].
pub fn prefilter_from_code(code: u8) -> Option<PrefilterMode> {
    Some(match code {
        0 => PrefilterMode::None,
        1 => PrefilterMode::Shd,
        2 => PrefilterMode::Qgram,
        3 => PrefilterMode::Both,
        _ => return None,
    })
}

/// One parsed job envelope, reads not yet resolved: inline reads are
/// already sequences, a `reads_path` still points at a FASTQ file the
/// transport resolves before admission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEnvelope {
    /// Client-chosen job id; responses echo it.
    pub id: String,
    /// Tenant of the weighted-fair admission queue.
    pub tenant: String,
    /// Per-job error-budget override (must be ≤ the server's
    /// `--max-delta`).
    pub delta: Option<u32>,
    /// Per-job prefilter override (repute mapper only).
    pub prefilter: Option<PrefilterMode>,
    /// Per-job mapper override.
    pub mapper: Option<MapperKind>,
    /// Relative deadline in simulated seconds from admission; jobs with
    /// a deadline dequeue earliest-deadline-first ahead of the fair
    /// lanes while the deadline has not passed.
    pub deadline_s: Option<f64>,
    /// Intra-tenant ordering hint: higher-priority jobs dequeue before
    /// lower-priority jobs of the same tenant (FIFO within a priority).
    pub priority: u32,
    /// Inline reads as `(id, sequence)` pairs.
    pub reads: Vec<(String, DnaSeq)>,
    /// FASTQ path to load the reads from (exclusive with inline reads).
    pub reads_path: Option<String>,
}

impl JobEnvelope {
    /// An envelope with inline reads and no overrides.
    pub fn new(id: impl Into<String>, reads: Vec<(String, DnaSeq)>) -> JobEnvelope {
        JobEnvelope {
            id: id.into(),
            tenant: DEFAULT_TENANT.to_string(),
            delta: None,
            prefilter: None,
            mapper: None,
            deadline_s: None,
            priority: 0,
            reads,
            reads_path: None,
        }
    }

    /// Sets the tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> JobEnvelope {
        self.tenant = tenant.into();
        self
    }

    /// Sets the per-job δ override.
    pub fn with_delta(mut self, delta: u32) -> JobEnvelope {
        self.delta = Some(delta);
        self
    }

    /// Sets the relative deadline (simulated seconds from admission).
    pub fn with_deadline(mut self, deadline_s: f64) -> JobEnvelope {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Sets the intra-tenant priority (higher dequeues first).
    pub fn with_priority(mut self, priority: u32) -> JobEnvelope {
        self.priority = priority;
        self
    }

    /// Serializes the envelope as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("id", &self.id);
        obj.str_field("tenant", &self.tenant);
        if let Some(delta) = self.delta {
            obj.u64_field("delta", u64::from(delta));
        }
        if let Some(mode) = self.prefilter {
            obj.str_field("prefilter", &mode.to_string());
        }
        if let Some(kind) = self.mapper {
            obj.str_field("mapper", kind.as_str());
        }
        if let Some(deadline) = self.deadline_s {
            obj.f64_field("deadline_s", deadline);
        }
        if self.priority > 0 {
            obj.u64_field("priority", u64::from(self.priority));
        }
        if let Some(path) = &self.reads_path {
            obj.str_field("reads_path", path);
        } else {
            let mut arr = String::from("[");
            for (i, (id, seq)) in self.reads.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                let mut read = JsonObject::new();
                read.str_field("id", id);
                read.str_field("seq", &seq.to_string());
                arr.push_str(&read.finish());
            }
            arr.push(']');
            obj.raw_field("reads", &arr);
        }
        obj.finish()
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A mapping job.
    Job(JobEnvelope),
    /// Graceful drain: finish every queued job, respond, then exit.
    Shutdown,
}

fn parse_error(message: impl Into<String>) -> ReputeError {
    ReputeError::InputParse(message.into())
}

/// Parses one request line (a job envelope or `{"op":"shutdown"}`).
///
/// # Errors
///
/// Returns [`ReputeError::InputParse`] naming the first problem: bad
/// JSON, a missing `id`, both or neither of `reads`/`reads_path`, a
/// malformed read entry, or an unknown `prefilter`/`mapper` value.
pub fn parse_request(line: &str) -> Result<Request, ReputeError> {
    let value = parse_json(line).ok_or_else(|| parse_error("request is not valid JSON"))?;
    let fields = value
        .as_obj()
        .ok_or_else(|| parse_error("request must be a JSON object"))?;
    if let Some(op) = field(fields, "op").and_then(JsonValue::as_str) {
        return match op {
            "shutdown" => Ok(Request::Shutdown),
            other => Err(parse_error(format!("unknown op {other:?}"))),
        };
    }
    let id = field(fields, "id")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| parse_error("job envelope needs a string \"id\""))?
        .to_string();
    let tenant = field(fields, "tenant")
        .and_then(JsonValue::as_str)
        .unwrap_or(DEFAULT_TENANT)
        .to_string();
    let delta = match field(fields, "delta") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .and_then(|d| u32::try_from(d).ok())
                .ok_or_else(|| parse_error(format!("job {id:?}: \"delta\" must be an integer")))?,
        ),
    };
    let prefilter = match field(fields, "prefilter").and_then(JsonValue::as_str) {
        None => None,
        Some(s) => Some(
            s.parse::<PrefilterMode>()
                .map_err(|e| parse_error(format!("job {id:?}: prefilter: {e}")))?,
        ),
    };
    let mapper = match field(fields, "mapper").and_then(JsonValue::as_str) {
        None => None,
        Some(s) => Some(
            s.parse::<MapperKind>()
                .map_err(|e| parse_error(format!("job {id:?}: {e}")))?,
        ),
    };
    let deadline_s = match field(fields, "deadline_s") {
        None => None,
        Some(v) => {
            let d = v.as_f64().ok_or_else(|| {
                parse_error(format!("job {id:?}: \"deadline_s\" must be a number"))
            })?;
            if !d.is_finite() || d < 0.0 {
                return Err(parse_error(format!(
                    "job {id:?}: \"deadline_s\" must be a finite non-negative number"
                )));
            }
            Some(d)
        }
    };
    let priority = match field(fields, "priority") {
        None => 0,
        Some(v) => v
            .as_u64()
            .and_then(|p| u32::try_from(p).ok())
            .ok_or_else(|| parse_error(format!("job {id:?}: \"priority\" must be an integer")))?,
    };
    let reads_path = field(fields, "reads_path")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let mut reads = Vec::new();
    if let Some(items) = field(fields, "reads").and_then(JsonValue::as_arr) {
        if reads_path.is_some() {
            return Err(parse_error(format!(
                "job {id:?}: \"reads\" and \"reads_path\" are mutually exclusive"
            )));
        }
        for (i, item) in items.iter().enumerate() {
            let entry = item
                .as_obj()
                .ok_or_else(|| parse_error(format!("job {id:?}: read {i} is not an object")))?;
            let read_id = field(entry, "id")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| parse_error(format!("job {id:?}: read {i} needs an \"id\"")))?;
            let seq = field(entry, "seq")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| parse_error(format!("job {id:?}: read {i} needs a \"seq\"")))?;
            let seq: DnaSeq = seq
                .parse()
                .map_err(|e| parse_error(format!("job {id:?}: read {read_id:?}: {e}")))?;
            reads.push((read_id.to_string(), seq));
        }
    } else if reads_path.is_none() {
        return Err(parse_error(format!(
            "job {id:?}: needs \"reads\" (inline) or \"reads_path\" (FASTQ)"
        )));
    }
    Ok(Request::Job(JobEnvelope {
        id,
        tenant,
        delta,
        prefilter,
        mapper,
        deadline_s,
        priority,
        reads,
        reads_path,
    }))
}

/// Resolves a `reads_path` envelope by loading its FASTQ file; inline
/// envelopes pass through untouched.
///
/// # Errors
///
/// Returns [`ReputeError::InputParse`] (unreadable or malformed FASTQ)
/// so the server can turn the failure into a per-job rejection instead
/// of dying.
pub fn resolve_reads(envelope: &mut JobEnvelope) -> Result<(), ReputeError> {
    let Some(path) = envelope.reads_path.take() else {
        return Ok(());
    };
    let file = std::fs::File::open(&path)
        .map_err(|e| parse_error(format!("job {:?}: reads_path {path:?}: {e}", envelope.id)))?;
    let records = repute_genome::fastq::read_fastq(std::io::BufReader::new(file))
        .map_err(|e| parse_error(format!("job {:?}: reads_path {path:?}: {e}", envelope.id)))?;
    envelope.reads = records.into_iter().map(|r| (r.id, r.seq)).collect();
    Ok(())
}

/// Typed outcome of a job, carried in the response `status` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran; the response carries its SAM output.
    Ok,
    /// Permanent refusal (over-limit, malformed); do not resubmit as-is.
    Rejected,
    /// Admission backpressure: the queue is full, resubmit later.
    RetryLater,
    /// The tenant exhausted its sliding-window read budget; resubmit
    /// after the window slides (distinct from `RETRY_LATER`: the queue
    /// has room, the *tenant* is over budget).
    QuotaExceeded,
    /// The job's deadline expired before dispatch and the daemon runs
    /// with `--shed-overdue`: the job was accepted but never executed.
    /// Resubmitting with a later (or no) deadline is safe.
    DeadlineExceeded,
    /// No live device remains (every accelerator is lost or
    /// quarantined): the daemon is draining and will exit; the job was
    /// not executed and will not be.
    ServiceUnavailable,
}

impl JobStatus {
    /// Wire value of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "OK",
            JobStatus::Rejected => "REJECTED",
            JobStatus::RetryLater => "RETRY_LATER",
            JobStatus::QuotaExceeded => "QUOTA_EXCEEDED",
            JobStatus::DeadlineExceeded => "DEADLINE_EXCEEDED",
            JobStatus::ServiceUnavailable => "SERVICE_UNAVAILABLE",
        }
    }

    /// Inverse of [`JobStatus::as_str`].
    pub fn parse(s: &str) -> Option<JobStatus> {
        Some(match s {
            "OK" => JobStatus::Ok,
            "REJECTED" => JobStatus::Rejected,
            "RETRY_LATER" => JobStatus::RetryLater,
            "QUOTA_EXCEEDED" => JobStatus::QuotaExceeded,
            "DEADLINE_EXCEEDED" => JobStatus::DeadlineExceeded,
            "SERVICE_UNAVAILABLE" => JobStatus::ServiceUnavailable,
            _ => return None,
        })
    }
}

/// One response line of the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// The job id the response answers.
    pub id: String,
    /// Server-assigned acceptance sequence number — present for every
    /// job that was *accepted*, whatever its final status (`OK`,
    /// `DEADLINE_EXCEEDED`, `SERVICE_UNAVAILABLE`), absent for refusals
    /// at admission. Unique across the daemon's life even when clients
    /// reuse ids — the multi-client socket loop routes responses by it.
    pub seq: Option<u64>,
    /// Typed outcome.
    pub status: JobStatus,
    /// Human-readable refusal reason (every non-`OK` status).
    pub reason: Option<String>,
    /// Reads the job carried.
    pub reads: u64,
    /// Mapping locations reported across the job's reads.
    pub mappings: u64,
    /// Scheduler batch the job ran in.
    pub batch: Option<u64>,
    /// Admission-to-completion latency in simulated seconds.
    pub latency_s: Option<f64>,
    /// The job's SAM output (header + one block per read).
    pub sam: Option<String>,
}

impl JobResponse {
    /// A refusal response (`REJECTED` or `RETRY_LATER`).
    pub fn refusal(id: impl Into<String>, status: JobStatus, reason: impl Into<String>) -> Self {
        JobResponse {
            id: id.into(),
            seq: None,
            status,
            reason: Some(reason.into()),
            reads: 0,
            mappings: 0,
            batch: None,
            latency_s: None,
            sam: None,
        }
    }

    /// A typed failure for an *accepted* job (`DEADLINE_EXCEEDED` /
    /// `SERVICE_UNAVAILABLE`): the job had a sequence number, so the
    /// response carries it for per-client routing, plus the read count
    /// the job was admitted with.
    pub fn shed(
        id: impl Into<String>,
        seq: u64,
        reads: u64,
        status: JobStatus,
        reason: impl Into<String>,
    ) -> Self {
        JobResponse {
            seq: Some(seq),
            reads,
            ..JobResponse::refusal(id, status, reason)
        }
    }

    /// Serializes the response as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("type", "response");
        obj.str_field("id", &self.id);
        obj.str_field("status", self.status.as_str());
        if let Some(reason) = &self.reason {
            obj.str_field("reason", reason);
        }
        // Accepted jobs carry their sequence number whatever the final
        // status — transports route shed/unavailable responses by it.
        if let Some(seq) = self.seq {
            obj.u64_field("seq", seq);
        }
        if self.status == JobStatus::Ok {
            obj.u64_field("reads", self.reads);
            obj.u64_field("mappings", self.mappings);
            if let Some(batch) = self.batch {
                obj.u64_field("batch", batch);
            }
            if let Some(latency) = self.latency_s {
                obj.f64_field("latency_s", latency);
            }
            if let Some(sam) = &self.sam {
                obj.str_field("sam", sam);
            }
        } else if self.reads > 0 {
            obj.u64_field("reads", self.reads);
        }
        obj.finish()
    }

    /// Parses a response line written by [`JobResponse::to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns [`ReputeError::InputParse`] when the line is not a
    /// response object with a known status.
    pub fn parse(line: &str) -> Result<JobResponse, ReputeError> {
        let value = parse_json(line).ok_or_else(|| parse_error("response is not valid JSON"))?;
        let fields = value
            .as_obj()
            .ok_or_else(|| parse_error("response must be a JSON object"))?;
        if field(fields, "type").and_then(JsonValue::as_str) != Some("response") {
            return Err(parse_error("not a response record"));
        }
        let id = field(fields, "id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| parse_error("response needs an \"id\""))?
            .to_string();
        let status = field(fields, "status")
            .and_then(JsonValue::as_str)
            .and_then(JobStatus::parse)
            .ok_or_else(|| parse_error("response needs a known \"status\""))?;
        Ok(JobResponse {
            id,
            seq: field(fields, "seq").and_then(JsonValue::as_u64),
            status,
            reason: field(fields, "reason")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            reads: field(fields, "reads")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            mappings: field(fields, "mappings")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            batch: field(fields, "batch").and_then(JsonValue::as_u64),
            latency_s: field(fields, "latency_s").and_then(JsonValue::as_f64),
            sam: field(fields, "sam")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid sequence")
    }

    #[test]
    fn job_envelope_round_trips() {
        let env = JobEnvelope::new("j1", vec![("r1".into(), seq("ACGT"))])
            .with_tenant("acme")
            .with_delta(3)
            .with_deadline(2.5)
            .with_priority(7);
        let line = env.to_json_line();
        match parse_request(&line).expect("parses") {
            Request::Job(parsed) => assert_eq!(parsed, env),
            other => panic!("unexpected request {other:?}"),
        }
        // A plain envelope (no scheduling hints) also round-trips.
        let plain = JobEnvelope::new("j2", vec![("r1".into(), seq("ACGT"))]);
        match parse_request(&plain.to_json_line()).expect("parses") {
            Request::Job(parsed) => {
                assert_eq!(parsed.deadline_s, None);
                assert_eq!(parsed.priority, 0);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn shutdown_and_errors_parse() {
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).expect("shutdown"),
            Request::Shutdown
        );
        for bad in [
            "",
            "not json",
            r#"{"tenant":"x"}"#,
            r#"{"id":"a"}"#,
            r#"{"id":"a","reads":[{"id":"r"}]}"#,
            r#"{"id":"a","reads":[],"reads_path":"x.fq"}"#,
            r#"{"id":"a","reads":[],"mapper":"nope"}"#,
            r#"{"id":"a","reads":[],"deadline_s":-1.0}"#,
            r#"{"id":"a","reads":[],"deadline_s":"soon"}"#,
            r#"{"id":"a","reads":[],"priority":-3}"#,
            r#"{"op":"reboot"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let ok = JobResponse {
            id: "j1".into(),
            seq: Some(4),
            status: JobStatus::Ok,
            reason: None,
            reads: 2,
            mappings: 3,
            batch: Some(0),
            latency_s: Some(0.25),
            sam: Some("@HD\tVN:1.6\n".into()),
        };
        assert_eq!(JobResponse::parse(&ok.to_json_line()).expect("parses"), ok);
        let retry = JobResponse::refusal("j2", JobStatus::RetryLater, "queue full");
        let line = retry.to_json_line();
        assert!(line.contains("RETRY_LATER"));
        assert_eq!(JobResponse::parse(&line).expect("parses"), retry);
        let quota = JobResponse::refusal("j3", JobStatus::QuotaExceeded, "budget spent");
        let line = quota.to_json_line();
        assert!(line.contains("QUOTA_EXCEEDED"));
        assert_eq!(JobResponse::parse(&line).expect("parses"), quota);
    }

    #[test]
    fn shed_responses_round_trip_with_seq() {
        let shed = JobResponse::shed(
            "j4",
            17,
            8,
            JobStatus::DeadlineExceeded,
            "deadline 2.000000 s expired at 3.500000 s before dispatch",
        );
        let line = shed.to_json_line();
        assert!(line.contains("DEADLINE_EXCEEDED"));
        assert!(line.contains("\"seq\":17"), "{line}");
        assert!(line.contains("\"reads\":8"), "{line}");
        assert_eq!(JobResponse::parse(&line).expect("parses"), shed);

        let gone = JobResponse::shed(
            "j5",
            18,
            4,
            JobStatus::ServiceUnavailable,
            "all devices lost",
        );
        let line = gone.to_json_line();
        assert!(line.contains("SERVICE_UNAVAILABLE"));
        assert!(line.contains("\"seq\":18"), "{line}");
        assert_eq!(JobResponse::parse(&line).expect("parses"), gone);

        for s in [JobStatus::DeadlineExceeded, JobStatus::ServiceUnavailable] {
            assert_eq!(JobStatus::parse(s.as_str()), Some(s));
        }
    }

    #[test]
    fn mapper_and_prefilter_codes_round_trip() {
        for kind in [
            MapperKind::Repute,
            MapperKind::Coral,
            MapperKind::Razers3,
            MapperKind::Hobbes3,
            MapperKind::Yara,
            MapperKind::Gem,
            MapperKind::BwaMem,
        ] {
            assert_eq!(MapperKind::from_code(kind.code()), Some(kind));
            assert_eq!(kind.as_str().parse::<MapperKind>().ok(), Some(kind));
        }
        for mode in [
            PrefilterMode::None,
            PrefilterMode::Shd,
            PrefilterMode::Qgram,
            PrefilterMode::Both,
        ] {
            assert_eq!(prefilter_from_code(prefilter_code(mode)), Some(mode));
        }
        assert_eq!(MapperKind::from_code(200), None);
        assert_eq!(prefilter_from_code(9), None);
    }
}
