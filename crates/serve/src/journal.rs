//! Crash-safe job journal for the daemon.
//!
//! The journal is the daemon's only durable state. Three record kinds
//! are appended, each wrapped in a CRC-framed record (`[len u32]
//! [payload][crc32]`, all little-endian, same framing as the checkpoint
//! journal in `repute_core::journal`):
//!
//! * **Accepted** — written the moment a job passes admission, before
//!   any response is sent. Carries everything needed to re-execute the
//!   job: id, tenant, arrival time, deadline and priority, the
//!   *effective* (limit-clamped) mapping configuration, and the full
//!   read content. Spool files and socket buffers may vanish in a
//!   crash; the journal cannot.
//! * **BatchDone** — written once per completed scheduler batch, as a
//!   single frame. It lists every job in the batch together with each
//!   read's mapping locations, plus the batch's fault provenance: which
//!   devices were permanently lost by commit time and each struck
//!   device's transient-fault / retry / migration counts. Because the
//!   frame is one CRC unit, a batch commit is atomic: after a crash the
//!   batch either replays from its stored mappings (byte-identical
//!   responses, no re-execution) — with the provenance re-observed into
//!   the device-health registry, so a resume mid-fault-episode
//!   reconstructs the same fleet view — or it never happened and its
//!   jobs re-run under the same re-based fault plan. This is the "at
//!   most one in-flight batch re-executed" guarantee.
//! * **Shed** — the deadline-shedding commit: the simulated time and
//!   the sequence numbers of queued jobs whose deadlines expired before
//!   dispatch (`--shed-overdue`). Written before the `DEADLINE_EXCEEDED`
//!   responses are sent, so a crash-resume re-sheds exactly the same
//!   jobs instead of re-executing them.
//! * **State** — a snapshot of the scheduler state (simulated clock,
//!   sequence/batch counters, per-tenant fairness service, live quota
//!   window, shed counter, and the per-device health ladder). Written
//!   only as the first frame of a *compacted* journal, it replaces the
//!   dead records the compaction dropped: a resume applies the state,
//!   then replays the remaining frames as usual.
//!
//! **Compaction** keeps a long-lived daemon's journal proportional to
//! in-flight work: once enough records are dead (their jobs committed
//! and acknowledged), [`JobJournal::compact`] rewrites the header, one
//! State frame, and the still-live Accepted records into a sibling
//! file, fsyncs, and atomically renames it over the journal. A crash on
//! either side of the rename leaves a complete, valid journal; the
//! fingerprint policy is unchanged.
//!
//! Recovery truncates a torn tail (a partial or CRC-broken final
//! frame — the crash interrupted an append) but refuses a CRC break in
//! the interior as [`ReputeError::JournalCorrupt`], and refuses a
//! header whose [`RunFingerprint`] does not match the running server as
//! [`ReputeError::ResumeMismatch`] (same policy as checkpoint resume).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use repute_core::journal::{crc32, RunFingerprint};
use repute_core::{write_atomic, ReputeError};
use repute_genome::{DnaSeq, Strand};
use repute_mappers::Mapping;

use crate::admission::{ConfigKey, JobSpec};
use crate::envelope::{prefilter_code, prefilter_from_code, MapperKind};

/// Magic prefix of a serve journal file (v3: fault provenance in batch
/// records, Shed frames, health ladder + shed counter in State frames).
pub const JOURNAL_MAGIC: &[u8; 8] = b"RPSVJNL3";

const TAG_ACCEPTED: u8 = 1;
const TAG_BATCH_DONE: u8 = 2;
const TAG_STATE: u8 = 3;
const TAG_SHED: u8 = 4;

/// The mapping results of one job inside a committed batch: one inner
/// vector per read, in job read order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Acceptance sequence number of the job.
    pub seq: u64,
    /// Per-read mapping locations.
    pub mappings: Vec<Vec<Mapping>>,
}

/// Per-device fault provenance of one committed batch: what struck the
/// device while the batch ran (only devices with non-zero counts are
/// recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProvenance {
    /// Global device index.
    pub device: u32,
    /// Transient faults that struck the device during the batch.
    pub faults: u64,
    /// Retry attempts the device performed.
    pub retries: u64,
    /// Batches the device absorbed from dead devices (failover).
    pub migrated: u64,
}

/// A committed batch: which jobs ran together, when (simulated clock)
/// the batch completed, and its fault provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Batch ordinal (0-based, in execution order).
    pub batch: u64,
    /// Simulated completion time of the batch.
    pub completion_s: f64,
    /// Results for every job of the batch, in dispatch order.
    pub jobs: Vec<JobResult>,
    /// Devices permanently lost by the time the batch committed
    /// (ascending global indices; empty on a fault-free batch).
    pub lost: Vec<u32>,
    /// Per-device fault/retry/migration counts, ascending by device
    /// (empty on a fault-free batch).
    pub provenance: Vec<DeviceProvenance>,
}

/// One shed commit: queued jobs dropped at `at_s` because their
/// deadlines had expired before dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedRecord {
    /// Simulated time of the shed decision.
    pub at_s: f64,
    /// Sequence numbers of the shed jobs, in shed order.
    pub seqs: Vec<u64>,
}

/// The scheduler-state snapshot a compacted journal opens with: the
/// facts a resume can no longer derive once the dead records are gone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateRecord {
    /// Simulated clock at the snapshot.
    pub sim_clock: f64,
    /// Next acceptance sequence number.
    pub next_seq: u64,
    /// Batches committed so far (next batch ordinal).
    pub batches: u64,
    /// Jobs accepted so far (counter continuity).
    pub accepted: u64,
    /// Jobs completed so far (counter continuity).
    pub completed: u64,
    /// Responses replayed from the journal so far (counter continuity).
    pub replayed: u64,
    /// Jobs shed with `DEADLINE_EXCEEDED` so far (counter continuity).
    pub shed: u64,
    /// Per-tenant weighted-fair accumulated service, name-sorted.
    pub served: Vec<(String, f64)>,
    /// Live quota-window bookings `(seq, tenant, admitted_at, reads)`.
    pub quota: Vec<(u64, String, f64, u64)>,
    /// Per-device health ladder `(device, state code, cumulative
    /// faults)` in device order — see `repute_hetsim::HealthState::code`.
    pub health: Vec<(u32, u8, u64)>,
}

/// Everything recovered from a journal replay.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The state snapshot, when the journal was compacted.
    pub state: Option<StateRecord>,
    /// Accepted jobs in acceptance order.
    pub accepted: Vec<JobSpec>,
    /// Committed batches in commit order.
    pub batches: Vec<BatchRecord>,
    /// Shed commits in commit order.
    pub shed: Vec<ShedRecord>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReputeError> {
        if self.at + n > self.bytes.len() {
            return Err(corrupt("record payload truncated"));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ReputeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ReputeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ReputeError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn string(&mut self) -> Result<String, ReputeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("record string is not UTF-8"))
    }
}

fn corrupt(detail: &str) -> ReputeError {
    ReputeError::JournalCorrupt(detail.to_string())
}

fn encode_accepted(job: &JobSpec) -> Vec<u8> {
    let mut out = vec![TAG_ACCEPTED];
    put_u64(&mut out, job.seq);
    put_u64(&mut out, job.arrival_s.to_bits());
    match job.deadline_s {
        Some(d) => {
            out.push(1);
            put_u64(&mut out, d.to_bits());
        }
        None => out.push(0),
    }
    put_u32(&mut out, job.priority);
    put_u32(&mut out, job.key.delta);
    out.push(prefilter_code(job.key.prefilter));
    out.push(job.key.mapper.code());
    put_str(&mut out, &job.id);
    put_str(&mut out, &job.tenant);
    put_u32(&mut out, job.reads.len() as u32);
    for (rid, seq) in job.read_ids.iter().zip(&job.reads) {
        put_str(&mut out, rid);
        put_str(&mut out, &seq.to_string());
    }
    out
}

fn decode_accepted(cur: &mut Cursor<'_>) -> Result<JobSpec, ReputeError> {
    let seq = cur.u64()?;
    let arrival_s = f64::from_bits(cur.u64()?);
    let deadline_s = match cur.u8()? {
        0 => None,
        1 => Some(f64::from_bits(cur.u64()?)),
        _ => return Err(corrupt("unknown deadline flag in accepted record")),
    };
    let priority = cur.u32()?;
    let delta = cur.u32()?;
    let prefilter = prefilter_from_code(cur.u8()?)
        .ok_or_else(|| corrupt("unknown prefilter code in accepted record"))?;
    let mapper = MapperKind::from_code(cur.u8()?)
        .ok_or_else(|| corrupt("unknown mapper code in accepted record"))?;
    let id = cur.string()?;
    let tenant = cur.string()?;
    let n_reads = cur.u32()? as usize;
    let mut read_ids = Vec::with_capacity(n_reads);
    let mut reads = Vec::with_capacity(n_reads);
    for _ in 0..n_reads {
        read_ids.push(cur.string()?);
        let text = cur.string()?;
        reads.push(
            text.parse::<DnaSeq>()
                .map_err(|_| corrupt("invalid read sequence in accepted record"))?,
        );
    }
    Ok(JobSpec {
        seq,
        id,
        tenant,
        key: ConfigKey {
            delta,
            prefilter,
            mapper,
        },
        arrival_s,
        deadline_s,
        priority,
        read_ids,
        reads,
    })
}

fn encode_batch(record: &BatchRecord) -> Vec<u8> {
    let mut out = vec![TAG_BATCH_DONE];
    put_u64(&mut out, record.batch);
    put_u64(&mut out, record.completion_s.to_bits());
    put_u32(&mut out, record.jobs.len() as u32);
    for job in &record.jobs {
        put_u64(&mut out, job.seq);
        put_u32(&mut out, job.mappings.len() as u32);
        for per_read in &job.mappings {
            put_u32(&mut out, per_read.len() as u32);
            for m in per_read {
                put_u32(&mut out, m.position);
                out.push(match m.strand {
                    Strand::Forward => 0,
                    Strand::Reverse => 1,
                });
                put_u32(&mut out, m.distance);
            }
        }
    }
    put_u32(&mut out, record.lost.len() as u32);
    for dev in &record.lost {
        put_u32(&mut out, *dev);
    }
    put_u32(&mut out, record.provenance.len() as u32);
    for p in &record.provenance {
        put_u32(&mut out, p.device);
        put_u64(&mut out, p.faults);
        put_u64(&mut out, p.retries);
        put_u64(&mut out, p.migrated);
    }
    out
}

fn decode_batch(cur: &mut Cursor<'_>) -> Result<BatchRecord, ReputeError> {
    let batch = cur.u64()?;
    let completion_s = f64::from_bits(cur.u64()?);
    let n_jobs = cur.u32()? as usize;
    let mut jobs = Vec::with_capacity(n_jobs);
    for _ in 0..n_jobs {
        let seq = cur.u64()?;
        let n_reads = cur.u32()? as usize;
        let mut mappings = Vec::with_capacity(n_reads);
        for _ in 0..n_reads {
            let n = cur.u32()? as usize;
            let mut per_read = Vec::with_capacity(n);
            for _ in 0..n {
                let position = cur.u32()?;
                let strand = match cur.u8()? {
                    0 => Strand::Forward,
                    1 => Strand::Reverse,
                    _ => return Err(corrupt("unknown strand code in batch record")),
                };
                let distance = cur.u32()?;
                per_read.push(Mapping {
                    position,
                    strand,
                    distance,
                });
            }
            mappings.push(per_read);
        }
        jobs.push(JobResult { seq, mappings });
    }
    let n_lost = cur.u32()? as usize;
    let mut lost = Vec::with_capacity(n_lost);
    for _ in 0..n_lost {
        lost.push(cur.u32()?);
    }
    let n_prov = cur.u32()? as usize;
    let mut provenance = Vec::with_capacity(n_prov);
    for _ in 0..n_prov {
        provenance.push(DeviceProvenance {
            device: cur.u32()?,
            faults: cur.u64()?,
            retries: cur.u64()?,
            migrated: cur.u64()?,
        });
    }
    Ok(BatchRecord {
        batch,
        jobs,
        completion_s,
        lost,
        provenance,
    })
}

fn encode_shed(record: &ShedRecord) -> Vec<u8> {
    let mut out = vec![TAG_SHED];
    put_u64(&mut out, record.at_s.to_bits());
    put_u32(&mut out, record.seqs.len() as u32);
    for seq in &record.seqs {
        put_u64(&mut out, *seq);
    }
    out
}

fn decode_shed(cur: &mut Cursor<'_>) -> Result<ShedRecord, ReputeError> {
    let at_s = f64::from_bits(cur.u64()?);
    let n = cur.u32()? as usize;
    let mut seqs = Vec::with_capacity(n);
    for _ in 0..n {
        seqs.push(cur.u64()?);
    }
    Ok(ShedRecord { at_s, seqs })
}

fn encode_state(state: &StateRecord) -> Vec<u8> {
    let mut out = vec![TAG_STATE];
    put_u64(&mut out, state.sim_clock.to_bits());
    put_u64(&mut out, state.next_seq);
    put_u64(&mut out, state.batches);
    put_u64(&mut out, state.accepted);
    put_u64(&mut out, state.completed);
    put_u64(&mut out, state.replayed);
    put_u64(&mut out, state.shed);
    put_u32(&mut out, state.served.len() as u32);
    for (tenant, served) in &state.served {
        put_str(&mut out, tenant);
        put_u64(&mut out, served.to_bits());
    }
    put_u32(&mut out, state.quota.len() as u32);
    for (seq, tenant, at, reads) in &state.quota {
        put_u64(&mut out, *seq);
        put_str(&mut out, tenant);
        put_u64(&mut out, at.to_bits());
        put_u64(&mut out, *reads);
    }
    put_u32(&mut out, state.health.len() as u32);
    for (device, code, faults) in &state.health {
        put_u32(&mut out, *device);
        out.push(*code);
        put_u64(&mut out, *faults);
    }
    out
}

fn decode_state(cur: &mut Cursor<'_>) -> Result<StateRecord, ReputeError> {
    let sim_clock = f64::from_bits(cur.u64()?);
    let next_seq = cur.u64()?;
    let batches = cur.u64()?;
    let accepted = cur.u64()?;
    let completed = cur.u64()?;
    let replayed = cur.u64()?;
    let shed = cur.u64()?;
    let n_served = cur.u32()? as usize;
    let mut served = Vec::with_capacity(n_served);
    for _ in 0..n_served {
        let tenant = cur.string()?;
        served.push((tenant, f64::from_bits(cur.u64()?)));
    }
    let n_quota = cur.u32()? as usize;
    let mut quota = Vec::with_capacity(n_quota);
    for _ in 0..n_quota {
        let seq = cur.u64()?;
        let tenant = cur.string()?;
        let at = f64::from_bits(cur.u64()?);
        let reads = cur.u64()?;
        quota.push((seq, tenant, at, reads));
    }
    let n_health = cur.u32()? as usize;
    let mut health = Vec::with_capacity(n_health);
    for _ in 0..n_health {
        let device = cur.u32()?;
        let code = cur.u8()?;
        let faults = cur.u64()?;
        health.push((device, code, faults));
    }
    Ok(StateRecord {
        sim_clock,
        next_seq,
        batches,
        accepted,
        completed,
        replayed,
        shed,
        served,
        quota,
        health,
    })
}

fn header_bytes(fingerprint: &RunFingerprint) -> Vec<u8> {
    let mut header = Vec::with_capacity(36);
    header.extend_from_slice(JOURNAL_MAGIC);
    put_u64(&mut header, fingerprint.config);
    put_u64(&mut header, fingerprint.workload);
    put_u64(&mut header, fingerprint.shape);
    let crc = crc32(&header[8..]);
    put_u32(&mut header, crc);
    header
}

fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Append-only journal of accepted jobs and committed batches.
#[derive(Debug)]
pub struct JobJournal {
    file: File,
    path: PathBuf,
}

impl JobJournal {
    /// Creates a fresh journal at `path`, writing the header (magic +
    /// fingerprint + header CRC). An existing file is truncated.
    pub fn create(path: &Path, fingerprint: &RunFingerprint) -> Result<JobJournal, ReputeError> {
        let header = header_bytes(fingerprint);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| ReputeError::io_at(path, e))?;
        file.write_all(&header)
            .and_then(|()| file.sync_all())
            .map_err(|e| ReputeError::io_at(path, e))?;
        Ok(JobJournal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing journal for resume: validates the header
    /// against `fingerprint`, replays every intact frame, truncates a
    /// torn tail, and returns the journal positioned for appends plus
    /// everything recovered.
    pub fn open(
        path: &Path,
        fingerprint: &RunFingerprint,
    ) -> Result<(JobJournal, Recovered), ReputeError> {
        let io = |e: std::io::Error| ReputeError::io_at(path, e);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io)?;
        if bytes.len() < 36 || &bytes[..8] != JOURNAL_MAGIC {
            return Err(corrupt("journal header missing or wrong magic"));
        }
        if crc32(&bytes[8..32]) != u32::from_le_bytes([bytes[32], bytes[33], bytes[34], bytes[35]])
        {
            return Err(corrupt("journal header CRC mismatch"));
        }
        let mut words = [0u64; 3];
        for (i, w) in words.iter_mut().enumerate() {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[8 + i * 8..16 + i * 8]);
            *w = u64::from_le_bytes(raw);
        }
        let found = RunFingerprint {
            config: words[0],
            workload: words[1],
            shape: words[2],
        };
        if found != *fingerprint {
            return Err(ReputeError::ResumeMismatch(format!(
                "serve journal was written by run {} but this server is {} \
                 (different reference, limits, or platform)",
                found.render(),
                fingerprint.render()
            )));
        }

        let mut recovered = Recovered::default();
        let mut at = 36usize;
        let mut intact_end = at;
        while at < bytes.len() {
            // Frame = [len][payload][crc]; anything short of that at the
            // end of the file is a torn tail.
            if at + 4 > bytes.len() {
                break;
            }
            let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
                as usize;
            let payload_at = at + 4;
            let crc_at = payload_at + len;
            if crc_at + 4 > bytes.len() {
                break;
            }
            let payload = &bytes[payload_at..crc_at];
            let stored = u32::from_le_bytes([
                bytes[crc_at],
                bytes[crc_at + 1],
                bytes[crc_at + 2],
                bytes[crc_at + 3],
            ]);
            if crc32(payload) != stored {
                if crc_at + 4 == bytes.len() {
                    break; // torn final frame: crash mid-append
                }
                return Err(corrupt("record CRC mismatch before end of journal"));
            }
            let mut cur = Cursor {
                bytes: payload,
                at: 0,
            };
            match cur.u8()? {
                TAG_ACCEPTED => recovered.accepted.push(decode_accepted(&mut cur)?),
                TAG_BATCH_DONE => recovered.batches.push(decode_batch(&mut cur)?),
                TAG_SHED => recovered.shed.push(decode_shed(&mut cur)?),
                TAG_STATE => {
                    // Only compaction writes state frames, always as the
                    // first frame of the rewritten file.
                    if intact_end != 36 {
                        return Err(corrupt("state record after the first frame"));
                    }
                    recovered.state = Some(decode_state(&mut cur)?);
                }
                _ => return Err(corrupt("unknown record tag")),
            }
            at = crc_at + 4;
            intact_end = at;
        }
        if intact_end < bytes.len() {
            file.set_len(intact_end as u64).map_err(io)?;
        }
        file.seek(SeekFrom::End(0)).map_err(io)?;
        Ok((
            JobJournal {
                file,
                path: path.to_path_buf(),
            },
            recovered,
        ))
    }

    fn append(&mut self, payload: &[u8]) -> Result<(), ReputeError> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_frame(&mut frame, payload);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| ReputeError::io_at(&self.path, e))
    }

    /// Journals an accepted job (called before the acceptance response
    /// is sent).
    pub fn record_accepted(&mut self, job: &JobSpec) -> Result<(), ReputeError> {
        self.append(&encode_accepted(job))
    }

    /// Journals a completed batch as one atomic frame.
    pub fn record_batch(&mut self, record: &BatchRecord) -> Result<(), ReputeError> {
        self.append(&encode_batch(record))
    }

    /// Journals a deadline-shed commit (written before the
    /// `DEADLINE_EXCEEDED` responses are sent, so resume re-sheds the
    /// same jobs).
    pub fn record_shed(&mut self, record: &ShedRecord) -> Result<(), ReputeError> {
        self.append(&encode_shed(record))
    }

    /// Rewrites the journal down to its live content: header, one state
    /// frame, and the Accepted records of the still-queued jobs, in
    /// acceptance order. The replacement is written to a sibling file,
    /// fsynced, and atomically renamed over the journal, so a crash at
    /// any point leaves a complete valid journal (either the old one or
    /// the compacted one). The journal stays open for appends.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn compact(
        &mut self,
        fingerprint: &RunFingerprint,
        state: &StateRecord,
        live: &[&JobSpec],
    ) -> Result<(), ReputeError> {
        let mut bytes = header_bytes(fingerprint);
        put_frame(&mut bytes, &encode_state(state));
        for job in live {
            put_frame(&mut bytes, &encode_accepted(job));
        }
        write_atomic(&self.path, &bytes)?;
        // The old handle still points at the unlinked pre-compaction
        // inode; reopen so appends land in the compacted file.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| ReputeError::io_at(&self.path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| ReputeError::io_at(&self.path, e))?;
        self.file = file;
        Ok(())
    }

    /// Current journal size in bytes (compaction ablations assert the
    /// post-compaction bound).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] when the metadata read fails.
    pub fn size_bytes(&self) -> Result<u64, ReputeError> {
        self.file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| ReputeError::io_at(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_prefilter::PrefilterMode;

    fn fp() -> RunFingerprint {
        RunFingerprint {
            config: 1,
            workload: 2,
            shape: 3,
        }
    }

    fn job(seq: u64) -> JobSpec {
        JobSpec {
            seq,
            id: format!("job-{seq}"),
            tenant: "acme".to_string(),
            key: ConfigKey {
                delta: 4,
                prefilter: PrefilterMode::Shd,
                mapper: MapperKind::Repute,
            },
            arrival_s: 0.25 * seq as f64,
            deadline_s: if seq.is_multiple_of(2) {
                Some(3.5)
            } else {
                None
            },
            priority: seq as u32,
            read_ids: vec!["r0".to_string(), "r1".to_string()],
            reads: vec![
                "ACGTACGT".parse().expect("seq"),
                "TTTTACGT".parse().expect("seq"),
            ],
        }
    }

    fn batch(batch: u64) -> BatchRecord {
        BatchRecord {
            batch,
            completion_s: 1.5,
            jobs: vec![JobResult {
                seq: batch,
                mappings: vec![
                    vec![Mapping {
                        position: 7,
                        strand: Strand::Reverse,
                        distance: 2,
                    }],
                    vec![],
                ],
            }],
            lost: vec![2],
            provenance: vec![DeviceProvenance {
                device: 1,
                faults: 3,
                retries: 2,
                migrated: 1,
            }],
        }
    }

    fn state() -> StateRecord {
        StateRecord {
            sim_clock: 12.5,
            next_seq: 9,
            batches: 4,
            accepted: 9,
            completed: 7,
            replayed: 2,
            shed: 1,
            served: vec![("acme".to_string(), 6.5), ("beta".to_string(), 2.0)],
            quota: vec![(5, "acme".to_string(), 11.0, 64)],
            health: vec![(0, 0, 0), (1, 1, 3), (2, 3, 0)],
        }
    }

    #[test]
    fn round_trips_jobs_and_batches() {
        let dir = std::env::temp_dir().join(format!("serve-jnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("round_trip.jnl");
        {
            let mut j = JobJournal::create(&path, &fp()).expect("create");
            j.record_accepted(&job(0)).expect("job");
            j.record_accepted(&job(1)).expect("job");
            j.record_batch(&batch(0)).expect("batch");
            j.record_shed(&ShedRecord {
                at_s: 2.25,
                seqs: vec![1],
            })
            .expect("shed");
        }
        let (_, recovered) = JobJournal::open(&path, &fp()).expect("open");
        assert_eq!(recovered.accepted, vec![job(0), job(1)]);
        assert_eq!(recovered.batches, vec![batch(0)]);
        assert_eq!(
            recovered.shed,
            vec![ShedRecord {
                at_s: 2.25,
                seqs: vec![1],
            }]
        );
        assert_eq!(recovered.state, None);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = std::env::temp_dir().join(format!("serve-jnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("torn_tail.jnl");
        {
            let mut j = JobJournal::create(&path, &fp()).expect("create");
            j.record_accepted(&job(0)).expect("job");
            j.record_accepted(&job(1)).expect("job");
        }
        // Chop bytes off the final frame: crash mid-append.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("write");
        let (mut j, recovered) = JobJournal::open(&path, &fp()).expect("open");
        assert_eq!(recovered.accepted, vec![job(0)]);
        // The truncated journal accepts new appends cleanly.
        j.record_accepted(&job(2)).expect("job");
        drop(j);
        let (_, again) = JobJournal::open(&path, &fp()).expect("reopen");
        assert_eq!(again.accepted, vec![job(0), job(2)]);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn interior_corruption_and_fingerprint_mismatch_are_refused() {
        let dir = std::env::temp_dir().join(format!("serve-jnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("corrupt.jnl");
        {
            let mut j = JobJournal::create(&path, &fp()).expect("create");
            j.record_accepted(&job(0)).expect("job");
            j.record_accepted(&job(1)).expect("job");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[40] ^= 0xFF; // flip a byte inside the first frame
        std::fs::write(&path, &bytes).expect("write");
        let err = JobJournal::open(&path, &fp()).expect_err("corrupt");
        assert!(matches!(err, ReputeError::JournalCorrupt { .. }));

        let other = RunFingerprint {
            config: 9,
            workload: 9,
            shape: 9,
        };
        JobJournal::create(&path, &other).expect("recreate");
        let err = JobJournal::open(&path, &fp()).expect_err("mismatch");
        assert!(matches!(err, ReputeError::ResumeMismatch { .. }));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_state() {
        let dir = std::env::temp_dir().join(format!("serve-jnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("compact.jnl");
        let mut j = JobJournal::create(&path, &fp()).expect("create");
        for seq in 0..8 {
            j.record_accepted(&job(seq)).expect("job");
        }
        for b in 0..6 {
            j.record_batch(&batch(b)).expect("batch");
        }
        let before = j.size_bytes().expect("size");
        // Jobs 6 and 7 are still live; everything else is dead.
        let live = [job(6), job(7)];
        let live_refs: Vec<&JobSpec> = live.iter().collect();
        j.compact(&fp(), &state(), &live_refs).expect("compact");
        let after = j.size_bytes().expect("size");
        assert!(
            after < before,
            "compaction must shrink the journal ({before} -> {after})"
        );
        // The compacted journal stays appendable.
        j.record_accepted(&job(8)).expect("append after compact");
        drop(j);
        let (_, recovered) = JobJournal::open(&path, &fp()).expect("open");
        assert_eq!(recovered.state, Some(state()));
        assert_eq!(recovered.accepted, vec![job(6), job(7), job(8)]);
        assert!(recovered.batches.is_empty());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn state_after_the_first_frame_is_refused() {
        let dir = std::env::temp_dir().join(format!("serve-jnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("late_state.jnl");
        let mut bytes = header_bytes(&fp());
        put_frame(&mut bytes, &encode_accepted(&job(0)));
        put_frame(&mut bytes, &encode_state(&state()));
        std::fs::write(&path, &bytes).expect("write");
        let err = JobJournal::open(&path, &fp()).expect_err("late state");
        assert!(matches!(err, ReputeError::JournalCorrupt { .. }));
        std::fs::remove_file(&path).expect("cleanup");
    }
}
