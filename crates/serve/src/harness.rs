//! Deterministic in-process harness: drives the full
//! submit → schedule → journal → respond loop without sockets, spool
//! directories, or wall-clock sleeps, so tests (and the bench smoke
//! ablation) exercise exactly the code the daemon runs.
//!
//! The harness speaks the wire format — requests go in as JSON lines,
//! responses come back as [`JobResponse`] values — and adds the one
//! thing a live daemon cannot offer a test: [`ServeHarness::crash_mid_batch`],
//! which executes the next scheduler batch but "loses power" before the
//! batch commit, leaving the journal exactly as a real crash would.

use std::path::{Path, PathBuf};

use repute_core::ReputeError;
use repute_hetsim::Platform;
use repute_mappers::multiref::ReferenceSet;

use crate::envelope::{parse_request, JobEnvelope, JobResponse, Request};
use crate::server::{ServeCore, ServeCounters, ServeOptions};

/// An in-process daemon for tests and benches (see the module docs).
pub struct ServeHarness {
    core: ServeCore,
    journal: Option<PathBuf>,
}

impl ServeHarness {
    /// Builds a harness around a fresh [`ServeCore`] with no journal.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeCore::new`] configuration errors.
    pub fn new(
        set: ReferenceSet,
        platform: Platform,
        options: ServeOptions,
    ) -> Result<ServeHarness, ReputeError> {
        Ok(ServeHarness {
            core: ServeCore::new(set, platform, options)?,
            journal: None,
        })
    }

    /// Builds a harness whose core journals through `path`. With
    /// `resume = true` the journal is replayed first and the responses
    /// of already-committed jobs are returned alongside the harness
    /// (byte-identical to the ones the crashed daemon produced).
    ///
    /// # Errors
    ///
    /// Propagates construction and journal-replay errors
    /// ([`ReputeError::ResumeMismatch`], [`ReputeError::JournalCorrupt`],
    /// I/O).
    pub fn with_journal(
        set: ReferenceSet,
        platform: Platform,
        options: ServeOptions,
        path: &Path,
        resume: bool,
    ) -> Result<(ServeHarness, Vec<JobResponse>), ReputeError> {
        let mut core = ServeCore::new(set, platform, options)?;
        let replayed = core.attach_journal(path, resume)?;
        Ok((
            ServeHarness {
                core,
                journal: Some(path.to_path_buf()),
            },
            replayed,
        ))
    }

    /// Submits one job envelope. `None` means accepted (the response
    /// comes from [`ServeHarness::drain`]); `Some` is an immediate
    /// `REJECTED`/`RETRY_LATER`/`QUOTA_EXCEEDED` refusal.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O failures.
    pub fn submit(&mut self, envelope: JobEnvelope) -> Result<Option<JobResponse>, ReputeError> {
        self.core.submit(envelope)
    }

    /// Submits one request *line* exactly as the socket transport
    /// would: parse, then admit. A parse failure is returned as an
    /// error (the transport answers it with a `REJECTED` line).
    ///
    /// # Errors
    ///
    /// [`ReputeError::InputParse`] for a malformed line; journal I/O
    /// failures from admission.
    pub fn submit_line(&mut self, line: &str) -> Result<Option<JobResponse>, ReputeError> {
        match parse_request(line)? {
            Request::Job(envelope) => self.core.submit(envelope),
            Request::Shutdown => Ok(None),
        }
    }

    /// Executes one scheduler batch (no-op on an empty queue).
    ///
    /// # Errors
    ///
    /// Propagates executor and journal failures.
    pub fn run_batch(&mut self) -> Result<Vec<JobResponse>, ReputeError> {
        self.core.run_batch()
    }

    /// Graceful drain: runs batches until the queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates executor and journal failures.
    pub fn drain(&mut self) -> Result<Vec<JobResponse>, ReputeError> {
        self.core.drain()
    }

    /// Executes the next batch but crashes before the commit: no
    /// journal record, no clock advance, no telemetry — exactly the
    /// window a real power loss could hit. The harness is consumed
    /// (the daemon is dead); build a new one with
    /// [`ServeHarness::with_journal`] and `resume = true` to restart.
    /// Returns the job ids the lost batch contained.
    ///
    /// # Errors
    ///
    /// Propagates executor failures from the doomed batch.
    pub fn crash_mid_batch(mut self) -> Result<Vec<String>, ReputeError> {
        let responses = self.core.run_batch_impl(false)?;
        Ok(responses.into_iter().map(|r| r.id).collect())
    }

    /// The journal path this harness was built with, if any.
    pub fn journal_path(&self) -> Option<&Path> {
        self.journal.as_deref()
    }

    /// Read access to the core for counters, telemetry, and traces.
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// Mutable access to the core, so tests can drive the transport
    /// layers ([`crate::transport::MuxServer`], the spool scanner)
    /// against a harness-built daemon.
    pub fn core_mut(&mut self) -> &mut ServeCore {
        &mut self.core
    }

    /// Monotone service counters (convenience for assertions).
    pub fn counters(&self) -> ServeCounters {
        self.core.counters()
    }
}
