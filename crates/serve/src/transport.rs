//! Transports that feed the daemon core: a Unix-domain socket speaking
//! newline-delimited JSON, and a spool directory of job files.
//!
//! The socket protocol is strictly line-oriented: a client connects,
//! writes one request per line ([`crate::envelope::parse_request`]'s
//! grammar), closes its write half, and reads one response line per
//! request, in request order. Several clients may be connected at once:
//! an acceptor thread and one reader thread per connection feed a
//! single event channel, and the main loop — the only thread that ever
//! touches the [`ServeCore`] — applies events in arrival order. The
//! core stays single-threaded and deterministic; concurrency lives
//! entirely in the byte-shoveling layer. Responses are routed back to
//! the submitting connection by acceptance seq (see [`MuxServer`]).
//!
//! A connection that fails — mid-line disconnect, garbage that breaks
//! the stream, a broken pipe on the write-back — is dropped and counted
//! (`connection_errors`); it never terminates the daemon. The control
//! line `{"op":"shutdown"}` drains outstanding work, answers the
//! requesting connection, then stops the listener (graceful drain).
//!
//! The spool transport scans a directory for `*.json` job files
//! (sorted by name for determinism), admits each, drains, and writes
//! `<name>.response` next to every input, renaming the input to
//! `<name>.done` so a rescan never double-submits. Inputs whose
//! `.response` already exists (a crash landed between the response
//! write and the rename) are skipped and counted (`spool_skipped`)
//! instead of re-executed; files carrying more than one request line,
//! and files that cannot be read at all, are rejected with a typed
//! response rather than aborting the scan.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use repute_core::ReputeError;

use crate::envelope::{parse_request, JobResponse, JobStatus, Request};
use crate::server::ServeCore;

fn io_at(path: &Path, e: std::io::Error) -> ReputeError {
    ReputeError::io_at(path, e)
}

/// One connection slot: either an already-answered refusal or an
/// accepted job waiting for the response of the given acceptance seq.
enum Slot {
    Ready(JobResponse),
    Pending(u64),
}

/// The connection-multiplexing state machine between the byte layer and
/// the deterministic core.
///
/// `MuxServer` owns no sockets and spawns no threads — it is driven by
/// events (`open` / [`MuxServer::on_line`] / [`MuxServer::on_eof`] /
/// [`MuxServer::on_error`]) and all core access happens inside the
/// caller's thread, in event order. That makes the daemon's behavior a
/// pure function of the event sequence (the fixed-seed interleaving
/// test in `tests/serve_concurrent.rs` exploits exactly this), and
/// lets the socket driver stay a thin shoveling layer.
///
/// Responses are routed by the server-assigned acceptance seq, not the
/// client-chosen job id: concurrent clients are free to reuse ids.
#[derive(Default)]
pub struct MuxServer {
    conns: HashMap<u64, Vec<Slot>>,
    // Responses produced by a drain before their connection reached
    // EOF, keyed by acceptance seq.
    undelivered: HashMap<u64, JobResponse>,
    // Seqs whose connection died before delivery: their responses are
    // discarded on arrival instead of accumulating forever.
    orphaned: HashSet<u64>,
}

impl MuxServer {
    /// A mux with no connections.
    pub fn new() -> MuxServer {
        MuxServer::default()
    }

    /// Registers a new connection.
    pub fn open(&mut self, conn: u64) {
        self.conns.entry(conn).or_default();
    }

    /// Feeds one request line from a connection. Returns `true` when
    /// the line asked for a shutdown (the caller should answer the
    /// connection via [`MuxServer::on_eof`] and stop accepting).
    ///
    /// # Errors
    ///
    /// Journal I/O errors propagate from admission; a malformed line is
    /// *not* an error (the connection gets a `REJECTED` response).
    pub fn on_line(
        &mut self,
        core: &mut ServeCore,
        conn: u64,
        line: &str,
    ) -> Result<bool, ReputeError> {
        if line.trim().is_empty() {
            return Ok(false);
        }
        let slot = match parse_request(line) {
            Err(e) => {
                core.note_rejected();
                Slot::Ready(JobResponse::refusal("", JobStatus::Rejected, e.to_string()))
            }
            Ok(Request::Shutdown) => return Ok(true),
            Ok(Request::Job(envelope)) => match core.submit(envelope)? {
                Some(refusal) => Slot::Ready(refusal),
                None => Slot::Pending(core.last_accepted_seq()),
            },
        };
        self.conns.entry(conn).or_default().push(slot);
        Ok(false)
    }

    /// Handles a connection's clean EOF: drains the core, stashes every
    /// produced response by seq, and returns this connection's response
    /// lines in request order. The connection is forgotten.
    ///
    /// # Errors
    ///
    /// Batch-execution and journal errors propagate from the drain.
    pub fn on_eof(&mut self, core: &mut ServeCore, conn: u64) -> Result<Vec<String>, ReputeError> {
        // Refusals carry no seq and are answered at submit time; only
        // accepted jobs' responses flow through here.
        for response in core.drain()? {
            if let Some(seq) = response.seq {
                if !self.orphaned.remove(&seq) {
                    self.undelivered.insert(seq, response);
                }
            }
        }
        let slots = self.conns.remove(&conn).unwrap_or_default();
        let mut lines = Vec::with_capacity(slots.len());
        for slot in slots {
            let response = match slot {
                Slot::Ready(response) => response,
                Slot::Pending(seq) => self.undelivered.remove(&seq).unwrap_or_else(|| {
                    JobResponse::refusal("", JobStatus::Rejected, "response was not produced")
                }),
            };
            lines.push(response.to_json_line());
        }
        Ok(lines)
    }

    /// Handles a connection failure (read error or undeliverable
    /// write): the connection is forgotten, its pending responses are
    /// marked orphaned (discarded when produced — the jobs themselves
    /// still run, they were journaled at admission), and the
    /// `connection_errors` counter is bumped. The daemon keeps serving.
    pub fn on_error(&mut self, core: &mut ServeCore, conn: u64) {
        core.note_connection_error();
        for slot in self.conns.remove(&conn).unwrap_or_default() {
            if let Slot::Pending(seq) = slot {
                if self.undelivered.remove(&seq).is_none() {
                    self.orphaned.insert(seq);
                }
            }
        }
    }

    /// Open connections (test observability).
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }
}

enum Event {
    Open(u64, UnixStream),
    Line(u64, String),
    Eof(u64),
    ReadError(u64),
    AcceptFailed,
}

fn spawn_reader(id: u64, stream: UnixStream, tx: mpsc::Sender<Event>) {
    std::thread::spawn(move || {
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let event = match line {
                Ok(line) => Event::Line(id, line),
                Err(_) => {
                    let _ = tx.send(Event::ReadError(id));
                    return;
                }
            };
            if tx.send(event).is_err() {
                return;
            }
        }
        let _ = tx.send(Event::Eof(id));
    });
}

fn spawn_acceptor(listener: UnixListener, tx: mpsc::Sender<Event>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let mut next_id = 0u64;
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if tx.send(Event::AcceptFailed).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if stop.load(Ordering::Relaxed) {
                return; // the wake-up connection of a shutdown
            }
            let id = next_id;
            next_id += 1;
            // The reader thread owns one handle; the main loop keeps the
            // original for the write-back.
            let read_half = match stream.try_clone() {
                Ok(half) => half,
                Err(_) => {
                    if tx.send(Event::AcceptFailed).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if tx.send(Event::Open(id, stream)).is_err() {
                return;
            }
            spawn_reader(id, read_half, tx.clone());
        }
    });
}

fn write_lines(stream: &UnixStream, lines: &[String]) -> std::io::Result<()> {
    let mut writer = BufWriter::new(stream);
    for line in lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()
}

/// Binds `path` and serves connections — several at a time — until a
/// client sends `{"op":"shutdown"}`. A stale socket file at `path` is
/// removed before binding; the file is removed again on exit, clean or
/// not.
///
/// # Errors
///
/// [`ReputeError::Io`] on bind failures; admission and batch errors
/// propagate from the core. Per-connection I/O failures do *not*
/// propagate — the connection is dropped and counted.
pub fn serve_socket(core: &mut ServeCore, path: &Path) -> Result<(), ReputeError> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| io_at(path, e))?;
    }
    let listener = UnixListener::bind(path).map_err(|e| io_at(path, e))?;
    let stop = Arc::new(AtomicBool::new(false));
    let result = serve_socket_loop(core, listener, &stop);
    // Unblock the acceptor (it may be parked in accept) and remove the
    // socket file on *every* exit path, error included.
    stop.store(true, Ordering::Relaxed);
    let _ = UnixStream::connect(path);
    let _ = std::fs::remove_file(path);
    result
}

fn serve_socket_loop(
    core: &mut ServeCore,
    listener: UnixListener,
    stop: &Arc<AtomicBool>,
) -> Result<(), ReputeError> {
    let (tx, rx) = mpsc::channel();
    spawn_acceptor(listener, tx, Arc::clone(stop));
    let mut mux = MuxServer::new();
    let mut writers: HashMap<u64, UnixStream> = HashMap::new();
    loop {
        // The acceptor holds the sender for the daemon's life; a closed
        // channel means the acceptor died, which only happens on stop.
        let Ok(event) = rx.recv() else {
            return Ok(());
        };
        match event {
            Event::Open(id, stream) => {
                mux.open(id);
                writers.insert(id, stream);
            }
            Event::AcceptFailed => core.note_connection_error(),
            Event::Line(id, line) => {
                if mux.on_line(core, id, &line)? {
                    // Graceful shutdown: answer the requesting
                    // connection's earlier requests, then stop. Other
                    // still-open connections are dropped — the daemon
                    // is going away.
                    let lines = mux.on_eof(core, id)?;
                    if let Some(stream) = writers.remove(&id) {
                        if write_lines(&stream, &lines).is_err() {
                            core.note_connection_error();
                        }
                    }
                    return Ok(());
                }
            }
            Event::Eof(id) => {
                let lines = mux.on_eof(core, id)?;
                if let Some(stream) = writers.remove(&id) {
                    if write_lines(&stream, &lines).is_err() {
                        // The client vanished between asking and the
                        // answer; its jobs completed and were journaled,
                        // only the delivery failed.
                        core.note_connection_error();
                    }
                }
                if core.is_unavailable() {
                    // Every simulated device has been lost. The queue
                    // was already flushed with SERVICE_UNAVAILABLE
                    // responses; answer the connections that are still
                    // open and exit instead of refusing forever.
                    let mut open: Vec<u64> = writers.keys().copied().collect();
                    open.sort_unstable();
                    for id in open {
                        let lines = mux.on_eof(core, id)?;
                        if let Some(stream) = writers.remove(&id) {
                            if write_lines(&stream, &lines).is_err() {
                                core.note_connection_error();
                            }
                        }
                    }
                    return Ok(());
                }
            }
            Event::ReadError(id) => {
                mux.on_error(core, id);
                writers.remove(&id);
            }
        }
    }
}

/// Client side of the line protocol: connects to `socket`, writes every
/// request line, half-closes, and returns the parsed response lines.
///
/// # Errors
///
/// [`ReputeError::Io`] on connection failures,
/// [`ReputeError::InputParse`] when the server answers with something
/// that is not a response line.
pub fn submit_over_socket(
    socket: &Path,
    lines: &[String],
) -> Result<Vec<JobResponse>, ReputeError> {
    let stream = UnixStream::connect(socket).map_err(|e| io_at(socket, e))?;
    {
        let mut writer = BufWriter::new(&stream);
        for line in lines {
            writeln!(writer, "{line}").map_err(|e| io_at(socket, e))?;
        }
        writer.flush().map_err(|e| io_at(socket, e))?;
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| io_at(socket, e))?;
    let reader = BufReader::new(&stream);
    let mut responses = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| io_at(socket, e))?;
        if line.trim().is_empty() {
            continue;
        }
        responses.push(JobResponse::parse(&line)?);
    }
    Ok(responses)
}

/// Asks a running daemon to drain and shut down.
///
/// # Errors
///
/// [`ReputeError::Io`] when the socket cannot be reached.
pub fn shutdown_over_socket(socket: &Path) -> Result<(), ReputeError> {
    let stream = UnixStream::connect(socket).map_err(|e| io_at(socket, e))?;
    let mut writer = BufWriter::new(&stream);
    writer
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .map_err(|e| io_at(socket, e))?;
    writer.flush().map_err(|e| io_at(socket, e))?;
    Ok(())
}

/// Scans `dir` once for `*.json` job files (name-sorted), admits each,
/// drains, writes `<name>.response` beside every input, and renames
/// inputs to `<name>.done`. Returns how many job files were processed
/// (skipped crash-window leftovers count as processed — their rename is
/// completed).
///
/// # Errors
///
/// [`ReputeError::Io`] on directory or file failures; admission and
/// batch errors propagate from the core.
pub fn process_spool_once(core: &mut ServeCore, dir: &Path) -> Result<usize, ReputeError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_at(dir, e))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_at(dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            files.push(path);
        }
    }
    files.sort();
    let mut slots: Vec<(std::path::PathBuf, Slot)> = Vec::new();
    let mut processed = 0usize;
    for path in &files {
        // Crash-window idempotence: a response written before the crash
        // means the job already ran and committed. Re-submitting it
        // would re-execute admitted work; finish the interrupted
        // rename instead.
        if response_path(path).exists() {
            core.note_spool_skipped();
            rename_done(path)?;
            processed += 1;
            continue;
        }
        // An unreadable job file (permissions, I/O decay, a directory
        // masquerading as a file) is that one job's problem, not the
        // scan loop's: it gets a typed rejection response and the
        // daemon keeps serving the rest of the spool.
        let slot = match std::fs::read_to_string(path) {
            Err(e) => {
                core.note_rejected();
                Slot::Ready(JobResponse::refusal(
                    "",
                    JobStatus::Rejected,
                    format!("unreadable spool job file: {e}"),
                ))
            }
            Ok(text) => {
                let mut lines = text.lines().filter(|l| !l.trim().is_empty());
                let line = lines.next().unwrap_or("");
                if lines.next().is_some() {
                    core.note_rejected();
                    Slot::Ready(JobResponse::refusal(
                        "",
                        JobStatus::Rejected,
                        "spool job files must contain exactly one request line",
                    ))
                } else {
                    match parse_request(line) {
                        Err(e) => {
                            core.note_rejected();
                            Slot::Ready(JobResponse::refusal(
                                "",
                                JobStatus::Rejected,
                                e.to_string(),
                            ))
                        }
                        Ok(Request::Shutdown) => {
                            core.note_rejected();
                            Slot::Ready(JobResponse::refusal(
                                "",
                                JobStatus::Rejected,
                                "spool files carry jobs, not control messages",
                            ))
                        }
                        Ok(Request::Job(envelope)) => match core.submit(envelope)? {
                            Some(refusal) => Slot::Ready(refusal),
                            None => Slot::Pending(core.last_accepted_seq()),
                        },
                    }
                }
            }
        };
        slots.push((path.clone(), slot));
    }
    let mut by_seq: HashMap<u64, JobResponse> = HashMap::new();
    for response in core.drain()? {
        if let Some(seq) = response.seq {
            by_seq.insert(seq, response);
        }
    }
    processed += slots.len();
    for (path, slot) in slots {
        let response = match slot {
            Slot::Ready(response) => response,
            Slot::Pending(seq) => by_seq.remove(&seq).unwrap_or_else(|| {
                JobResponse::refusal("", JobStatus::Rejected, "response was not produced")
            }),
        };
        let mut bytes = response.to_json_line().into_bytes();
        bytes.push(b'\n');
        repute_core::write_atomic(&response_path(&path), &bytes)?;
        rename_done(&path)?;
    }
    Ok(processed)
}

fn response_path(path: &Path) -> std::path::PathBuf {
    let mut out = path.as_os_str().to_os_string();
    out.push(".response");
    std::path::PathBuf::from(out)
}

fn rename_done(path: &Path) -> Result<(), ReputeError> {
    let mut done = path.as_os_str().to_os_string();
    done.push(".done");
    std::fs::rename(path, std::path::PathBuf::from(done)).map_err(|e| io_at(path, e))
}
