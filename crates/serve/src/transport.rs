//! Transports that feed the daemon core: a Unix-domain socket speaking
//! newline-delimited JSON, and a spool directory of job files.
//!
//! The socket protocol is strictly line-oriented: a client connects,
//! writes one request per line ([`crate::envelope::parse_request`]'s
//! grammar), closes its write half, and reads one response line per
//! request, in request order. Connections are served one at a time —
//! the daemon core is single-threaded and deterministic, and each
//! connection's jobs are drained to completion before the next
//! connection is accepted. The control line `{"op":"shutdown"}` drains
//! outstanding work, answers the connection, then stops the listener
//! (graceful drain).
//!
//! The spool transport scans a directory for `*.json` job files
//! (sorted by name for determinism), admits each, drains, and writes
//! `<name>.response` next to every input, renaming the input to
//! `<name>.done` so a rescan never double-submits.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use repute_core::ReputeError;

use crate::envelope::{parse_request, JobResponse, JobStatus, Request};
use crate::server::ServeCore;

fn io_at(path: &Path, e: std::io::Error) -> ReputeError {
    ReputeError::io_at(path, e)
}

/// One connection slot: either an already-answered refusal or an
/// accepted job waiting for its drain response.
enum Slot {
    Ready(JobResponse),
    Pending(String),
}

/// Serves the line protocol on one established stream: reads requests
/// to EOF (or shutdown), drains the core, and answers one response line
/// per request in request order. Returns whether a shutdown was asked.
fn handle_connection(core: &mut ServeCore, stream: &UnixStream) -> Result<bool, ReputeError> {
    let reader = BufReader::new(stream);
    let mut slots: Vec<Slot> = Vec::new();
    let mut shutdown = false;
    for line in reader.lines() {
        let line = line.map_err(|e| ReputeError::Io {
            context: "reading job socket".to_string(),
            source: e,
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(e) => slots.push(Slot::Ready(JobResponse::refusal(
                "",
                JobStatus::Rejected,
                e.to_string(),
            ))),
            Ok(Request::Shutdown) => {
                shutdown = true;
                break;
            }
            Ok(Request::Job(envelope)) => {
                let id = envelope.id.clone();
                match core.submit(envelope)? {
                    Some(refusal) => slots.push(Slot::Ready(refusal)),
                    None => slots.push(Slot::Pending(id)),
                }
            }
        }
    }
    let mut by_id: HashMap<String, VecDeque<JobResponse>> = HashMap::new();
    for response in core.drain()? {
        by_id
            .entry(response.id.clone())
            .or_default()
            .push_back(response);
    }
    let mut writer = BufWriter::new(stream);
    for slot in slots {
        let response = match slot {
            Slot::Ready(response) => response,
            Slot::Pending(id) => by_id
                .get_mut(&id)
                .and_then(VecDeque::pop_front)
                .unwrap_or_else(|| {
                    JobResponse::refusal(id, JobStatus::Rejected, "response was not produced")
                }),
        };
        writeln!(writer, "{}", response.to_json_line()).map_err(|e| ReputeError::Io {
            context: "writing job socket".to_string(),
            source: e,
        })?;
    }
    writer.flush().map_err(|e| ReputeError::Io {
        context: "writing job socket".to_string(),
        source: e,
    })?;
    Ok(shutdown)
}

/// Binds `path` and serves connections one at a time until a client
/// sends `{"op":"shutdown"}`. A stale socket file at `path` is removed
/// before binding; the file is removed again on clean exit.
///
/// # Errors
///
/// [`ReputeError::Io`] on bind/accept/stream failures; admission and
/// batch errors propagate from the core.
pub fn serve_socket(core: &mut ServeCore, path: &Path) -> Result<(), ReputeError> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| io_at(path, e))?;
    }
    let listener = UnixListener::bind(path).map_err(|e| io_at(path, e))?;
    loop {
        let (stream, _) = listener.accept().map_err(|e| io_at(path, e))?;
        if handle_connection(core, &stream)? {
            break;
        }
    }
    std::fs::remove_file(path).map_err(|e| io_at(path, e))?;
    Ok(())
}

/// Client side of the line protocol: connects to `socket`, writes every
/// request line, half-closes, and returns the parsed response lines.
///
/// # Errors
///
/// [`ReputeError::Io`] on connection failures,
/// [`ReputeError::InputParse`] when the server answers with something
/// that is not a response line.
pub fn submit_over_socket(
    socket: &Path,
    lines: &[String],
) -> Result<Vec<JobResponse>, ReputeError> {
    let stream = UnixStream::connect(socket).map_err(|e| io_at(socket, e))?;
    {
        let mut writer = BufWriter::new(&stream);
        for line in lines {
            writeln!(writer, "{line}").map_err(|e| io_at(socket, e))?;
        }
        writer.flush().map_err(|e| io_at(socket, e))?;
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| io_at(socket, e))?;
    let reader = BufReader::new(&stream);
    let mut responses = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| io_at(socket, e))?;
        if line.trim().is_empty() {
            continue;
        }
        responses.push(JobResponse::parse(&line)?);
    }
    Ok(responses)
}

/// Asks a running daemon to drain and shut down.
///
/// # Errors
///
/// [`ReputeError::Io`] when the socket cannot be reached.
pub fn shutdown_over_socket(socket: &Path) -> Result<(), ReputeError> {
    let stream = UnixStream::connect(socket).map_err(|e| io_at(socket, e))?;
    let mut writer = BufWriter::new(&stream);
    writer
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .map_err(|e| io_at(socket, e))?;
    writer.flush().map_err(|e| io_at(socket, e))?;
    Ok(())
}

/// Scans `dir` once for `*.json` job files (name-sorted), admits each,
/// drains, writes `<name>.response` beside every input, and renames
/// inputs to `<name>.done`. Returns how many job files were processed.
///
/// # Errors
///
/// [`ReputeError::Io`] on directory or file failures; admission and
/// batch errors propagate from the core.
pub fn process_spool_once(core: &mut ServeCore, dir: &Path) -> Result<usize, ReputeError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_at(dir, e))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_at(dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            files.push(path);
        }
    }
    files.sort();
    let mut slots: Vec<(std::path::PathBuf, Slot)> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| io_at(path, e))?;
        let line = text.lines().next().unwrap_or("");
        let slot = match parse_request(line) {
            Err(e) => Slot::Ready(JobResponse::refusal("", JobStatus::Rejected, e.to_string())),
            Ok(Request::Shutdown) => Slot::Ready(JobResponse::refusal(
                "",
                JobStatus::Rejected,
                "spool files carry jobs, not control messages",
            )),
            Ok(Request::Job(envelope)) => {
                let id = envelope.id.clone();
                match core.submit(envelope)? {
                    Some(refusal) => Slot::Ready(refusal),
                    None => Slot::Pending(id),
                }
            }
        };
        slots.push((path.clone(), slot));
    }
    let mut by_id: HashMap<String, VecDeque<JobResponse>> = HashMap::new();
    for response in core.drain()? {
        by_id
            .entry(response.id.clone())
            .or_default()
            .push_back(response);
    }
    let processed = slots.len();
    for (path, slot) in slots {
        let response = match slot {
            Slot::Ready(response) => response,
            Slot::Pending(id) => by_id
                .get_mut(&id)
                .and_then(VecDeque::pop_front)
                .unwrap_or_else(|| {
                    JobResponse::refusal(id, JobStatus::Rejected, "response was not produced")
                }),
        };
        let mut out_path = path.clone().into_os_string();
        out_path.push(".response");
        let out_path = std::path::PathBuf::from(out_path);
        let mut bytes = response.to_json_line().into_bytes();
        bytes.push(b'\n');
        repute_core::write_atomic(&out_path, &bytes)?;
        let mut done = path.clone().into_os_string();
        done.push(".done");
        std::fs::rename(&path, std::path::PathBuf::from(done)).map_err(|e| io_at(&path, e))?;
    }
    Ok(processed)
}
