//! The daemon core: admission, batch coalescing, execution, journaling,
//! and observability — everything except the transport.
//!
//! [`ServeCore`] is single-threaded and fully deterministic. The
//! reference and FM-index are loaded once (shared behind the
//! [`ReferenceSet`]'s internal `Arc`); each submitted job is validated
//! against the server's pinned limits, journaled, and queued; each
//! [`ServeCore::run_batch`] call fair-dequeues a run of jobs with the
//! same effective mapping configuration, packs them under the
//! platform's quarter-RAM batch cap, executes them as *one* scheduler
//! batch on the simulated fleet, commits the batch to the job journal,
//! and emits one response per job.
//!
//! Per-job output is byte-identical to `repute map` on the same reads
//! and configuration by construction: mapping happens in the executor's
//! deterministic host phase (independent of batching and scheduling),
//! and the SAM assembly uses the same resolve-and-write path as the
//! batch CLI. The simulated clock advances by each batch's makespan, so
//! latency percentiles and trace spans live on one continuous timeline
//! across the daemon's life — including across a crash and `--resume`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use repute_core::journal::Fnv64;
use repute_core::{
    map_scheduled_traced, write_atomic, ReputeConfig, ReputeError, ReputeMapper, RunFingerprint,
    Schedule, ScheduleMode, DEFAULT_MAX_RETRIES,
};
use repute_eval::sam;
use repute_genome::DnaSeq;
use repute_hetsim::Platform;
use repute_mappers::multiref::ReferenceSet;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like,
    yara::YaraLike, Mapper, Mapping,
};
use repute_obs::json::JsonObject;
use repute_obs::trace::{device_pid, write_chrome_trace, SCHEDULER_PID};
use repute_obs::{Samples, Span};
use repute_prefilter::{qgram, PrefilterMode};

use crate::admission::{AdmissionQueue, ConfigKey, JobSpec, TenantQuota, DEFAULT_QUEUE_CAPACITY};
use crate::envelope::{prefilter_code, resolve_reads, JobEnvelope, JobResponse, JobStatus};
use crate::journal::{BatchRecord, JobJournal, JobResult, Recovered, StateRecord};

/// Bytes one read's output occupies in a device result buffer (the
/// executor's `max_locations × 12` convention).
const BYTES_PER_LOCATION: usize = 12;

/// Admission limits the server pins; per-job overrides must stay inside
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLimits {
    /// Largest read count a single job may carry; bigger jobs are
    /// `REJECTED` (they would not fit one scheduler batch). Clamped to
    /// the platform's quarter-RAM batch cap at server construction.
    pub max_reads_per_job: usize,
    /// Largest per-job δ override accepted.
    pub max_delta: u32,
    /// Admission-queue capacity; a full queue answers `RETRY_LATER`.
    pub queue_capacity: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_reads_per_job: usize::MAX,
            max_delta: 16,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// Server configuration: mapping defaults, pinned limits, fairness
/// weights, and observability switches.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Default error budget δ for jobs without an override.
    pub delta: u32,
    /// Minimum k-mer length `S_min` (server-pinned, not overridable).
    pub s_min: usize,
    /// Output-slot limit per read (server-pinned; also sets the batch
    /// cap via the executor's bytes-per-read convention).
    pub max_locations: usize,
    /// Default prefilter mode for jobs without an override.
    pub prefilter: PrefilterMode,
    /// Q-gram length of the bin prefilter.
    pub prefilter_q: usize,
    /// Reference bin width (bases) of the bin prefilter.
    pub prefilter_bin: usize,
    /// Multi-device scheduling policy of every batch.
    pub schedule: ScheduleMode,
    /// Host-thread cap of the executor (`0` = automatic).
    pub host_threads: usize,
    /// Transient-fault retry budget (kept for config parity with `map`).
    pub max_retries: usize,
    /// Collect per-batch and per-job trace spans.
    pub tracing: bool,
    /// Pinned admission limits.
    pub limits: ServeLimits,
    /// Weighted-fair tenant weights (unlisted tenants get 1.0).
    pub tenant_weights: Vec<(String, f64)>,
    /// Sliding-window read budgets per tenant (unlisted tenants are
    /// unbudgeted); an exceeded budget answers `QUOTA_EXCEEDED`.
    pub tenant_quotas: Vec<(String, u64)>,
    /// Length of the quota sliding window, in simulated seconds.
    pub quota_window_s: f64,
    /// Compact the journal once this many dead records accumulate
    /// (committed batches and their acceptance records); `0` disables
    /// compaction. Not part of the resume fingerprint — it is safe to
    /// change across restarts.
    pub journal_compact_threshold: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            delta: 5,
            s_min: 12,
            max_locations: 100,
            prefilter: PrefilterMode::None,
            prefilter_q: qgram::DEFAULT_Q,
            prefilter_bin: qgram::DEFAULT_BIN_WIDTH,
            schedule: ScheduleMode::Dynamic,
            host_threads: 0,
            max_retries: DEFAULT_MAX_RETRIES,
            tracing: false,
            limits: ServeLimits::default(),
            tenant_weights: Vec::new(),
            tenant_quotas: Vec::new(),
            quota_window_s: 60.0,
            journal_compact_threshold: 0,
        }
    }
}

/// Monotone service counters, exported in the `serve` telemetry record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Jobs that passed admission (journaled and queued).
    pub accepted: u64,
    /// Jobs permanently refused (over-limit or malformed).
    pub rejected: u64,
    /// Jobs bounced by queue backpressure.
    pub retry_later: u64,
    /// Jobs refused because the tenant's sliding-window read budget was
    /// exhausted.
    pub quota_exceeded: u64,
    /// Jobs whose batch committed (responses produced).
    pub completed: u64,
    /// Completed jobs whose responses were replayed from the journal on
    /// resume instead of re-executed.
    pub replayed: u64,
    /// Scheduler batches committed.
    pub batches: u64,
    /// Journal compactions performed.
    pub compactions: u64,
    /// Client connections dropped after an I/O or protocol failure (the
    /// daemon keeps serving).
    pub connection_errors: u64,
    /// Spool inputs skipped because a response for them already existed
    /// (crash-window idempotence).
    pub spool_skipped: u64,
}

/// Telemetry facts of one completed job.
#[derive(Debug, Clone, PartialEq)]
struct JobRecord {
    seq: u64,
    id: String,
    tenant: String,
    reads: u64,
    mappings: u64,
    batch: u64,
    latency_s: f64,
    replayed: bool,
}

impl JobRecord {
    fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("type", "job");
        obj.u64_field("seq", self.seq);
        obj.str_field("id", &self.id);
        obj.str_field("tenant", &self.tenant);
        obj.u64_field("reads", self.reads);
        obj.u64_field("mappings", self.mappings);
        obj.u64_field("batch", self.batch);
        obj.f64_field("latency_s", self.latency_s);
        obj.bool_field("replayed", self.replayed);
        obj.finish()
    }
}

/// The mapping-as-a-service core (see the module docs).
pub struct ServeCore {
    set: ReferenceSet,
    platform: Platform,
    options: ServeOptions,
    max_reads_per_job: usize,
    queue: AdmissionQueue,
    quota: TenantQuota,
    journal: Option<JobJournal>,
    next_seq: u64,
    sim_clock: f64,
    dead_records: usize,
    counters: ServeCounters,
    latency: Samples,
    jobs: Vec<JobRecord>,
    spans: Vec<Span>,
}

impl ServeCore {
    /// Builds the core: validates the default configuration, computes
    /// the platform batch cap, and sets up the admission queue. No
    /// journal is attached yet (see [`ServeCore::attach_journal`]).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Config`] when the default δ/`S_min` combination is
    /// invalid.
    pub fn new(
        set: ReferenceSet,
        platform: Platform,
        options: ServeOptions,
    ) -> Result<ServeCore, ReputeError> {
        // Fail fast: the default config must be constructible, or every
        // default-config job would die at batch time.
        ReputeConfig::new(options.delta, options.s_min)
            .map_err(|e| ReputeError::Config(e.to_string()))?;
        if options.delta > options.limits.max_delta {
            return Err(ReputeError::Config(format!(
                "default delta {} exceeds --max-delta {}",
                options.delta, options.limits.max_delta
            )));
        }
        let cap = platform
            .max_batch_items(options.max_locations * BYTES_PER_LOCATION)
            .max(1);
        let max_reads_per_job = options.limits.max_reads_per_job.min(cap);
        let queue = AdmissionQueue::new(options.limits.queue_capacity, &options.tenant_weights);
        let quota = TenantQuota::new(options.quota_window_s, &options.tenant_quotas);
        Ok(ServeCore {
            set,
            platform,
            options,
            max_reads_per_job,
            queue,
            quota,
            journal: None,
            next_seq: 0,
            sim_clock: 0.0,
            dead_records: 0,
            counters: ServeCounters::default(),
            latency: Samples::new(),
            jobs: Vec::new(),
            spans: Vec::new(),
        })
    }

    /// The config/limits identity of this server. A journal written
    /// under a different reference, platform, limit set, or fairness
    /// table is refused on resume.
    pub fn fingerprint(&self) -> RunFingerprint {
        let mut cfg = Fnv64::new();
        cfg.write(self.platform.name().as_bytes());
        cfg.write_u64(u64::from(self.options.delta));
        cfg.write_u64(self.options.s_min as u64);
        cfg.write_u64(self.options.max_locations as u64);
        cfg.write_u64(u64::from(prefilter_code(self.options.prefilter)));
        cfg.write_u64(self.options.prefilter_q as u64);
        cfg.write_u64(self.options.prefilter_bin as u64);
        cfg.write_u64(match self.options.schedule {
            ScheduleMode::Static => 0,
            ScheduleMode::Dynamic => 1,
        });
        cfg.write_u64(self.options.host_threads as u64);
        cfg.write_u64(self.options.max_retries as u64);
        cfg.write_u64(u64::from(self.options.limits.max_delta));
        cfg.write_u64(self.max_reads_per_job as u64);
        for (name, weight) in &self.options.tenant_weights {
            cfg.write(name.as_bytes());
            cfg.write_u64(weight.to_bits());
        }
        // Quota budgets change which jobs get admitted, so they are part
        // of the journal identity (the compaction threshold is not: it
        // only changes *when* dead bytes are dropped, never a response).
        cfg.write_u64(self.options.quota_window_s.to_bits());
        for (name, budget) in &self.options.tenant_quotas {
            cfg.write(name.as_bytes());
            cfg.write_u64(*budget);
        }
        let mut wl = Fnv64::new();
        for (name, len) in self.set.records() {
            wl.write(name.as_bytes());
            wl.write_u64(*len as u64);
        }
        RunFingerprint::new(cfg.finish(), wl.finish())
    }

    /// Attaches the crash-safe job journal. With `resume = false` a
    /// fresh journal is created (truncating any existing file). With
    /// `resume = true` the existing journal is replayed: committed jobs
    /// get their responses reconstructed from stored mappings
    /// (byte-identical, no re-execution — returned here), jobs accepted
    /// but not committed are re-queued in arrival order, and the
    /// simulated clock, batch counter, and per-tenant fairness state
    /// continue exactly where the crashed daemon left them.
    ///
    /// # Errors
    ///
    /// [`ReputeError::ResumeMismatch`] for a journal written by a
    /// different server configuration, [`ReputeError::JournalCorrupt`]
    /// for interior corruption, [`ReputeError::Io`] on filesystem
    /// failures.
    pub fn attach_journal(
        &mut self,
        path: &Path,
        resume: bool,
    ) -> Result<Vec<JobResponse>, ReputeError> {
        let fingerprint = self.fingerprint();
        let (journal, recovered) = if resume {
            JobJournal::open(path, &fingerprint)?
        } else {
            (
                JobJournal::create(path, &fingerprint)?,
                Recovered::default(),
            )
        };
        // A compacted journal opens with a state snapshot standing in
        // for the dead records it dropped: restore the clock, counters,
        // fairness service, and quota window before replaying frames.
        let state_next_seq = recovered.state.as_ref().map_or(0, |s| s.next_seq);
        if let Some(state) = &recovered.state {
            self.next_seq = state.next_seq;
            self.sim_clock = state.sim_clock;
            self.counters.accepted = state.accepted;
            self.counters.completed = state.completed;
            self.counters.replayed = state.replayed;
            for (tenant, served) in &state.served {
                self.queue.set_served(tenant, *served);
            }
            for (seq, tenant, at, reads) in &state.quota {
                self.quota.restore(*seq, tenant, *at, *reads);
            }
        }
        let mut by_seq: HashMap<u64, (u64, f64, &JobResult)> = HashMap::new();
        for batch in &recovered.batches {
            for job in &batch.jobs {
                by_seq.insert(job.seq, (batch.batch, batch.completion_s, job));
            }
        }
        let mut replayed = Vec::new();
        for job in &recovered.accepted {
            self.next_seq = self.next_seq.max(job.seq + 1);
            // Records below the snapshot's next_seq are live jobs the
            // compaction rewrote — the snapshot counters and quota
            // window already cover them (restore dedups by seq).
            if job.seq >= state_next_seq {
                self.counters.accepted += 1;
            }
            self.quota
                .restore(job.seq, &job.tenant, job.arrival_s, job.reads.len() as u64);
            match by_seq.get(&job.seq) {
                Some((batch, completion, result)) => {
                    // Dispatched and committed before the crash: restore
                    // the fairness charge and replay the response.
                    self.queue.restore_served(&job.tenant, job.cost());
                    let response = self.job_response(job, &result.mappings, *batch, *completion)?;
                    self.finish_job(job, response.mappings, *batch, *completion, true);
                    replayed.push(response);
                }
                None => {
                    // Accepted but never committed: back in the queue.
                    // A resumed push bypasses the capacity gate, so a
                    // restart can never bounce already-accepted work.
                    let _ = self.queue.push(job.clone(), true);
                }
            }
        }
        let state_batches = recovered.state.as_ref().map_or(0, |s| s.batches);
        self.counters.batches = state_batches + recovered.batches.len() as u64;
        if let Some(last) = recovered.batches.last() {
            self.sim_clock = last.completion_s;
        }
        // Replayed responses and their batch frames are dead the moment
        // this returns; the rewritten state frame stays live.
        self.dead_records = replayed.len() + recovered.batches.len();
        self.journal = Some(journal);
        Ok(replayed)
    }

    /// Submits one job. Returns `Ok(None)` when the job was accepted
    /// (its `OK` response comes from a later [`ServeCore::run_batch`] /
    /// [`ServeCore::drain`]) or `Ok(Some(refusal))` with a `REJECTED` or
    /// `RETRY_LATER` response the transport should answer immediately.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] when journaling the acceptance fails — the
    /// daemon must not acknowledge work it cannot make durable.
    pub fn submit(
        &mut self,
        mut envelope: JobEnvelope,
    ) -> Result<Option<JobResponse>, ReputeError> {
        if let Err(e) = resolve_reads(&mut envelope) {
            self.counters.rejected += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::Rejected,
                e.to_string(),
            )));
        }
        let delta = envelope.delta.unwrap_or(self.options.delta);
        if delta > self.options.limits.max_delta {
            self.counters.rejected += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::Rejected,
                format!(
                    "delta {delta} exceeds the server limit {}",
                    self.options.limits.max_delta
                ),
            )));
        }
        if envelope.reads.len() > self.max_reads_per_job {
            self.counters.rejected += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::Rejected,
                format!(
                    "job carries {} reads but the server accepts at most {} per job",
                    envelope.reads.len(),
                    self.max_reads_per_job
                ),
            )));
        }
        if let Err((used, budget)) = self.quota.check(
            &envelope.tenant,
            envelope.reads.len() as u64,
            self.sim_clock,
        ) {
            self.counters.quota_exceeded += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::QuotaExceeded,
                format!(
                    "tenant '{}' has used {used} of {budget} reads in the current \
                     {:.0}s window; resubmit after the window slides",
                    envelope.tenant, self.options.quota_window_s
                ),
            )));
        }
        if self.queue.is_full() {
            self.counters.retry_later += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::RetryLater,
                format!(
                    "admission queue is full ({} jobs); resubmit after the backlog drains",
                    self.queue.len()
                ),
            )));
        }
        let (read_ids, reads): (Vec<String>, Vec<DnaSeq>) = envelope.reads.into_iter().unzip();
        let job = JobSpec {
            seq: self.next_seq,
            id: envelope.id,
            tenant: envelope.tenant,
            key: ConfigKey {
                delta,
                prefilter: envelope.prefilter.unwrap_or(self.options.prefilter),
                mapper: envelope.mapper.unwrap_or_default(),
            },
            arrival_s: self.sim_clock,
            // The envelope's deadline is relative to admission; the
            // scheduler works in absolute simulated time.
            deadline_s: envelope.deadline_s.map(|d| self.sim_clock + d),
            priority: envelope.priority,
            read_ids,
            reads,
        };
        if let Some(journal) = &mut self.journal {
            journal.record_accepted(&job)?;
        }
        self.quota
            .book(job.seq, &job.tenant, job.reads.len() as u64, self.sim_clock);
        if let Err(job) = self.queue.push(job, false) {
            // Unreachable after the capacity check above; refuse rather
            // than panic if the invariant ever breaks.
            self.counters.retry_later += 1;
            return Ok(Some(JobResponse::refusal(
                job.id,
                JobStatus::RetryLater,
                "admission queue refused the job",
            )));
        }
        self.next_seq += 1;
        self.counters.accepted += 1;
        Ok(None)
    }

    /// Executes (and commits) the next scheduler batch; no-op on an
    /// empty queue. Returns the `OK` responses of the batch's jobs.
    ///
    /// # Errors
    ///
    /// Propagates executor launch failures and journal I/O errors.
    pub fn run_batch(&mut self) -> Result<Vec<JobResponse>, ReputeError> {
        self.run_batch_impl(true)
    }

    /// Runs batches until the queue is empty (graceful drain). Returns
    /// every produced response in completion order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeCore::run_batch`] failure.
    pub fn drain(&mut self) -> Result<Vec<JobResponse>, ReputeError> {
        let mut responses = Vec::new();
        while !self.queue.is_empty() {
            responses.extend(self.run_batch()?);
        }
        Ok(responses)
    }

    /// Fair-dequeues a maximal run of same-configuration jobs under the
    /// platform batch cap, executes them as one scheduler batch, and —
    /// when `commit` is true — journals the batch, advances the clock,
    /// and records telemetry. `commit = false` models a crash after the
    /// work started but before the commit: the jobs have left the queue
    /// and nothing is durable, so a resume re-executes exactly this
    /// batch (the harness's `crash_mid_batch`).
    pub(crate) fn run_batch_impl(&mut self, commit: bool) -> Result<Vec<JobResponse>, ReputeError> {
        let now = self.sim_clock;
        let Some(first) = self.queue.pop_fair(now) else {
            return Ok(Vec::new());
        };
        let key = first.key;
        let cap = self
            .platform
            .max_batch_items(self.options.max_locations * BYTES_PER_LOCATION)
            .max(1);
        let mut total_reads = first.reads.len();
        let mut jobs = vec![first];
        while let Some(next) = self.queue.peek_fair(now) {
            if next.key != key || total_reads + next.reads.len() > cap {
                break;
            }
            let Some(job) = self.queue.pop_fair(now) else {
                break;
            };
            total_reads += job.reads.len();
            jobs.push(job);
        }

        let batch_index = self.counters.batches;
        let start = self.sim_clock;
        let reads: Vec<DnaSeq> = jobs.iter().flat_map(|j| j.reads.iter().cloned()).collect();
        let config = self.batch_config(key)?;
        let schedule = Schedule::for_config(&config, &self.platform, reads.len());
        let threads = config.host_threads();
        let tracing = self.options.tracing;
        let mapper = self.build_mapper(key, config);
        let mapper = mapper.as_ref();
        let (run, _metrics) =
            map_scheduled_traced(&mapper, &self.platform, &schedule, threads, tracing, &reads)?;
        let completion = start + run.simulated_seconds;

        let mut record = BatchRecord {
            batch: batch_index,
            completion_s: completion,
            jobs: Vec::with_capacity(jobs.len()),
        };
        let mut offset = 0usize;
        for job in &jobs {
            let n = job.reads.len();
            let mappings: Vec<Vec<Mapping>> = run.outputs[offset..offset + n]
                .iter()
                .map(|o| o.mappings.clone())
                .collect();
            offset += n;
            record.jobs.push(JobResult {
                seq: job.seq,
                mappings,
            });
        }
        if commit {
            if let Some(journal) = &mut self.journal {
                journal.record_batch(&record)?;
            }
        }
        let mut responses = Vec::with_capacity(jobs.len());
        for (job, result) in jobs.iter().zip(&record.jobs) {
            let response = self.job_response(job, &result.mappings, batch_index, completion)?;
            if commit {
                self.finish_job(job, response.mappings, batch_index, completion, false);
            }
            responses.push(response);
        }
        if commit {
            if tracing {
                // Batch spans come out of the executor on a zero-based
                // clock; shift them onto the daemon's continuous one.
                for mut span in run.trace {
                    span.begin_seconds += start;
                    span.end_seconds += start;
                    self.spans.push(span);
                }
            }
            self.sim_clock = completion;
            self.counters.batches += 1;
            // The batch's acceptance records and the batch frame itself
            // are now dead weight in the journal.
            self.dead_records += jobs.len() + 1;
            if self.options.journal_compact_threshold > 0
                && self.dead_records >= self.options.journal_compact_threshold
            {
                self.compact_journal()?;
            }
        }
        Ok(responses)
    }

    /// Compacts the journal down to a state snapshot plus the still-
    /// queued jobs' acceptance records (see [`JobJournal::compact`]).
    /// No-op without a journal. Returns whether a compaction ran.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn compact_journal(&mut self) -> Result<bool, ReputeError> {
        let fingerprint = self.fingerprint();
        let state = StateRecord {
            sim_clock: self.sim_clock,
            next_seq: self.next_seq,
            batches: self.counters.batches,
            accepted: self.counters.accepted,
            completed: self.counters.completed,
            replayed: self.counters.replayed,
            served: self.queue.served_snapshot(),
            quota: self.quota.snapshot(self.sim_clock),
        };
        let Some(journal) = &mut self.journal else {
            return Ok(false);
        };
        let live = self.queue.queued_snapshot();
        journal.compact(&fingerprint, &state, &live)?;
        self.dead_records = 0;
        self.counters.compactions += 1;
        Ok(true)
    }

    /// Current journal file size in bytes, when a journal is attached
    /// (compaction ablations assert the post-compaction bound).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] when the metadata read fails.
    pub fn journal_size_bytes(&self) -> Result<Option<u64>, ReputeError> {
        self.journal
            .as_ref()
            .map(JobJournal::size_bytes)
            .transpose()
    }

    /// Books one dropped client connection (transport layer).
    pub fn note_connection_error(&mut self) {
        self.counters.connection_errors += 1;
    }

    /// Books one spool input skipped for an already-present response
    /// (transport layer).
    pub fn note_spool_skipped(&mut self) {
        self.counters.spool_skipped += 1;
    }

    /// Books a rejection issued by a transport before the envelope ever
    /// reached [`ServeCore::submit`] — an unparseable request line or a
    /// malformed spool file — so telemetry counts every refusal the
    /// daemon sent, not just validation failures.
    pub fn note_rejected(&mut self) {
        self.counters.rejected += 1;
    }

    /// Books a completed (or replayed) job into counters, latency
    /// samples, telemetry records, and the trace.
    fn finish_job(
        &mut self,
        job: &JobSpec,
        mappings: u64,
        batch: u64,
        completion: f64,
        replayed: bool,
    ) {
        let latency = completion - job.arrival_s;
        self.latency.record(latency);
        self.counters.completed += 1;
        if replayed {
            self.counters.replayed += 1;
        }
        self.jobs.push(JobRecord {
            seq: job.seq,
            id: job.id.clone(),
            tenant: job.tenant.clone(),
            reads: job.reads.len() as u64,
            mappings,
            batch,
            latency_s: latency,
            replayed,
        });
        if self.options.tracing {
            self.spans.push(
                Span::new(
                    format!("job {}", job.id),
                    "job",
                    SCHEDULER_PID,
                    job.arrival_s,
                    completion,
                )
                .on_tid(1)
                .arg_str("tenant", job.tenant.clone())
                .arg_u64("reads", job.reads.len() as u64)
                .arg_u64("batch", batch),
            );
        }
    }

    /// Assembles a job's `OK` response — the SAM block uses the same
    /// header/resolve/record path as `repute map`, so the bytes match
    /// the batch CLI on the same reads and configuration.
    fn job_response(
        &self,
        job: &JobSpec,
        raw: &[Vec<Mapping>],
        batch: u64,
        completion: f64,
    ) -> Result<JobResponse, ReputeError> {
        let names: Vec<&str> = self.set.records().iter().map(|(n, _)| n.as_str()).collect();
        let header: Vec<(&str, usize)> = self
            .set
            .records()
            .iter()
            .map(|(n, l)| (n.as_str(), *l))
            .collect();
        let mut out: Vec<u8> = Vec::new();
        sam::write_header_multi(&mut out, &header)?;
        let mut total_mappings = 0u64;
        for ((read_id, seq), mappings) in job.read_ids.iter().zip(&job.reads).zip(raw) {
            let resolved = self.set.resolve_mappings(seq.len(), mappings);
            total_mappings += resolved.len() as u64;
            sam::write_resolved_record(&mut out, &names, read_id, seq, &resolved, None)?;
        }
        Ok(JobResponse {
            id: job.id.clone(),
            seq: Some(job.seq),
            status: JobStatus::Ok,
            reason: None,
            reads: job.reads.len() as u64,
            mappings: total_mappings,
            batch: Some(batch),
            latency_s: Some(completion - job.arrival_s),
            sam: Some(String::from_utf8_lossy(&out).into_owned()),
        })
    }

    fn batch_config(&self, key: ConfigKey) -> Result<ReputeConfig, ReputeError> {
        Ok(ReputeConfig::new(key.delta, self.options.s_min)
            .map_err(|e| ReputeError::Config(e.to_string()))?
            .with_max_locations(self.options.max_locations)
            .with_prefilter(key.prefilter)
            .with_prefilter_qgram(self.options.prefilter_q, self.options.prefilter_bin)
            .with_schedule(self.options.schedule)
            .with_host_threads(self.options.host_threads)
            .with_max_retries(self.options.max_retries))
    }

    /// Instantiates the mapper a batch's configuration key selects;
    /// every kind shares the one `Arc`-held FM-index.
    fn build_mapper(&self, key: ConfigKey, config: ReputeConfig) -> Box<dyn Mapper> {
        use crate::envelope::MapperKind;
        let indexed = Arc::clone(self.set.indexed());
        let max_locations = self.options.max_locations;
        match key.mapper {
            MapperKind::Repute => Box::new(ReputeMapper::new(indexed, config)),
            MapperKind::Coral => Box::new(
                CoralLike::new(indexed, key.delta)
                    .with_s_min(self.options.s_min)
                    .with_max_locations(max_locations),
            ),
            MapperKind::Razers3 => {
                Box::new(Razers3Like::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::Hobbes3 => {
                Box::new(Hobbes3Like::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::Yara => {
                Box::new(YaraLike::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::Gem => {
                Box::new(GemLike::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::BwaMem => {
                Box::new(BwaMemLike::new(indexed).with_max_locations(max_locations))
            }
        }
    }

    /// Monotone service counters.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// The acceptance seq assigned to the most recently accepted job
    /// (meaningful right after a [`ServeCore::submit`] that returned
    /// `Ok(None)`; transports use it to route the eventual response
    /// back to the submitting connection).
    pub fn last_accepted_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// Jobs currently queued (the depth gauge's live value).
    pub fn queue_depth(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Deepest the admission queue ever got.
    pub fn queue_depth_high_water(&self) -> u64 {
        self.queue.depth().high_water()
    }

    /// The simulated clock: sum of every committed batch's makespan.
    pub fn simulated_seconds(&self) -> f64 {
        self.sim_clock
    }

    /// `(count, p50, p90, p99)` of per-job admission-to-completion
    /// latency, in simulated seconds.
    pub fn latency_percentiles(&self) -> (u64, f64, f64, f64) {
        let (p50, p90, p99) = self.latency.p50_p90_p99();
        (self.latency.count(), p50, p90, p99)
    }

    /// Every trace span collected so far (batch spans shifted onto the
    /// daemon clock, plus one `job` span per completed job).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The service telemetry as JSON lines: one `job` record per
    /// completed job, the `serve` counter summary, and a `latency`
    /// record (`stage: "job"`) in the shape `repute stats` renders.
    pub fn telemetry_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for job in &self.jobs {
            out.extend_from_slice(job.to_json_line().as_bytes());
            out.push(b'\n');
        }
        let mut obj = JsonObject::new();
        obj.str_field("type", "serve");
        obj.u64_field("accepted", self.counters.accepted);
        obj.u64_field("rejected", self.counters.rejected);
        obj.u64_field("retry_later", self.counters.retry_later);
        obj.u64_field("quota_exceeded", self.counters.quota_exceeded);
        obj.u64_field("completed", self.counters.completed);
        obj.u64_field("replayed", self.counters.replayed);
        obj.u64_field("batches", self.counters.batches);
        obj.u64_field("compactions", self.counters.compactions);
        obj.u64_field("connection_errors", self.counters.connection_errors);
        obj.u64_field("spool_skipped", self.counters.spool_skipped);
        obj.u64_field("queue_depth", self.queue_depth());
        obj.u64_field("queue_depth_max", self.queue_depth_high_water());
        obj.f64_field("simulated_seconds", self.sim_clock);
        out.extend_from_slice(obj.finish().as_bytes());
        out.push(b'\n');
        if !self.latency.is_empty() {
            let (p50, p90, p99) = self.latency.p50_p90_p99();
            let mut lat = JsonObject::new();
            lat.str_field("type", "latency");
            lat.str_field("stage", "job");
            lat.u64_field("count", self.latency.count());
            lat.f64_field("p50_s", p50);
            lat.f64_field("p90_s", p90);
            lat.f64_field("p99_s", p99);
            out.extend_from_slice(lat.finish().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Writes the service telemetry to `path` (atomic rename).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn write_telemetry(&self, path: &Path) -> Result<(), ReputeError> {
        write_atomic(path, &self.telemetry_bytes())
    }

    /// Writes one `job-<seq>.jsonl` file per completed job into `dir`
    /// (creating it), the spool shape `repute stats --dir` merges.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn write_job_telemetry_dir(&self, dir: &Path) -> Result<(), ReputeError> {
        std::fs::create_dir_all(dir).map_err(|e| ReputeError::io_at(dir, e))?;
        for job in &self.jobs {
            let path = dir.join(format!("job-{:06}.jsonl", job.seq));
            let mut line = job.to_json_line().into_bytes();
            line.push(b'\n');
            write_atomic(&path, &line)?;
        }
        Ok(())
    }

    /// Writes the collected spans as Chrome-tracing JSON (atomic
    /// rename), with the same process table as the batch CLI: pid 0 is
    /// the scheduler, each simulated device gets its own pid.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn write_trace(&self, path: &Path) -> Result<(), ReputeError> {
        let mut processes = vec![(SCHEDULER_PID, "scheduler".to_string())];
        for (i, device) in self.platform.devices().iter().enumerate() {
            processes.push((
                device_pid(i),
                format!("{} [{}]", device.name(), device.kind().as_str()),
            ));
        }
        write_atomic(path, write_chrome_trace(&processes, &self.spans).as_bytes())
    }
}
